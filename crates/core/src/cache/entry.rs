//! The self-describing, versioned container wrapped around every persisted
//! cache entry.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +--------+---------+-------+--------------+------------------+----------+
//! | magic  | version | stage | key          | payload          | checksum |
//! | 8 B    | u32     | u8    | u32 + bytes  | u32 + bytes      | u64      |
//! +--------+---------+-------+--------------+------------------+----------+
//! ```
//!
//! The **full stage key** is stored, not a hash: a load verifies it
//! byte-for-byte against the requested key, exactly like the memory tier's
//! stored-key collision check — so two keys whose file names collide can
//! never serve each other's artifact. The trailing checksum is FNV-1a over
//! everything before it, catching truncation and bit rot; the version field
//! retires whole formats at once. Every verification failure maps to an
//! [`EntryError`] and, at the store layer, to a counted, silent recompute.

use super::{fnv1a64_bytes, StageKind};
use asip_isa::codec::{CodecError, Reader, Writer};

/// Version stamp of the persisted artifact format. Bump whenever any
/// artifact [`Codec`](asip_isa::codec::Codec) or this container changes
/// incompatibly; old entries then read as stale and are recomputed.
pub const FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every entry file.
const MAGIC: [u8; 8] = *b"ASIPART\0";

/// Why a persisted entry was rejected. All variants are handled
/// identically — drop the entry, count a stale drop, recompute — but the
/// distinction keeps tests honest about *which* defense caught a corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryError {
    /// The file does not open with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    BadVersion(u32),
    /// The entry was written for a different pipeline stage.
    StageMismatch,
    /// The stored key differs from the requested key (file-name collision
    /// or a renamed file).
    KeyMismatch,
    /// The trailing checksum does not match the content.
    BadChecksum,
    /// Structurally malformed (truncated or trailing bytes).
    Malformed(CodecError),
}

impl From<CodecError> for EntryError {
    fn from(e: CodecError) -> Self {
        EntryError::Malformed(e)
    }
}

/// Wrap `payload` in the versioned container for (stage, key).
pub(crate) fn encode_entry(stage: StageKind, key: &str, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    for b in MAGIC {
        w.put_u8(b);
    }
    w.put_u32(FORMAT_VERSION);
    w.put_u8(stage as u8);
    w.put_str(key);
    w.put_bytes(payload);
    let mut bytes = w.into_bytes();
    let checksum = fnv1a64_bytes(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Unwrap an entry, verifying magic, version, stage, full key and checksum.
/// Returns the artifact payload bytes.
pub(crate) fn decode_entry(
    bytes: &[u8],
    stage: StageKind,
    key: &str,
) -> Result<Vec<u8>, EntryError> {
    if bytes.len() < 8 + MAGIC.len() {
        return Err(EntryError::Malformed(CodecError::Truncated));
    }
    let (content, tail) = bytes.split_at(bytes.len() - 8);
    let checksum = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    let mut r = Reader::new(content);
    if r.get_raw(MAGIC.len())? != MAGIC {
        return Err(EntryError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(EntryError::BadVersion(version));
    }
    if r.get_u8()? != stage as u8 {
        return Err(EntryError::StageMismatch);
    }
    if r.get_str()? != key {
        return Err(EntryError::KeyMismatch);
    }
    let payload = r.get_bytes()?;
    r.finish()?;
    // Checked last so the error diagnoses *what* mismatched when the
    // header itself is intact.
    if fnv1a64_bytes(content) != checksum {
        return Err(EntryError::BadChecksum);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_every_defense_fires() {
        let stage = StageKind::Compile;
        let payload = b"artifact bytes".to_vec();
        let good = encode_entry(stage, "the/full:key", &payload);
        assert_eq!(decode_entry(&good, stage, "the/full:key"), Ok(payload));

        // Truncation.
        assert!(matches!(
            decode_entry(&good[..good.len() / 2], stage, "the/full:key"),
            Err(EntryError::Malformed(_) | EntryError::BadChecksum)
        ));
        // Garbage.
        assert!(decode_entry(&[0u8; 64], stage, "the/full:key").is_err());
        // Magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            decode_entry(&bad, stage, "the/full:key"),
            Err(EntryError::BadMagic)
        );
        // Version.
        let mut bad = good.clone();
        bad[8] = 0xee;
        assert!(matches!(
            decode_entry(&bad, stage, "the/full:key"),
            Err(EntryError::BadVersion(_))
        ));
        // Stage.
        assert_eq!(
            decode_entry(&good, StageKind::Parse, "the/full:key"),
            Err(EntryError::StageMismatch)
        );
        // Key.
        assert_eq!(
            decode_entry(&good, stage, "another-key"),
            Err(EntryError::KeyMismatch)
        );
        // Payload bit flip → checksum.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 12] ^= 0x01;
        assert_eq!(
            decode_entry(&bad, stage, "the/full:key"),
            Err(EntryError::BadChecksum)
        );
    }
}
