//! In-flight request coalescing: a process-local single-flight map.
//!
//! The artifact cache already dedups *repeated* work; this seam dedups
//! *concurrent* identical work. When K callers ask for the same key while
//! the first is still computing, one becomes the **leader** and runs the
//! computation; the rest block on a condvar and clone the leader's result.
//! The evaluation server (`asip_serve`) keys this map by the
//! codec-rendered [`EvalRequest`](crate::session::EvalRequest), so K
//! clients hammering one cell cost exactly one compute — the coalescing
//! test pins that via [`CacheStats`](crate::cache::CacheStats) miss
//! counts.
//!
//! The map holds only in-flight entries: the leader removes its key before
//! returning, so a later identical call computes again (and is then served
//! by the cache). Leaders must not panic while computing — the session's
//! evaluation path reports every failure as a typed
//! [`ToolchainError`](crate::pipeline::ToolchainError) value, never a
//! panic, so this invariant holds by construction.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// How many callers led a flight (ran the compute themselves).
static OBS_LEADERS: asip_obs::Counter = asip_obs::Counter::new("flight.leader");
/// How many callers joined an in-flight computation and waited.
static OBS_WAITERS: asip_obs::Counter = asip_obs::Counter::new("flight.waiter");

/// One in-flight computation: the leader publishes into `done` and wakes
/// every follower.
struct Flight<T> {
    done: Mutex<Option<T>>,
    cv: Condvar,
}

/// A single-flight map from byte-string keys to computations of `T`.
///
/// Cheap to share behind an [`Arc`]; an empty map costs one mutex.
pub struct SingleFlight<T> {
    inflight: Mutex<HashMap<Vec<u8>, Arc<Flight<T>>>>,
}

impl<T> Default for SingleFlight<T> {
    fn default() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }
}

impl<T> std::fmt::Debug for SingleFlight<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inflight.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "SingleFlight({n} in flight)")
    }
}

impl<T: Clone> SingleFlight<T> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `compute` under `key`, coalescing with any identical in-flight
    /// call: exactly one concurrent caller per key executes `compute`; the
    /// others block and clone its result. Returns the value and whether
    /// this caller **led** the computation (for per-client attribution).
    pub fn run(&self, key: Vec<u8>, compute: impl FnOnce() -> T) -> (T, bool) {
        let (flight, leader) = {
            let mut map = self.inflight.lock().unwrap();
            match map.entry(key.clone()) {
                Entry::Occupied(e) => (Arc::clone(e.get()), false),
                Entry::Vacant(v) => {
                    let f = Arc::new(Flight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    v.insert(Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if leader {
            OBS_LEADERS.add(1);
            let _span = asip_obs::span("flight", "leader");
            let value = compute();
            // Unlink first: a caller arriving after the result is published
            // must start a fresh flight (the cache serves repeats).
            self.inflight.lock().unwrap().remove(&key);
            *flight.done.lock().unwrap() = Some(value.clone());
            flight.cv.notify_all();
            (value, true)
        } else {
            OBS_WAITERS.add(1);
            let _span = asip_obs::span("flight", "waiter");
            let mut done = flight.done.lock().unwrap();
            while done.is_none() {
                done = flight.cv.wait(done).unwrap();
            }
            (
                done.clone().expect("leader published before notifying"),
                false,
            )
        }
    }

    /// Number of computations currently in flight.
    pub fn len(&self) -> usize {
        self.inflight.lock().unwrap().len()
    }

    /// Whether no computation is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn concurrent_identical_keys_compute_once() {
        let flights = SingleFlight::<u64>::new();
        let computes = AtomicUsize::new(0);
        let gate = std::sync::Barrier::new(8);
        let mut leaders = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        gate.wait();
                        flights.run(b"cell".to_vec(), || {
                            computes.fetch_add(1, Ordering::Relaxed);
                            // Hold the flight open long enough for every
                            // follower to join it.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            42u64
                        })
                    })
                })
                .collect();
            for h in handles {
                let (v, led) = h.join().unwrap();
                assert_eq!(v, 42);
                leaders += usize::from(led);
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1, "one compute total");
        assert_eq!(leaders, 1, "exactly one leader");
        assert!(flights.is_empty(), "flights unlink after completion");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let flights = SingleFlight::<u64>::new();
        let (a, led_a) = flights.run(b"a".to_vec(), || 1);
        let (b, led_b) = flights.run(b"b".to_vec(), || 2);
        assert_eq!((a, b), (1, 2));
        assert!(led_a && led_b);
    }

    #[test]
    fn sequential_calls_recompute() {
        // The map only dedups *concurrent* work; repeats are the cache's job.
        let flights = SingleFlight::<u64>::new();
        let computes = AtomicUsize::new(0);
        for _ in 0..3 {
            let (v, led) = flights.run(b"k".to_vec(), || {
                computes.fetch_add(1, Ordering::Relaxed);
                7
            });
            assert_eq!(v, 7);
            assert!(led);
        }
        assert_eq!(computes.load(Ordering::Relaxed), 3);
    }
}
