//! # asip-core — automated ISA customization (the paper's contribution)
//!
//! This crate assembles the substrates (frontend, IR, backend, simulator,
//! models) into the system *"Customized Instruction-Sets for Embedded
//! Processors"* (Fisher, DAC 1999) describes:
//!
//! * a **mass-customized toolchain** ([`pipeline`]): one object compiles and
//!   runs any TinyC workload on any member of the architecture family, with
//!   profile-guided superblock formation and golden-model output checking;
//! * **instruction-set extension** ([`ise`]): automatic identification and
//!   budget-constrained selection of application-specific operations, with
//!   IR rewriting and machine-description extension;
//! * **design-space exploration** ([`dse`]): the Custom-Fit loop — search
//!   the family's parameter space for the machine that best fits an
//!   application or application area, under area/performance/energy
//!   objectives;
//! * the **N×M validation grid** ([`nxm`]): §3.1's testing discipline,
//!   "architectures as if they were test programs".
//!
//! ## Example: customize a machine for one workload
//!
//! ```no_run
//! use asip_core::pipeline::Toolchain;
//! use asip_core::ise::{extend, IseConfig};
//! use asip_isa::MachineDescription;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = asip_workloads::by_name("fir").unwrap();
//! let tc = Toolchain::default();
//! let mut module = tc.frontend(&workload.source)?;
//! let profile = tc.profile(&module, &workload.inputs, &workload.args)?;
//! let base = MachineDescription::ember4();
//! let (custom_machine, report) = extend(&mut module, &base, &profile, &IseConfig::default());
//! println!("selected {} custom ops", report.selected.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod dse;
pub mod ise;
pub mod nxm;
pub mod pipeline;

pub use pipeline::{Toolchain, ToolchainError, WorkloadRun};
