//! # asip-core — automated ISA customization (the paper's contribution)
//!
//! This crate assembles the substrates (frontend, IR, backend, simulator,
//! models) into the system *"Customized Instruction-Sets for Embedded
//! Processors"* (Fisher, DAC 1999) describes:
//!
//! * a **builder-configured [`Session`]** ([`session`]): the single family
//!   view — one object that owns a **tiered** [`ArtifactCache`] ([`cache`]:
//!   an LRU byte-budgeted memory tier plus an optional persistent disk
//!   tier for cross-process warm starts) and a worker pool, and evaluates
//!   any batch of (workload × machine) cells through
//!   [`Session::eval_batch`] with deterministic, request-ordered results;
//! * the **staged pipeline engine** ([`pipeline`]): the explicit
//!   Parse → Optimize → Profile → Compile → Simulate graph under every
//!   session, with profile-guided superblock formation and golden-model
//!   output checking;
//! * **instruction-set extension** ([`ise`]): automatic identification and
//!   budget-constrained selection of application-specific operations, with
//!   IR rewriting, machine-description extension, and batched measured
//!   budget sweeps ([`ise::sweep_budgets`]);
//! * **design-space exploration** ([`dse`]): the Custom-Fit loop — search
//!   the family's parameter space for the machine that best fits an
//!   application or application area; every candidate cell runs through
//!   [`Session::eval_batch`], so exploration parallelizes for free;
//! * the **N×M validation grid** ([`nxm`]): §3.1's testing discipline,
//!   "architectures as if they were test programs".
//!
//! ## Example: evaluate a family batch, then customize the winner
//!
//! ```no_run
//! use asip_core::dse::{explore, SearchSpace};
//! use asip_core::{EvalRequest, Session};
//! use asip_isa::MachineDescription;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let session = Session::builder()
//!     .threads(8)
//!     .cache_bytes(64 * 1024 * 1024)
//!     .build();
//!
//! // Batch-evaluate two family members on one workload…
//! let fir = asip_workloads::by_name("fir").unwrap();
//! let outcomes = session.eval_batch(&[
//!     EvalRequest::new(fir.clone(), MachineDescription::ember1()),
//!     EvalRequest::new(fir.clone(), MachineDescription::ember4()).with_ise(16.0),
//! ]);
//! for o in &outcomes {
//!     println!("{} on {}: {:?} cycles", o.workload, o.machine, o.cycles());
//! }
//!
//! // …or let the Custom-Fit loop search the whole space (same batch API
//! // underneath, same shared cache).
//! let ex = explore(&session, &SearchSpace::default(), &[fir]);
//! println!("best fit: {}", ex.best_fit().unwrap().machine.name);
//! println!("cache: {}", session.cache_stats());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
mod codec;
pub mod dse;
pub mod flight;
pub mod ise;
pub mod nxm;
pub mod pipeline;
pub mod session;

pub use cache::{
    ArtifactCache, CacheConfig, CacheStats, CacheStore, DiskStore, DiskTierConfig, MemoryStore,
    StageKind, StageStats, StageTimes, TierStats,
};
pub use flight::SingleFlight;
pub use pipeline::{CompiledArtifact, Toolchain, ToolchainError, WorkloadRun};
pub use session::{EvalOptions, EvalOutcome, EvalRequest, EvalRun, Session, SessionBuilder};
