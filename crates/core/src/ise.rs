//! Instruction-set extension (ISE): automatic identification and selection
//! of application-specific custom operations.
//!
//! This automates §1.2's "specialized ALUs … special ops": dataflow
//! subgraphs of pure arithmetic are enumerated inside basic blocks under
//! register-port constraints (≤4 inputs, ≤2 outputs, convex), scored by
//! `executions × (software critical path − hardware latency)`, grouped by
//! structural signature, greedily selected under a silicon-area budget, and
//! finally **rewritten** into the IR as [`asip_isa::Opcode::Custom`]
//! operations. The machine description is extended with the same definitions
//! so compiler, simulator and hardware models stay consistent.

use asip_ir::inst::{BlockId, FuncId, Inst, VReg, Val};
use asip_ir::interp::Profile;
use asip_ir::Module;
use asip_isa::custom::{CustomOpDef, PatNode, PatRef, MAX_CUSTOM_INPUTS, MAX_CUSTOM_OUTPUTS};
use asip_isa::{MachineDescription, Opcode};
use std::collections::{BTreeMap, BTreeSet};

/// ISE engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct IseConfig {
    /// Area budget in adder-equivalents for all selected datapaths.
    pub area_budget: f64,
    /// Maximum nodes per candidate subgraph.
    pub max_nodes: usize,
    /// Maximum candidates enumerated per block (guards the exponential).
    pub max_candidates_per_block: usize,
    /// Maximum number of distinct custom operations selected.
    pub max_ops: usize,
}

impl Default for IseConfig {
    fn default() -> Self {
        IseConfig {
            area_budget: 24.0,
            max_nodes: 6,
            max_candidates_per_block: 300,
            max_ops: 8,
        }
    }
}

/// One selected extension, for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectedOp {
    /// The definition added to the machine and module.
    pub def: CustomOpDef,
    /// Estimated dynamic cycles saved (profile-weighted).
    pub est_saved_cycles: f64,
    /// Static instance count rewritten.
    pub instances: usize,
}

/// Outcome of an ISE run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IseReport {
    /// Selected operations in selection order.
    pub selected: Vec<SelectedOp>,
    /// Candidates considered (after signature grouping).
    pub candidates_considered: usize,
    /// Total area consumed (adder-equivalents).
    pub area_used: f64,
}

/// A candidate instance: a set of instruction indices inside one block.
#[derive(Debug, Clone)]
struct Instance {
    func: FuncId,
    block: BlockId,
    nodes: Vec<usize>, // instruction indices, ascending
}

/// A candidate pattern: definition + all its instances.
#[derive(Debug, Clone)]
struct Candidate {
    def: CustomOpDef,
    #[allow(dead_code)] // kept for debugging dumps
    signature: String,
    instances: Vec<Instance>,
    saved_per_exec: f64,
    exec_weight: u64,
}

/// Run ISE: identify, select under budget, and rewrite the module.
/// Returns the extended machine description and a report.
///
/// The machine must host a `Custom`-capable slot for the rewrite to be
/// usable; the caller is responsible for ensuring that (all `ember` presets
/// do).
pub fn extend(
    module: &mut Module,
    machine: &MachineDescription,
    profile: &Profile,
    cfg: &IseConfig,
) -> (MachineDescription, IseReport) {
    // 1. Enumerate candidates in every block of every function.
    let mut by_sig: BTreeMap<String, Candidate> = BTreeMap::new();
    for (fi, func) in module.funcs.iter().enumerate() {
        for (bi, block) in func.blocks.iter().enumerate() {
            let weight = profile.count(FuncId(fi as u32), BlockId(bi as u32)).max(1);
            enumerate_block(
                &block.insts,
                FuncId(fi as u32),
                BlockId(bi as u32),
                weight,
                machine,
                cfg,
                &mut by_sig,
            );
        }
    }

    let mut candidates: Vec<Candidate> = by_sig.into_values().collect();
    let report_considered = candidates.len();

    // 2. Greedy selection by benefit density under the area budget.
    let mut selected: Vec<Candidate> = Vec::new();
    let mut area_used = 0.0f64;
    loop {
        if selected.len() >= cfg.max_ops {
            break;
        }
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in candidates.iter().enumerate() {
            if c.def.area + area_used > cfg.area_budget || c.instances.is_empty() {
                continue;
            }
            let benefit = c.saved_per_exec * c.exec_weight as f64;
            if benefit <= 0.0 {
                continue;
            }
            let density = benefit / c.def.area.max(0.1);
            if best.is_none_or(|(_, d)| density > d) {
                best = Some((i, density));
            }
        }
        let Some((i, _)) = best else { break };
        let c = candidates.swap_remove(i);
        area_used += c.def.area;
        selected.push(c);
    }

    // 3. Rewrite instances (non-overlapping, per block).
    let mut report = IseReport {
        selected: Vec::new(),
        candidates_considered: report_considered,
        area_used,
    };
    let mut new_machine = machine.clone();
    // One low-water mark per block, shared across *all* selected ops:
    // every applied rewrite invalidates instruction indices at and above
    // its first node.
    let mut low_water: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for cand in selected {
        let id = module.custom_ops.len() as u16;
        module.custom_ops.push(cand.def.clone());
        new_machine.custom_ops.push(cand.def.clone());
        let mut rewritten = 0usize;
        // Group instances per (func, block) and apply back-to-front so
        // earlier indices stay valid.
        let mut per_block: BTreeMap<(u32, u32), Vec<&Instance>> = BTreeMap::new();
        for inst in &cand.instances {
            per_block
                .entry((inst.func.0, inst.block.0))
                .or_default()
                .push(inst);
        }
        for ((fi, bi), mut insts) in per_block {
            insts.sort_by_key(|i| std::cmp::Reverse(*i.nodes.last().expect("nonempty")));
            let block = &mut module.funcs[fi as usize].blocks[bi as usize];
            // Rewrites remove instructions inside [first, last] of each
            // applied instance, shifting every higher index. Processing in
            // descending `last` order, an instance is only safe if it lies
            // entirely below everything already rewritten in this block —
            // including rewrites made for previously selected ops.
            let water = low_water.entry((fi, bi)).or_insert(usize::MAX);
            for inst in insts {
                if *inst.nodes.last().expect("nonempty") >= *water {
                    continue; // indices potentially stale after earlier rewrite
                }
                if rewrite_instance(block, inst, &cand.def, id) {
                    *water = (*water).min(inst.nodes[0]);
                    rewritten += 1;
                }
            }
        }
        report.selected.push(SelectedOp {
            def: cand.def,
            est_saved_cycles: cand.saved_per_exec * cand.exec_weight as f64,
            instances: rewritten,
        });
    }
    (new_machine, report)
}

/// Measure a ladder of ISE area budgets for one workload on one base
/// machine: one golden-checked evaluation per budget, submitted as a single
/// [`Session::eval_batch`](crate::session::Session::eval_batch) — the
/// search runs on the session's worker pool. Outcomes come back in budget
/// order; each carries the extended machine and selection report (see
/// [`EvalRun`](crate::session::EvalRun)).
pub fn sweep_budgets(
    session: &crate::session::Session,
    workload: &asip_workloads::Workload,
    machine: &MachineDescription,
    budgets: &[f64],
) -> Vec<crate::session::EvalOutcome> {
    let reqs: Vec<crate::session::EvalRequest> = budgets
        .iter()
        .map(|&b| crate::session::EvalRequest::new(workload.clone(), machine.clone()).with_ise(b))
        .collect();
    session.eval_batch(&reqs)
}

/// Whether an instruction can be a custom-datapath node.
fn node_op(inst: &Inst) -> Option<(Opcode, Vec<Val>)> {
    match inst {
        Inst::Bin { op, a, b, .. } => {
            // Div/Rem trap; exclude them from datapaths so custom ops stay
            // speculation-neutral and cannot fault.
            if matches!(op, Opcode::Div | Opcode::Rem) {
                None
            } else if op.eval2(1, 1).is_ok() {
                Some((*op, vec![*a, *b]))
            } else {
                None
            }
        }
        Inst::Un { op, a, .. } => {
            if *op == Opcode::Mov {
                None
            } else {
                Some((*op, vec![*a]))
            }
        }
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate_block(
    insts: &[Inst],
    func: FuncId,
    block: BlockId,
    weight: u64,
    machine: &MachineDescription,
    cfg: &IseConfig,
    by_sig: &mut BTreeMap<String, Candidate>,
) {
    let n = insts.len();
    // def_site[v] = last instruction index defining vreg v (block-local).
    // For pattern purposes we need, at each use site, the *reaching* def.
    // We track reaching defs with a forward scan.
    let mut reaching: BTreeMap<VReg, usize> = BTreeMap::new();
    let mut def_of_use: Vec<Vec<Option<usize>>> = Vec::with_capacity(n);
    for (i, inst) in insts.iter().enumerate() {
        let mut slots = Vec::new();
        if let Some((_, vals)) = node_op(inst) {
            for v in vals {
                slots.push(match v {
                    Val::Reg(r) => reaching.get(&r).copied(),
                    Val::Imm(_) => None,
                });
            }
        }
        def_of_use.push(slots);
        for d in inst.defs() {
            reaching.insert(d, i);
        }
    }
    // uses_of[i] = indices of later insts in this block using i's dst before
    // any redefinition.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, slots) in def_of_use.iter().enumerate() {
        for d in slots.iter().flatten() {
            consumers[*d].push(i);
        }
    }

    let mut emitted = 0usize;
    // Seed-and-grow enumeration with dedup on node sets.
    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut stack: Vec<Vec<usize>> = Vec::new();
    for (seed, inst) in insts.iter().enumerate() {
        if node_op(inst).is_some() {
            stack.push(vec![seed]);
        }
    }
    while let Some(set) = stack.pop() {
        if emitted >= cfg.max_candidates_per_block {
            break;
        }
        if seen.contains(&set) {
            continue;
        }
        seen.insert(set.clone());
        // Validate constraints; build a candidate if viable.
        if set.len() >= 2 {
            if let Some((def, saved)) =
                build_candidate(insts, &set, &def_of_use, &reaching, machine)
            {
                let sig = def
                    .describe()
                    .split_once(':')
                    .map(|x| x.1.to_string())
                    .unwrap_or_default();
                let entry = by_sig.entry(sig.clone()).or_insert_with(|| Candidate {
                    def,
                    signature: sig,
                    instances: Vec::new(),
                    saved_per_exec: saved,
                    exec_weight: 0,
                });
                entry.instances.push(Instance {
                    func,
                    block,
                    nodes: set.clone(),
                });
                entry.exec_weight += weight;
                emitted += 1;
            }
        }
        // Grow: add a producer or consumer of any node in the set.
        if set.len() < cfg.max_nodes {
            let mut extensions: BTreeSet<usize> = BTreeSet::new();
            for &i in &set {
                for d in def_of_use[i].iter().flatten() {
                    if node_op(&insts[*d]).is_some() {
                        extensions.insert(*d);
                    }
                }
                for &c in &consumers[i] {
                    extensions.insert(c);
                }
            }
            for e in extensions {
                if !set.contains(&e) {
                    let mut ns = set.clone();
                    ns.push(e);
                    ns.sort_unstable();
                    if !seen.contains(&ns) {
                        stack.push(ns);
                    }
                }
            }
        }
    }
}

/// Try to turn a node set into a custom-op definition; returns the def and
/// the estimated cycles saved per execution.
fn build_candidate(
    insts: &[Inst],
    set: &[usize],
    def_of_use: &[Vec<Option<usize>>],
    final_def: &BTreeMap<VReg, usize>,
    machine: &MachineDescription,
) -> Option<(CustomOpDef, f64)> {
    let in_set = |i: usize| set.contains(&i);

    // Convexity: for every internal edge d -> u (both in set), no outside
    // node on a path between them. For block-local DFGs built from reaching
    // defs, it suffices that every node's input that comes from inside the
    // set is a direct member — which is true by construction — and that no
    // outside consumer of an internal (non-output) value exists *before*
    // the last node (checked in rewrite). The classic convexity violation —
    // set-node → outside → set-node — is checked here:
    for &u in set {
        for d in def_of_use[u].iter().flatten() {
            if !in_set(*d) {
                // Input produced outside: fine unless it transitively
                // depends on a set member (that would be a convexity hole).
                if depends_on_set(*d, set, def_of_use) {
                    return None;
                }
            }
        }
    }

    // Assemble nodes in ascending index order (valid topological order).
    let mut node_index: BTreeMap<usize, u16> = BTreeMap::new();
    let mut inputs: Vec<(VReg, usize)> = Vec::new(); // (vreg, defining idx or MAX)
    let mut nodes: Vec<PatNode> = Vec::new();
    for &i in set {
        let (op, vals) = node_op(&insts[i])?;
        let mut refs: Vec<PatRef> = Vec::with_capacity(2);
        for (k, v) in vals.iter().enumerate() {
            let r = match v {
                Val::Imm(c) => PatRef::Const(*c),
                Val::Reg(reg) => match def_of_use[i][k] {
                    Some(d) if in_set(d) => PatRef::Node(node_index[&d]),
                    other => {
                        // External input: dedup by (vreg, def site).
                        let key = (*reg, other.unwrap_or(usize::MAX));
                        let pos = inputs.iter().position(|x| *x == key).unwrap_or_else(|| {
                            inputs.push(key);
                            inputs.len() - 1
                        });
                        if pos >= MAX_CUSTOM_INPUTS {
                            return None;
                        }
                        PatRef::Input(pos as u8)
                    }
                },
            };
            refs.push(r);
        }
        let a = refs[0];
        let b = refs.get(1).copied().unwrap_or(PatRef::Const(0));
        node_index.insert(i, nodes.len() as u16);
        nodes.push(PatNode { op, a, b });
    }

    // Outputs: set nodes whose value is visible outside the fused op:
    // (a) read by an in-block instruction outside the set, or
    // (b) the *last* definition of its register in the block — the value
    //     may be live out (e.g. a loop-carried accumulator), or
    // (c) not consumed anywhere in the block (also possibly live out).
    let mut outputs: Vec<PatRef> = Vec::new();
    let mut out_count = 0;
    for &i in set {
        let dst = insts[i].defs().first().copied()?;
        let is_last_def = final_def.get(&dst) == Some(&i);
        let consumed_inside_only = {
            // Find consumers through def_of_use.
            let mut any_outside = false;
            let mut any_inside = false;
            for (j, slots) in def_of_use.iter().enumerate() {
                for d in slots.iter().flatten() {
                    if *d == i {
                        if in_set(j) {
                            any_inside = true;
                        } else {
                            any_outside = true;
                        }
                    }
                }
            }
            if is_last_def || (!any_inside && !any_outside) {
                false
            } else {
                !any_outside
            }
        };
        if !consumed_inside_only {
            out_count += 1;
            if out_count > MAX_CUSTOM_OUTPUTS {
                return None;
            }
            outputs.push(PatRef::Node(node_index[&i]));
        }
    }
    if outputs.is_empty() {
        return None;
    }

    let name = format!("ise{}", fxhash(set, insts));
    let def = CustomOpDef::new(&name, inputs.len() as u8, nodes, outputs).ok()?;

    // Benefit: software critical path through the subgraph (machine
    // latencies) minus the hardware latency of the fused op.
    let mut depth: BTreeMap<usize, u32> = BTreeMap::new();
    let mut crit = 0u32;
    for &i in set {
        let mut base = 0u32;
        for d in def_of_use[i].iter().flatten() {
            if in_set(*d) {
                base = base.max(depth[d]);
            }
        }
        let (op, _) = node_op(&insts[i])?;
        let d = base + machine.latency(op);
        depth.insert(i, d);
        crit = crit.max(d);
    }
    // Benefit per execution: latency shortening of the fused datapath plus
    // the issue-bandwidth reclaimed by collapsing N operations into one
    // slot (worth roughly half a cycle per op removed on these machines).
    let lat_saved = crit.saturating_sub(def.latency) as f64;
    let issue_saved = 0.5 * (set.len() as f64 - 1.0);
    Some((def, lat_saved + issue_saved))
}

/// Does instruction `i`'s dataflow (within the block) reach back into `set`?
fn depends_on_set(i: usize, set: &[usize], def_of_use: &[Vec<Option<usize>>]) -> bool {
    let mut stack = vec![i];
    let mut seen = BTreeSet::new();
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        if set.contains(&x) {
            return true;
        }
        for d in def_of_use[x].iter().flatten() {
            stack.push(*d);
        }
    }
    false
}

/// Tiny stable hash for generated op names.
fn fxhash(set: &[usize], insts: &[Inst]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &i in set {
        if let Some((op, _)) = node_op(&insts[i]) {
            h = h.wrapping_mul(0x0100_0193) ^ (asip_isa::encoding::opcode_id(op) as u32);
        }
        h = h.wrapping_mul(0x0100_0193) ^ (set.len() as u32);
    }
    h % 100_000
}

/// Rewrite one instance: remove the member instructions, insert the custom
/// op at the last member's position. Returns false (leaving the block
/// untouched) if safety checks fail.
fn rewrite_instance(
    block: &mut asip_ir::Block,
    inst: &Instance,
    def: &CustomOpDef,
    id: u16,
) -> bool {
    let set = &inst.nodes;
    let first = *set.first().expect("nonempty");
    let last = *set.last().expect("nonempty");
    let in_set = |i: usize| set.contains(&i);

    // Recompute reaching defs for safety checks.
    let insts = &block.insts;
    // Collect per-node (op, vals, dst).
    let mut dsts: BTreeMap<usize, VReg> = BTreeMap::new();
    for &i in set {
        let d = insts[i].defs();
        if d.len() != 1 {
            return false;
        }
        dsts.insert(i, d[0]);
    }

    // Safety: between first and last, outside instructions must not
    // (a) define any register the subgraph reads or writes, or
    // (b) read any subgraph-defined register.
    let mut reads: BTreeSet<VReg> = BTreeSet::new();
    for &i in set {
        for u in insts[i].uses() {
            reads.insert(u);
        }
    }
    let writes: BTreeSet<VReg> = dsts.values().copied().collect();
    for (j, other) in insts.iter().enumerate().take(last + 1).skip(first) {
        if in_set(j) {
            continue;
        }
        for d in other.defs() {
            if reads.contains(&d) || writes.contains(&d) {
                return false;
            }
        }
        for u in other.uses() {
            if writes.contains(&u) {
                return false;
            }
        }
    }

    // Map inputs: reproduce build_candidate's dedup order by rescanning.
    let mut reaching: BTreeMap<VReg, usize> = BTreeMap::new();
    let mut def_site: Vec<Vec<Option<usize>>> = Vec::with_capacity(insts.len());
    for (i, ins) in insts.iter().enumerate() {
        let mut slots = Vec::new();
        if let Some((_, vals)) = node_op(ins) {
            for v in vals {
                slots.push(match v {
                    Val::Reg(r) => reaching.get(&r).copied(),
                    Val::Imm(_) => None,
                });
            }
        }
        def_site.push(slots);
        for d in ins.defs() {
            reaching.insert(d, i);
        }
    }
    let mut inputs: Vec<(VReg, usize)> = Vec::new();
    let mut args: Vec<Val> = Vec::new();
    for &i in set {
        let Some((_, vals)) = node_op(&insts[i]) else {
            return false;
        };
        for (k, v) in vals.iter().enumerate() {
            if let Val::Reg(reg) = v {
                let from = def_site[i][k];
                if from.map(&in_set).unwrap_or(false) {
                    continue; // internal edge
                }
                let key = (*reg, from.unwrap_or(usize::MAX));
                if !inputs.contains(&key) {
                    inputs.push(key);
                    args.push(Val::Reg(*reg));
                }
            }
        }
    }
    if args.len() != def.num_inputs as usize {
        return false; // instance diverged from the canonical pattern
    }

    // Outputs: nodes listed in def.outputs (PatRef::Node indices map to the
    // k-th member of `set`).
    let mut out_dsts: Vec<VReg> = Vec::new();
    for o in &def.outputs {
        match o {
            PatRef::Node(k) => {
                let node_i = set[*k as usize];
                out_dsts.push(dsts[&node_i]);
            }
            _ => return false,
        }
    }
    let mut dedup = out_dsts.clone();
    dedup.sort();
    dedup.dedup();
    if dedup.len() != out_dsts.len() {
        return false; // two outputs share a destination register
    }

    // Apply: remove members (back to front), insert custom op where the
    // last member was.
    let custom = Inst::Custom {
        id,
        dsts: out_dsts,
        args,
    };
    let mut removed_before_last = 0usize;
    for &i in set.iter().rev() {
        if i != last {
            block.insts.remove(i);
            if i < last {
                removed_before_last += 1;
            }
        }
    }
    block.insts[last - removed_before_last] = custom;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Toolchain;
    use asip_ir::interp::run_module;

    fn profiled(src: &str, args: &[i32]) -> (Module, Profile) {
        let tc = Toolchain::default();
        let module = tc.frontend(src).unwrap();
        let r = run_module(&module, "main", args).unwrap();
        (module, r.profile)
    }

    #[test]
    fn finds_mac_pattern_in_dot_product() {
        let src = r#"
            int x[64];
            int h[64];
            void main(int n) {
                int acc = 0;
                int i;
                for (i = 0; i < n; i++) acc += x[i] * h[i];
                emit(acc);
            }
        "#;
        let (mut module, profile) = profiled(src, &[64]);
        let machine = MachineDescription::ember4();
        let (new_machine, report) = extend(&mut module, &machine, &profile, &IseConfig::default());
        assert!(
            !report.selected.is_empty(),
            "a MAC-like pattern should be found"
        );
        assert!(new_machine.custom_ops.len() > machine.custom_ops.len());
        // The rewritten module must still verify and produce the same output.
        assert_eq!(asip_ir::func::verify(&module), Ok(()));
        let has_custom = module
            .funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.insts.iter())
            .any(|i| matches!(i, Inst::Custom { .. }));
        assert!(has_custom, "rewrite must introduce custom ops");
    }

    #[test]
    fn rewritten_module_is_semantically_identical() {
        let src = r#"
            int x[32];
            void main(int n) {
                int acc = 0;
                int i;
                for (i = 0; i < n; i++) {
                    int t = x[i] * 3 + (x[i] >> 2);
                    acc ^= t + i;
                }
                emit(acc);
            }
        "#;
        let tc = Toolchain::default();
        let module0 = tc.frontend(src).unwrap();
        let mut module1 = module0.clone();
        let r = run_module(&module0, "main", &[32]).unwrap();
        let machine = MachineDescription::ember4();
        let (_, report) = extend(&mut module1, &machine, &r.profile, &IseConfig::default());
        assert!(report.candidates_considered > 0);
        for n in [0, 7, 32] {
            let a = run_module(&module0, "main", &[n]).unwrap();
            let b = run_module(&module1, "main", &[n]).unwrap();
            assert_eq!(a.output, b.output, "n={n}");
        }
    }

    #[test]
    fn budget_zero_selects_nothing() {
        let src = "void main(int a, int b) { emit(a * b + a - b); }";
        let (mut module, profile) = profiled(src, &[3, 4]);
        let machine = MachineDescription::ember4();
        let cfg = IseConfig {
            area_budget: 0.0,
            ..Default::default()
        };
        let (m2, report) = extend(&mut module, &machine, &profile, &cfg);
        assert!(report.selected.is_empty());
        assert_eq!(m2.custom_ops.len(), machine.custom_ops.len());
    }

    #[test]
    fn larger_budget_never_selects_fewer() {
        let w = asip_workloads::by_name("median").unwrap();
        let tc = Toolchain::default();
        let module = tc.frontend(&w.source).unwrap();
        let profile = tc.profile(&module, &w.inputs, &w.args).unwrap();
        let machine = MachineDescription::ember4();
        let mut counts = Vec::new();
        for budget in [2.0, 8.0, 32.0] {
            let mut m = module.clone();
            let cfg = IseConfig {
                area_budget: budget,
                ..Default::default()
            };
            let (_, report) = extend(&mut m, &machine, &profile, &cfg);
            counts.push(report.selected.len());
        }
        assert!(
            counts[0] <= counts[2],
            "selection must grow with budget: {counts:?}"
        );
    }

    #[test]
    fn budget_sweep_runs_batched_and_ordered() {
        let session = crate::session::Session::builder().threads(4).build();
        let w = asip_workloads::by_name("yuv2rgb").unwrap();
        let machine = MachineDescription::ember1();
        let budgets = [0.0, 16.0, 64.0];
        let out = sweep_budgets(&session, &w, &machine, &budgets);
        assert_eq!(out.len(), budgets.len());
        let base = out[0].cycles().expect("budget 0 runs");
        let at_max = out[2].cycles().expect("budget 64 runs");
        assert!(
            at_max <= base,
            "custom ops must not slow the 1-issue machine: {at_max} vs {base}"
        );
        assert!(out[0].result.as_ref().unwrap().ise.is_none());
        let at64 = out[2].result.as_ref().unwrap();
        assert!(at64.ise.as_ref().is_some_and(|r| !r.selected.is_empty()));
    }

    #[test]
    fn end_to_end_with_custom_ops_on_simulator() {
        let w = asip_workloads::by_name("yuv2rgb").unwrap();
        let tc = Toolchain::default();
        let mut module = tc.frontend(&w.source).unwrap();
        let profile = tc.profile(&module, &w.inputs, &w.args).unwrap();
        let machine = MachineDescription::ember4();
        let (machine2, report) = extend(&mut module, &machine, &profile, &IseConfig::default());
        assert!(
            !report.selected.is_empty(),
            "yuv2rgb should yield fused ops"
        );
        let compiled = tc.compile(&module, &machine2, Some(&profile)).unwrap();
        let mut sim =
            asip_sim::Simulator::new(&machine2, &compiled.program, Default::default()).unwrap();
        for (name, data) in &w.inputs {
            sim.write_global(name, data);
        }
        let result = sim.run(&w.args).unwrap();
        assert_eq!(
            result.output, w.expected,
            "custom-op build must stay correct"
        );
    }
}
