//! Design-space exploration: the Custom-Fit loop.
//!
//! Given one application (or a whole application area — §6.1's preferred
//! unit), explore the family's parameter space by compiling and simulating
//! every candidate, then report evaluated design points and the
//! area/performance Pareto frontier. This is the machinery reference [2] of
//! the paper (Fisher/Faraboschi/Desoli, MICRO-29) built commercially and
//! the talk presumes.

use crate::ise::{extend, IseConfig};
use crate::pipeline::Toolchain;
use asip_isa::hwmodel::{area, cycle_time, energy};
use asip_isa::{FuKind, MachineDescription};
use asip_workloads::Workload;

/// Deterministic seeded Fisher–Yates shuffle (SplitMix64 stream), so sampled
/// exploration is reproducible without an external RNG dependency.
fn seeded_shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// The search space: a cartesian grid over the §1.2 customization axes.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Slot templates to consider (issue width / FU mix / clusters).
    pub templates: Vec<MachineDescription>,
    /// Register-file sizes per cluster.
    pub registers: Vec<u16>,
    /// Multiplier latencies.
    pub mul_latencies: Vec<u32>,
    /// ISE area budgets in adder-equivalents (0 = no custom ops).
    pub ise_budgets: Vec<f64>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            templates: vec![
                MachineDescription::ember1(),
                MachineDescription::ember2(),
                MachineDescription::ember4(),
                MachineDescription::ember4x2(),
                MachineDescription::ember8(),
            ],
            registers: vec![16, 32],
            mul_latencies: vec![2],
            ise_budgets: vec![0.0, 16.0],
        }
    }
}

impl SearchSpace {
    /// A minimal space for smoke tests.
    pub fn tiny() -> SearchSpace {
        SearchSpace {
            templates: vec![MachineDescription::ember1(), MachineDescription::ember4()],
            registers: vec![32],
            mul_latencies: vec![2],
            ise_budgets: vec![0.0],
        }
    }

    /// Materialize every machine in the grid (before ISE).
    pub fn machines(&self) -> Vec<MachineDescription> {
        let mut out = Vec::new();
        for t in &self.templates {
            for &r in &self.registers {
                for &lm in &self.mul_latencies {
                    let name = format!("{}-r{r}-m{lm}", t.name);
                    let m = t.derive(&name, |m| {
                        m.regs_per_cluster = r;
                        m.lat_mul = lm;
                    });
                    if m.validate().is_ok() {
                        out.push(m);
                    }
                }
            }
        }
        out
    }
}

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The (possibly ISE-extended) machine.
    pub machine: MachineDescription,
    /// Geometric-mean run time in nanoseconds across the workload set.
    pub time_ns: f64,
    /// Geometric-mean cycles.
    pub cycles: f64,
    /// Silicon area (mm²).
    pub area_mm2: f64,
    /// Total energy (nJ) across the workload set.
    pub energy_nj: f64,
    /// Per-workload cycle counts, parallel to the evaluated workload list.
    pub per_workload_cycles: Vec<u64>,
    /// ISE budget used to build the machine.
    pub ise_budget: f64,
}

impl DesignPoint {
    /// Performance as 1/time (arbitrary units, higher is better).
    pub fn perf(&self) -> f64 {
        1e9 / self.time_ns.max(1e-9)
    }
}

/// Exploration failures (a point that fails to compile/run is skipped and
/// reported).
#[derive(Debug, Clone)]
pub struct SkippedPoint {
    /// Machine name.
    pub machine: String,
    /// Why it was skipped.
    pub reason: String,
}

/// Exploration outcome.
#[derive(Debug, Clone, Default)]
pub struct Exploration {
    /// Every successfully evaluated point.
    pub points: Vec<DesignPoint>,
    /// Points that failed to build or run.
    pub skipped: Vec<SkippedPoint>,
}

impl Exploration {
    /// The area/performance Pareto frontier, sorted by area.
    pub fn pareto(&self) -> Vec<&DesignPoint> {
        let mut pts: Vec<&DesignPoint> = self.points.iter().collect();
        pts.sort_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2));
        let mut frontier: Vec<&DesignPoint> = Vec::new();
        let mut best_time = f64::INFINITY;
        for p in pts {
            if p.time_ns < best_time {
                best_time = p.time_ns;
                frontier.push(p);
            }
        }
        frontier
    }

    /// The point with the lowest run time.
    pub fn fastest(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.time_ns.total_cmp(&b.time_ns))
    }

    /// The point minimizing `time × area` (a balanced fit).
    pub fn best_fit(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .min_by(|a, b| (a.time_ns * a.area_mm2).total_cmp(&(b.time_ns * b.area_mm2)))
    }
}

/// Evaluate one machine (with optional ISE customization) on a workload set.
///
/// # Errors
///
/// A string describing the first failing stage.
pub fn evaluate(
    tc: &Toolchain,
    base: &MachineDescription,
    workloads: &[Workload],
    ise_budget: f64,
) -> Result<DesignPoint, String> {
    let mut log_cycles = 0.0f64;
    let mut total_energy = 0.0f64;
    let mut per = Vec::with_capacity(workloads.len());
    let mut machine_used = base.clone();

    for w in workloads {
        let mut module = tc.frontend(&w.source).map_err(|e| e.to_string())?;
        let profile = tc
            .profile(&module, &w.inputs, &w.args)
            .map_err(|e| e.to_string())?;
        let machine = if ise_budget > 0.0 && base.has_fu(FuKind::Custom) {
            let cfg = IseConfig {
                area_budget: ise_budget,
                ..Default::default()
            };
            let (m2, _report) = extend(&mut module, &machine_used, &profile, &cfg);
            m2
        } else {
            machine_used.clone()
        };
        let compiled = tc
            .compile(&module, &machine, Some(&profile))
            .map_err(|e| e.to_string())?;
        let run = tc
            .run_compiled(w, &machine, &compiled)
            .map_err(|e| e.to_string())?;
        log_cycles += (run.sim.cycles.max(1) as f64).ln();
        total_energy += energy(&machine, &run.sim.activity).total_nj();
        per.push(run.sim.cycles);
        machine_used = machine; // accumulate custom ops across the area's apps
    }

    let gm_cycles = (log_cycles / workloads.len().max(1) as f64).exp();
    let period = cycle_time(&machine_used).period_ns();
    Ok(DesignPoint {
        area_mm2: area(&machine_used).total(),
        time_ns: gm_cycles * period,
        cycles: gm_cycles,
        energy_nj: total_energy,
        per_workload_cycles: per,
        machine: machine_used,
        ise_budget,
    })
}

/// Exhaustively evaluate the whole grid.
pub fn explore(tc: &Toolchain, space: &SearchSpace, workloads: &[Workload]) -> Exploration {
    let mut out = Exploration::default();
    for m in space.machines() {
        for &budget in &space.ise_budgets {
            match evaluate(tc, &m, workloads, budget) {
                Ok(p) => out.points.push(p),
                Err(reason) => out.skipped.push(SkippedPoint {
                    machine: m.name.clone(),
                    reason,
                }),
            }
        }
    }
    out
}

/// Randomly sample `n` points of the grid (for large spaces).
pub fn explore_sampled(
    tc: &Toolchain,
    space: &SearchSpace,
    workloads: &[Workload],
    n: usize,
    seed: u64,
) -> Exploration {
    let mut grid: Vec<(MachineDescription, f64)> = Vec::new();
    for m in space.machines() {
        for &b in &space.ise_budgets {
            grid.push((m.clone(), b));
        }
    }
    seeded_shuffle(&mut grid, seed);
    grid.truncate(n);
    let mut out = Exploration::default();
    for (m, budget) in grid {
        match evaluate(tc, &m, workloads, budget) {
            Ok(p) => out.points.push(p),
            Err(reason) => out.skipped.push(SkippedPoint {
                machine: m.name.clone(),
                reason,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_space_explores_and_orders() {
        let tc = Toolchain::default();
        let ws = vec![asip_workloads::by_name("autocorr").unwrap()];
        let ex = explore(&tc, &SearchSpace::tiny(), &ws);
        assert!(ex.points.len() >= 2, "skipped: {:?}", ex.skipped);
        let fast = ex.fastest().unwrap();
        // The 4-issue machine should beat the 1-issue machine on cycles.
        let e1 = ex
            .points
            .iter()
            .find(|p| p.machine.name.contains("ember1"))
            .unwrap();
        let e4 = ex
            .points
            .iter()
            .find(|p| p.machine.name.contains("ember4"))
            .unwrap();
        assert!(
            e4.cycles < e1.cycles,
            "e4 {} vs e1 {}",
            e4.cycles,
            e1.cycles
        );
        assert!(fast.time_ns <= e1.time_ns);
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let tc = Toolchain::default();
        let ws = vec![asip_workloads::by_name("crc32").unwrap()];
        let ex = explore(&tc, &SearchSpace::tiny(), &ws);
        let frontier = ex.pareto();
        assert!(!frontier.is_empty());
        for pair in frontier.windows(2) {
            assert!(pair[0].area_mm2 <= pair[1].area_mm2);
            assert!(
                pair[0].time_ns > pair[1].time_ns,
                "frontier must strictly improve"
            );
        }
    }

    #[test]
    fn sampled_exploration_is_deterministic() {
        let tc = Toolchain::default();
        let ws = vec![asip_workloads::by_name("rle").unwrap()];
        let a = explore_sampled(&tc, &SearchSpace::tiny(), &ws, 2, 7);
        let b = explore_sampled(&tc, &SearchSpace::tiny(), &ws, 2, 7);
        let names_a: Vec<&str> = a.points.iter().map(|p| p.machine.name.as_str()).collect();
        let names_b: Vec<&str> = b.points.iter().map(|p| p.machine.name.as_str()).collect();
        assert_eq!(names_a, names_b);
    }
}
