//! Design-space exploration: the Custom-Fit loop.
//!
//! Given one application (or a whole application area — §6.1's preferred
//! unit), explore the family's parameter space by compiling and simulating
//! every candidate, then report evaluated design points and the
//! area/performance Pareto frontier. This is the machinery reference \[2\] of
//! the paper (Fisher/Faraboschi/Desoli, MICRO-29) built commercially and
//! the talk presumes.
//!
//! Every candidate evaluation flows through [`Session::eval_batch`]: one
//! [`crate::session::EvalRequest`] per (design point ×
//! workload) cell, executed on the session's worker pool — exploration is
//! parallel for free, and results are request-ordered, so an exploration is
//! byte-identical whether the session runs one thread or many.
//!
//! When a design point carries an ISE budget, each workload's custom
//! operations are selected independently from the base machine (selection
//! depends only on the workload's profiled dataflow), and the design
//! point's machine accumulates every workload's selected ops in workload
//! order — the silicon must host them all, so area and cycle time are
//! priced on the union.

use crate::pipeline::ToolchainError;
use crate::session::{EvalOutcome, EvalRequest, Session};
use asip_isa::hwmodel::{area, cycle_time, energy};
use asip_isa::MachineDescription;
use asip_workloads::Workload;
use std::fmt;

/// Deterministic seeded Fisher–Yates shuffle (SplitMix64 stream), so sampled
/// exploration is reproducible without an external RNG dependency.
fn seeded_shuffle<T>(items: &mut [T], seed: u64) {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// The search space: a cartesian grid over the §1.2 customization axes.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Slot templates to consider (issue width / FU mix / clusters).
    pub templates: Vec<MachineDescription>,
    /// Register-file sizes per cluster.
    pub registers: Vec<u16>,
    /// Multiplier latencies.
    pub mul_latencies: Vec<u32>,
    /// ISE area budgets in adder-equivalents (0 = no custom ops).
    pub ise_budgets: Vec<f64>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace {
            templates: vec![
                MachineDescription::ember1(),
                MachineDescription::ember2(),
                MachineDescription::ember4(),
                MachineDescription::ember4x2(),
                MachineDescription::ember8(),
            ],
            registers: vec![16, 32],
            mul_latencies: vec![2],
            ise_budgets: vec![0.0, 16.0],
        }
    }
}

impl SearchSpace {
    /// A minimal space for smoke tests.
    pub fn tiny() -> SearchSpace {
        SearchSpace {
            templates: vec![MachineDescription::ember1(), MachineDescription::ember4()],
            registers: vec![32],
            mul_latencies: vec![2],
            ise_budgets: vec![0.0],
        }
    }

    /// Materialize every machine in the grid (before ISE).
    pub fn machines(&self) -> Vec<MachineDescription> {
        let mut out = Vec::new();
        for t in &self.templates {
            for &r in &self.registers {
                for &lm in &self.mul_latencies {
                    let name = format!("{}-r{r}-m{lm}", t.name);
                    let m = t.derive(&name, |m| {
                        m.regs_per_cluster = r;
                        m.lat_mul = lm;
                    });
                    if m.validate().is_ok() {
                        out.push(m);
                    }
                }
            }
        }
        out
    }

    /// Every (machine, ISE budget) design-point candidate, in grid order.
    pub fn points(&self) -> Vec<(MachineDescription, f64)> {
        let mut out = Vec::new();
        for m in self.machines() {
            for &b in &self.ise_budgets {
                out.push((m.clone(), b));
            }
        }
        out
    }
}

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The (possibly ISE-extended) machine.
    pub machine: MachineDescription,
    /// Geometric-mean run time in nanoseconds across the workload set.
    pub time_ns: f64,
    /// Geometric-mean cycles.
    pub cycles: f64,
    /// Silicon area (mm²).
    pub area_mm2: f64,
    /// Total energy (nJ) across the workload set.
    pub energy_nj: f64,
    /// Per-workload cycle counts, parallel to the evaluated workload list.
    pub per_workload_cycles: Vec<u64>,
    /// ISE budget used to build the machine.
    pub ise_budget: f64,
}

impl DesignPoint {
    /// Performance as 1/time (arbitrary units, higher is better).
    pub fn perf(&self) -> f64 {
        1e9 / self.time_ns.max(1e-9)
    }
}

/// A design point that failed to compile or run, with the typed cause.
#[derive(Debug, Clone)]
pub struct SkippedPoint {
    /// Machine name.
    pub machine: String,
    /// The first failing cell's error.
    pub error: ToolchainError,
}

impl fmt::Display for SkippedPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.machine, self.error)
    }
}

/// Exploration outcome.
#[derive(Debug, Clone, Default)]
pub struct Exploration {
    /// Every successfully evaluated point.
    pub points: Vec<DesignPoint>,
    /// Points that failed to build or run.
    pub skipped: Vec<SkippedPoint>,
}

impl Exploration {
    /// The area/performance Pareto frontier, sorted by area.
    pub fn pareto(&self) -> Vec<&DesignPoint> {
        let mut pts: Vec<&DesignPoint> = self.points.iter().collect();
        pts.sort_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2));
        let mut frontier: Vec<&DesignPoint> = Vec::new();
        let mut best_time = f64::INFINITY;
        for p in pts {
            if p.time_ns < best_time {
                best_time = p.time_ns;
                frontier.push(p);
            }
        }
        frontier
    }

    /// The point with the lowest run time.
    pub fn fastest(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.time_ns.total_cmp(&b.time_ns))
    }

    /// The point minimizing `time × area` (a balanced fit).
    pub fn best_fit(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .min_by(|a, b| (a.time_ns * a.area_mm2).total_cmp(&(b.time_ns * b.area_mm2)))
    }
}

/// Fold one design point's per-workload outcomes (request-ordered) into a
/// [`DesignPoint`]; the first failing cell aborts the point.
fn reduce_point(
    base: &MachineDescription,
    workloads: &[Workload],
    outcomes: &[EvalOutcome],
    ise_budget: f64,
) -> Result<DesignPoint, ToolchainError> {
    let mut log_cycles = 0.0f64;
    let mut total_energy = 0.0f64;
    let mut per = Vec::with_capacity(outcomes.len());
    let mut machine_used = base.clone();

    for o in outcomes {
        let run = o.result.as_ref().map_err(Clone::clone)?;
        log_cycles += (run.run.sim.cycles.max(1) as f64).ln();
        total_energy += energy(&run.machine, &run.run.sim.activity).total_nj();
        per.push(run.run.sim.cycles);
        // Accumulate this workload's newly selected custom ops onto the
        // design point's machine: the fabricated part hosts the union, so
        // an op two workloads both selected occupies silicon once.
        for def in run.machine.custom_ops.iter().skip(base.custom_ops.len()) {
            if !machine_used.custom_ops.contains(def) {
                machine_used.custom_ops.push(def.clone());
            }
        }
    }

    let gm_cycles = (log_cycles / workloads.len().max(1) as f64).exp();
    let period = cycle_time(&machine_used).period_ns();
    Ok(DesignPoint {
        area_mm2: area(&machine_used).total(),
        time_ns: gm_cycles * period,
        cycles: gm_cycles,
        energy_nj: total_energy,
        per_workload_cycles: per,
        machine: machine_used,
        ise_budget,
    })
}

/// Evaluate one machine (with optional ISE customization) on a workload
/// set; the per-workload cells run as one batch on the session's pool.
///
/// # Errors
///
/// The first failing cell's [`ToolchainError`].
pub fn evaluate(
    session: &Session,
    base: &MachineDescription,
    workloads: &[Workload],
    ise_budget: f64,
) -> Result<DesignPoint, ToolchainError> {
    let reqs: Vec<EvalRequest> = workloads
        .iter()
        .map(|w| EvalRequest::new(w.clone(), base.clone()).with_ise(ise_budget))
        .collect();
    let outcomes = session.eval_batch(&reqs);
    reduce_point(base, workloads, &outcomes, ise_budget)
}

/// Evaluate an explicit list of design points: every (point × workload)
/// cell becomes one request in a single [`Session::eval_batch`] call.
pub fn explore_points(
    session: &Session,
    points: &[(MachineDescription, f64)],
    workloads: &[Workload],
) -> Exploration {
    let mut out = Exploration::default();
    if workloads.is_empty() || points.is_empty() {
        return out;
    }
    let reqs: Vec<EvalRequest> = points
        .iter()
        .flat_map(|(m, b)| {
            workloads
                .iter()
                .map(move |w| EvalRequest::new(w.clone(), m.clone()).with_ise(*b))
        })
        .collect();
    let outcomes = session.eval_batch(&reqs);
    for ((m, b), chunk) in points.iter().zip(outcomes.chunks(workloads.len())) {
        match reduce_point(m, workloads, chunk, *b) {
            Ok(p) => out.points.push(p),
            Err(error) => out.skipped.push(SkippedPoint {
                machine: m.name.clone(),
                error,
            }),
        }
    }
    out
}

/// Exhaustively evaluate the whole grid through [`Session::eval_batch`].
pub fn explore(session: &Session, space: &SearchSpace, workloads: &[Workload]) -> Exploration {
    explore_points(session, &space.points(), workloads)
}

/// Randomly sample `n` points of the grid (for large spaces); the sampled
/// points still evaluate as one batch.
pub fn explore_sampled(
    session: &Session,
    space: &SearchSpace,
    workloads: &[Workload],
    n: usize,
    seed: u64,
) -> Exploration {
    let mut grid = space.points();
    seeded_shuffle(&mut grid, seed);
    grid.truncate(n);
    explore_points(session, &grid, workloads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_space_explores_and_orders() {
        let session = Session::builder().build();
        let ws = vec![asip_workloads::by_name("autocorr").unwrap()];
        let ex = explore(&session, &SearchSpace::tiny(), &ws);
        assert!(ex.points.len() >= 2, "skipped: {:?}", ex.skipped);
        let fast = ex.fastest().unwrap();
        // The 4-issue machine should beat the 1-issue machine on cycles.
        let e1 = ex
            .points
            .iter()
            .find(|p| p.machine.name.contains("ember1"))
            .unwrap();
        let e4 = ex
            .points
            .iter()
            .find(|p| p.machine.name.contains("ember4"))
            .unwrap();
        assert!(
            e4.cycles < e1.cycles,
            "e4 {} vs e1 {}",
            e4.cycles,
            e1.cycles
        );
        assert!(fast.time_ns <= e1.time_ns);
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let session = Session::builder().build();
        let ws = vec![asip_workloads::by_name("crc32").unwrap()];
        let ex = explore(&session, &SearchSpace::tiny(), &ws);
        let frontier = ex.pareto();
        assert!(!frontier.is_empty());
        for pair in frontier.windows(2) {
            assert!(pair[0].area_mm2 <= pair[1].area_mm2);
            assert!(
                pair[0].time_ns > pair[1].time_ns,
                "frontier must strictly improve"
            );
        }
    }

    #[test]
    fn sampled_exploration_is_deterministic() {
        let session = Session::builder().build();
        let ws = vec![asip_workloads::by_name("rle").unwrap()];
        let a = explore_sampled(&session, &SearchSpace::tiny(), &ws, 2, 7);
        let b = explore_sampled(&session, &SearchSpace::tiny(), &ws, 2, 7);
        let names_a: Vec<&str> = a.points.iter().map(|p| p.machine.name.as_str()).collect();
        let names_b: Vec<&str> = b.points.iter().map(|p| p.machine.name.as_str()).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn evaluate_batches_per_workload_cells() {
        let session = Session::builder().threads(4).build();
        let ws: Vec<Workload> = ["fir", "crc32"]
            .iter()
            .map(|n| asip_workloads::by_name(n).unwrap())
            .collect();
        let p = evaluate(&session, &MachineDescription::ember4(), &ws, 0.0).unwrap();
        assert_eq!(p.per_workload_cycles.len(), 2);
        assert!(p.area_mm2 > 0.0 && p.time_ns > 0.0);
    }
}
