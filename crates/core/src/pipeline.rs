//! The end-to-end toolchain pipeline: TinyC → IR → optimization → profile →
//! backend → simulation, with golden-model checking.
//!
//! This is the "single family view" the paper's §3.1 promises programmers:
//! one `Toolchain` object compiles and runs any workload on any family
//! member, with identical semantics everywhere.

use asip_backend::{compile_module, BackendOptions, BackendStats, CompiledProgram};
use asip_ir::interp::{Interp, InterpOptions, Profile};
use asip_ir::passes::{optimize, OptConfig};
use asip_ir::Module;
use asip_isa::MachineDescription;
use asip_sim::{SimOptions, SimResult, Simulator};
use asip_workloads::Workload;
use std::fmt;

/// Toolchain failure at any stage.
#[derive(Debug)]
pub enum ToolchainError {
    /// Frontend error.
    Frontend(asip_tinyc::CompileError),
    /// Backend error.
    Backend(asip_backend::BackendError),
    /// Simulator error.
    Sim(asip_sim::SimError),
    /// Interpreter error while profiling.
    Profile(asip_ir::InterpError),
    /// The simulated output did not match the workload's golden stream.
    WrongOutput {
        /// Workload name.
        workload: String,
        /// Machine name.
        machine: String,
        /// Expected prefix.
        expected: Vec<i32>,
        /// Actual prefix.
        actual: Vec<i32>,
    },
}

impl fmt::Display for ToolchainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolchainError::Frontend(e) => write!(f, "frontend: {e}"),
            ToolchainError::Backend(e) => write!(f, "backend: {e}"),
            ToolchainError::Sim(e) => write!(f, "simulator: {e}"),
            ToolchainError::Profile(e) => write!(f, "profiling: {e}"),
            ToolchainError::WrongOutput { workload, machine, expected, actual } => write!(
                f,
                "{workload} on {machine}: wrong output (expected {:?}…, got {:?}…)",
                &expected[..expected.len().min(4)],
                &actual[..actual.len().min(4)]
            ),
        }
    }
}

impl std::error::Error for ToolchainError {}

impl From<asip_tinyc::CompileError> for ToolchainError {
    fn from(e: asip_tinyc::CompileError) -> Self {
        ToolchainError::Frontend(e)
    }
}

impl From<asip_backend::BackendError> for ToolchainError {
    fn from(e: asip_backend::BackendError) -> Self {
        ToolchainError::Backend(e)
    }
}

impl From<asip_sim::SimError> for ToolchainError {
    fn from(e: asip_sim::SimError) -> Self {
        ToolchainError::Sim(e)
    }
}

/// The configured toolchain.
#[derive(Debug, Clone)]
pub struct Toolchain {
    /// Optimization pipeline configuration.
    pub opt: OptConfig,
    /// Backend configuration.
    pub backend: BackendOptions,
    /// Use interpreter profiles to guide superblock formation.
    pub profile_guided: bool,
}

impl Default for Toolchain {
    fn default() -> Self {
        Toolchain {
            opt: OptConfig::default(),
            backend: BackendOptions::default(),
            profile_guided: true,
        }
    }
}

/// Result of running one workload on one machine.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Workload name.
    pub workload: String,
    /// Machine name.
    pub machine: String,
    /// Simulation result.
    pub sim: SimResult,
    /// Compile-time statistics.
    pub compile: BackendStats,
    /// Code size in bytes under the machine's encoding.
    pub code_bytes: u32,
}

impl Toolchain {
    /// A toolchain with all optimizations off (baseline for ablations).
    pub fn unoptimized() -> Toolchain {
        Toolchain {
            opt: OptConfig::none(),
            backend: BackendOptions { superblocks: false, ..Default::default() },
            profile_guided: false,
        }
    }

    /// Compile TinyC source into an optimized IR module.
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Frontend`] on TinyC errors.
    pub fn frontend(&self, source: &str) -> Result<Module, ToolchainError> {
        let mut module = asip_tinyc::compile(source)?;
        optimize(&mut module, &self.opt);
        Ok(module)
    }

    /// Profile a module by interpretation (block execution counts).
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Profile`] if interpretation fails.
    pub fn profile(
        &self,
        module: &Module,
        inputs: &[(String, Vec<i32>)],
        args: &[i32],
    ) -> Result<Profile, ToolchainError> {
        let mut interp = Interp::new(module, InterpOptions::default());
        for (name, data) in inputs {
            interp.write_global(name, data);
        }
        let r = interp.run("main", args).map_err(ToolchainError::Profile)?;
        Ok(r.profile)
    }

    /// Compile an IR module for a machine (optionally profile-guided).
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Backend`].
    pub fn compile(
        &self,
        module: &Module,
        machine: &MachineDescription,
        profile: Option<&Profile>,
    ) -> Result<CompiledProgram, ToolchainError> {
        Ok(compile_module(module, machine, profile, &self.backend)?)
    }

    /// Full path for one workload on one machine, checking the golden
    /// output.
    ///
    /// # Errors
    ///
    /// Any [`ToolchainError`], including [`ToolchainError::WrongOutput`]
    /// when the simulated stream differs from the golden model.
    pub fn run_workload(
        &self,
        w: &Workload,
        machine: &MachineDescription,
    ) -> Result<WorkloadRun, ToolchainError> {
        let module = self.frontend(&w.source)?;
        let profile = if self.profile_guided {
            Some(self.profile(&module, &w.inputs, &w.args)?)
        } else {
            None
        };
        let compiled = self.compile(&module, machine, profile.as_ref())?;
        self.run_compiled(w, machine, &compiled)
    }

    /// Run an already-compiled workload (used by sweeps that vary only the
    /// simulation conditions).
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Sim`] or [`ToolchainError::WrongOutput`].
    pub fn run_compiled(
        &self,
        w: &Workload,
        machine: &MachineDescription,
        compiled: &CompiledProgram,
    ) -> Result<WorkloadRun, ToolchainError> {
        let mut sim = Simulator::new(machine, &compiled.program, SimOptions::default())?;
        for (name, data) in &w.inputs {
            sim.write_global(name, data);
        }
        let result = sim.run(&w.args)?;
        if result.output != w.expected {
            return Err(ToolchainError::WrongOutput {
                workload: w.name.clone(),
                machine: machine.name.clone(),
                expected: w.expected.clone(),
                actual: result.output,
            });
        }
        let code_bytes =
            asip_isa::encoding::code_bytes(&compiled.program, machine, machine.encoding);
        Ok(WorkloadRun {
            workload: w.name.clone(),
            machine: machine.name.clone(),
            sim: result,
            compile: compiled.stats,
            code_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_runs_and_checks_on_ember4() {
        let tc = Toolchain::default();
        let w = asip_workloads::by_name("fir").unwrap();
        let m = MachineDescription::ember4();
        let run = tc.run_workload(&w, &m).unwrap();
        assert!(run.sim.cycles > 0);
        assert!(run.code_bytes > 0);
        assert_eq!(run.workload, "fir");
    }

    #[test]
    fn unoptimized_toolchain_also_correct_but_slower() {
        let opt = Toolchain::default();
        let unopt = Toolchain::unoptimized();
        let w = asip_workloads::by_name("autocorr").unwrap();
        let m = MachineDescription::ember4();
        let fast = opt.run_workload(&w, &m).unwrap();
        let slow = unopt.run_workload(&w, &m).unwrap();
        assert!(
            fast.sim.cycles < slow.sim.cycles,
            "optimization must help: {} vs {}",
            fast.sim.cycles,
            slow.sim.cycles
        );
    }

    #[test]
    fn wrong_expected_detected() {
        let tc = Toolchain::default();
        let mut w = asip_workloads::by_name("crc32").unwrap();
        w.expected = vec![42]; // sabotage
        let m = MachineDescription::ember1();
        let err = tc.run_workload(&w, &m).unwrap_err();
        assert!(matches!(err, ToolchainError::WrongOutput { .. }));
    }
}
