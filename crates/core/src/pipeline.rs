//! The end-to-end toolchain pipeline: TinyC → IR → optimization → profile →
//! backend → simulation, with golden-model checking.
//!
//! This is the engine under the "single family view" the paper's §3.1
//! promises programmers. Most callers should hold a configured
//! [`Session`](crate::session::Session) (built with
//! [`Session::builder`](crate::session::Session::builder)) and submit
//! [`EvalRequest`](crate::session::EvalRequest) batches; the `Toolchain`
//! here is the per-stage engine those sessions drive.
//!
//! # The stage graph
//!
//! A workload run is an explicit five-stage graph:
//!
//! ```text
//! Parse ──► Optimize ──► Profile ──┐
//!              │                   ▼
//!              └──────────────► Compile[target] ──► Simulate[target]
//! ```
//!
//! The back half dispatches on the machine's [`TargetKind`]: VLIW tables
//! compile to bundled programs and simulate on the bundle-issue model;
//! scalar tables compile to linear [`asip_isa::ScalarProgram`]s and
//! simulate on the in-order pipeline model ([`asip_sim::scalar`]). Both
//! flavors flow through the same stages, caches and error currency.
//!
//! The first four stages are **memoized** in an [`ArtifactCache`] shared by
//! every clone of a [`Toolchain`]: parsing is keyed by source text,
//! optimization by (source, [`OptConfig`]), profiling by (module, inputs,
//! args), and compilation by (target kind, module, machine, backend
//! options, profile) — so the two target flavors can never alias.
//!
//! [`Simulate`](StageKind::Simulate) is memoized too: both cycle-level
//! engines are deterministic functions of (compiled artifact, machine
//! tables, [`SimOptions`], workload inputs and arguments), which is exactly
//! what the target-flavored Simulate key renders — so a repeated identical
//! cell across ISE/DSE sweeps, or a disk-warm rerun of a whole grid, skips
//! simulation entirely and returns a byte-identical `SimResult`. The
//! golden-output check runs on every call (hit or miss), outside the
//! cached computation. The N×M grid ([`crate::nxm`]) and the ISE/DSE
//! search loops ([`crate::ise`], [`crate::dse`]) therefore stop
//! recompiling identical front halves *and* stop re-measuring identical
//! cells: evaluating M machines against one workload parses, optimizes and
//! profiles it once, and re-evaluating any (artifact, machine, inputs)
//! triple costs a cache probe.
//!
//! Cache keys are the full rendered artifact inputs with stored-key
//! verification in every tier, so a hit can never silently collide. The
//! cache is **tiered** (see [`crate::cache`]): an LRU byte-budgeted memory
//! tier, plus an optional persistent disk tier that lets a fresh process
//! warm-start the whole front half. [`Toolchain::cache_stats`] exposes
//! per-stage hit/miss and per-tier counters and [`Toolchain::stage_times`]
//! cumulative per-stage execution time.

pub use crate::cache::{ArtifactCache, CacheConfig, CacheStats, StageKind, StageStats, StageTimes};
use asip_backend::{
    compile_module, compile_module_scalar, BackendOptions, BackendStats, CompiledProgram,
    CompiledScalarProgram,
};
use asip_ir::interp::{Interp, InterpOptions, Profile};
use asip_ir::passes::{optimize, OptConfig};
use asip_ir::Module;
use asip_isa::codec::{Codec, CodecError, Reader, Writer};
use asip_isa::{MachineDescription, TargetKind};
use asip_sim::reference::{run_scalar_reference, run_vliw_reference};
use asip_sim::{
    BlockScalar, BlockVliw, DecodedScalar, DecodedVliw, SimEngine, SimOptions, SimResult,
};
use asip_workloads::Workload;
use std::fmt;
use std::sync::Arc;

/// Toolchain failure at any stage.
///
/// This is the single error currency of the whole driver layer: grid cells,
/// DSE design points and batch evaluations all report through it (not
/// stringly `Result<_, String>` shapes).
#[derive(Debug, Clone, PartialEq)]
pub enum ToolchainError {
    /// Frontend error.
    Frontend(asip_tinyc::CompileError),
    /// Backend error.
    Backend(asip_backend::BackendError),
    /// Simulator error.
    Sim(asip_sim::SimError),
    /// Interpreter error while profiling.
    Profile(asip_ir::InterpError),
    /// The simulated output did not match the workload's golden stream.
    WrongOutput {
        /// Workload name.
        workload: String,
        /// Machine name.
        machine: String,
        /// Expected prefix.
        expected: Vec<i32>,
        /// Actual prefix.
        actual: Vec<i32>,
    },
}

impl fmt::Display for ToolchainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolchainError::Frontend(e) => write!(f, "frontend: {e}"),
            ToolchainError::Backend(e) => write!(f, "backend: {e}"),
            ToolchainError::Sim(e) => write!(f, "simulator: {e}"),
            ToolchainError::Profile(e) => write!(f, "profiling: {e}"),
            ToolchainError::WrongOutput {
                workload,
                machine,
                expected,
                actual,
            } => write!(
                f,
                "{workload} on {machine}: wrong output (expected {:?}…, got {:?}…)",
                &expected[..expected.len().min(4)],
                &actual[..actual.len().min(4)]
            ),
        }
    }
}

impl std::error::Error for ToolchainError {}

impl From<asip_tinyc::CompileError> for ToolchainError {
    fn from(e: asip_tinyc::CompileError) -> Self {
        ToolchainError::Frontend(e)
    }
}

impl From<asip_backend::BackendError> for ToolchainError {
    fn from(e: asip_backend::BackendError) -> Self {
        ToolchainError::Backend(e)
    }
}

impl From<asip_sim::SimError> for ToolchainError {
    fn from(e: asip_sim::SimError) -> Self {
        ToolchainError::Sim(e)
    }
}

/// Append `blob` to `key` as lowercase hex and return the result as a
/// `String` (hex expansion keeps codec-rendered keys valid UTF-8).
fn hex_expand(mut key: Vec<u8>, blob: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let at = key.len();
    key.resize(at + blob.len() * 2, 0);
    for (pair, &b) in key[at..].chunks_exact_mut(2).zip(blob) {
        pair[0] = HEX[(b >> 4) as usize];
        pair[1] = HEX[(b & 15) as usize];
    }
    String::from_utf8(key).expect("hex expansion is ASCII")
}

/// Stable fingerprint of an optional profile: entries sorted by function id
/// (the underlying `HashMap`'s debug order is not deterministic).
fn profile_key(profile: Option<&Profile>) -> String {
    match profile {
        None => "none".to_string(),
        Some(p) => {
            let mut entries: Vec<(&u32, &Vec<u64>)> = p.counts.iter().collect();
            entries.sort_by_key(|(id, _)| **id);
            format!("{entries:?}")
        }
    }
}

/// The configured toolchain engine.
///
/// Cloning is cheap and shares the [`ArtifactCache`]; use
/// [`Toolchain::fresh_cache`] for an isolated one, or
/// [`Toolchain::with_cache`] to attach a specific cache (that is how
/// [`Session`](crate::session::Session) wires a budgeted cache in).
#[derive(Debug, Clone)]
pub struct Toolchain {
    /// Optimization pipeline configuration.
    pub opt: OptConfig,
    /// Backend configuration.
    pub backend: BackendOptions,
    /// Use interpreter profiles to guide superblock formation.
    pub profile_guided: bool,
    /// Simulation limits applied to every [`Toolchain::run_compiled`].
    pub sim: SimOptions,
    cache: Arc<ArtifactCache>,
}

impl Default for Toolchain {
    fn default() -> Self {
        Toolchain {
            opt: OptConfig::default(),
            backend: BackendOptions::default(),
            profile_guided: true,
            sim: SimOptions::default(),
            cache: Arc::new(ArtifactCache::new()),
        }
    }
}

/// A compiled program for either target kind.
///
/// The Compile stage produces (and caches) one of these; which variant
/// depends on the machine's [`TargetKind`]. Cache keys carry the target
/// flavor, so a VLIW and a scalar compile of the same (module, machine
/// table) can never alias.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledArtifact {
    /// An exposed-pipeline VLIW program.
    Vliw(CompiledProgram),
    /// A linear scalar program.
    Scalar(CompiledScalarProgram),
}

/// The versioned binary encoding of a Compile-stage artifact: a target tag
/// byte followed by the target's own program codec. This is what the
/// persistent cache tier stores and verifies for the Compile stage.
impl Codec for CompiledArtifact {
    fn encode(&self, w: &mut Writer) {
        match self {
            CompiledArtifact::Vliw(p) => {
                w.put_u8(0);
                p.encode(w);
            }
            CompiledArtifact::Scalar(p) => {
                w.put_u8(1);
                p.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(CompiledArtifact::Vliw(CompiledProgram::decode(r)?)),
            1 => Ok(CompiledArtifact::Scalar(CompiledScalarProgram::decode(r)?)),
            tag => Err(CodecError::BadTag {
                what: "CompiledArtifact",
                tag: tag.into(),
            }),
        }
    }
}

impl CompiledArtifact {
    /// Compile-time statistics, whichever the target.
    pub fn stats(&self) -> BackendStats {
        match self {
            CompiledArtifact::Vliw(p) => p.stats,
            CompiledArtifact::Scalar(p) => p.stats,
        }
    }

    /// Code size in bytes under the machine's own encoding.
    pub fn code_bytes(&self, machine: &MachineDescription) -> u32 {
        match self {
            CompiledArtifact::Vliw(p) => {
                asip_isa::encoding::code_bytes(&p.program, machine, machine.encoding)
            }
            CompiledArtifact::Scalar(p) => p.program.code_bytes(machine.encoding),
        }
    }

    /// The VLIW program, if this is one.
    pub fn vliw(&self) -> Option<&CompiledProgram> {
        match self {
            CompiledArtifact::Vliw(p) => Some(p),
            CompiledArtifact::Scalar(_) => None,
        }
    }

    /// The scalar program, if this is one.
    pub fn scalar(&self) -> Option<&CompiledScalarProgram> {
        match self {
            CompiledArtifact::Vliw(_) => None,
            CompiledArtifact::Scalar(p) => Some(p),
        }
    }
}

/// Result of running one workload on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadRun {
    /// Workload name.
    pub workload: String,
    /// Machine name.
    pub machine: String,
    /// Simulation result.
    pub sim: SimResult,
    /// Compile-time statistics.
    pub compile: BackendStats,
    /// Code size in bytes under the machine's encoding.
    pub code_bytes: u32,
}

impl Toolchain {
    /// A toolchain with all optimizations off (baseline for ablations).
    pub fn unoptimized() -> Toolchain {
        Toolchain {
            opt: OptConfig::none(),
            backend: BackendOptions {
                superblocks: false,
                ..Default::default()
            },
            profile_guided: false,
            sim: SimOptions::default(),
            cache: Arc::new(ArtifactCache::new()),
        }
    }

    /// This configuration with a new, empty, unshared artifact cache (same
    /// byte budget and hashing configuration).
    pub fn fresh_cache(&self) -> Toolchain {
        self.with_cache(Arc::new(ArtifactCache::with_config(self.cache.config())))
    }

    /// This configuration backed by `cache` instead of its current one.
    pub fn with_cache(&self, cache: Arc<ArtifactCache>) -> Toolchain {
        Toolchain {
            opt: self.opt.clone(),
            backend: self.backend.clone(),
            profile_guided: self.profile_guided,
            sim: self.sim,
            cache,
        }
    }

    /// The shared artifact cache (stats, clearing, introspection).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Per-stage cache hit/miss counters plus eviction/residency totals.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cumulative per-stage execution times (cache hits cost nothing).
    pub fn stage_times(&self) -> StageTimes {
        self.cache.stage_times()
    }

    /// **Parse stage**: TinyC source → unoptimized IR module. Cached by
    /// source text.
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Frontend`] on TinyC errors.
    pub fn parse(&self, source: &str) -> Result<Module, ToolchainError> {
        self.cache
            .get_or_compute(StageKind::Parse, source.to_string(), |t| {
                Ok(t.time(|| asip_tinyc::compile(source))?)
            })
    }

    /// **Parse + Optimize stages**: TinyC source → optimized IR module.
    /// The optimize stage is cached by (source, [`OptConfig`]).
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Frontend`] on TinyC errors.
    pub fn frontend(&self, source: &str) -> Result<Module, ToolchainError> {
        let key = format!("{:?}\u{1f}{source}", self.opt);
        self.cache.get_or_compute(StageKind::Optimize, key, |t| {
            // Parse times itself under its own stage.
            let mut module = self.parse(source)?;
            t.time(|| optimize(&mut module, &self.opt));
            Ok(module)
        })
    }

    /// **Profile stage**: interpret the module to collect block execution
    /// counts. Cached by (module, inputs, args).
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Profile`] if interpretation fails.
    pub fn profile(
        &self,
        module: &Module,
        inputs: &[(String, Vec<i32>)],
        args: &[i32],
    ) -> Result<Profile, ToolchainError> {
        let key = format!("{module:?}\u{1f}{inputs:?}\u{1f}{args:?}");
        self.cache.get_or_compute(StageKind::Profile, key, |t| {
            t.time(|| {
                let mut interp = Interp::new(module, InterpOptions::default());
                for (name, data) in inputs {
                    interp.write_global(name, data);
                }
                let r = interp.run("main", args).map_err(ToolchainError::Profile)?;
                Ok(r.profile)
            })
        })
    }

    /// Cached compile of one target flavor. The key leads with the flavor
    /// name, so a VLIW and a scalar artifact of the same (module, machine,
    /// options, profile) can never collide in the cache.
    fn compile_flavor(
        &self,
        flavor: TargetKind,
        module: &Module,
        machine: &MachineDescription,
        profile: Option<&Profile>,
    ) -> Result<CompiledArtifact, ToolchainError> {
        let key = format!(
            "{flavor}\u{1f}{module:?}\u{1f}{machine:?}\u{1f}{:?}\u{1f}{}",
            self.backend,
            profile_key(profile)
        );
        self.cache.get_or_compute(StageKind::Compile, key, |t| {
            t.time(|| match flavor {
                TargetKind::Vliw => Ok(CompiledArtifact::Vliw(compile_module(
                    module,
                    machine,
                    profile,
                    &self.backend,
                )?)),
                TargetKind::Scalar => Ok(CompiledArtifact::Scalar(compile_module_scalar(
                    module,
                    machine,
                    profile,
                    &self.backend,
                )?)),
            })
        })
    }

    /// **Compile stage**, dispatched on the machine's [`TargetKind`]: IR
    /// module → VLIW or scalar program (optionally profile-guided). Cached
    /// by (target, module, machine, backend options, profile).
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Backend`].
    pub fn compile_for(
        &self,
        module: &Module,
        machine: &MachineDescription,
        profile: Option<&Profile>,
    ) -> Result<CompiledArtifact, ToolchainError> {
        self.compile_flavor(machine.target, module, machine, profile)
    }

    /// **Compile stage**, VLIW flavor: IR module → VLIW machine program
    /// regardless of the machine's declared target (the binary-translation
    /// flows compile arbitrary family tables this way). Cached like
    /// [`Toolchain::compile_for`].
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Backend`].
    pub fn compile(
        &self,
        module: &Module,
        machine: &MachineDescription,
        profile: Option<&Profile>,
    ) -> Result<CompiledProgram, ToolchainError> {
        let art = self.compile_flavor(TargetKind::Vliw, module, machine, profile)?;
        Ok(art
            .vliw()
            .expect("vliw-flavored keys hold vliw artifacts")
            .clone())
    }

    /// **Compile stage**, scalar flavor: IR module → linear scalar program.
    /// Cached like [`Toolchain::compile_for`].
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Backend`].
    pub fn compile_scalar(
        &self,
        module: &Module,
        machine: &MachineDescription,
        profile: Option<&Profile>,
    ) -> Result<CompiledScalarProgram, ToolchainError> {
        let art = self.compile_flavor(TargetKind::Scalar, module, machine, profile)?;
        Ok(art
            .scalar()
            .expect("scalar-flavored keys hold scalar artifacts")
            .clone())
    }

    /// Full stage graph for one workload on one machine, checking the
    /// golden output. Every stage but the final simulation is served from
    /// the artifact cache when possible.
    ///
    /// # Errors
    ///
    /// Any [`ToolchainError`], including [`ToolchainError::WrongOutput`]
    /// when the simulated stream differs from the golden model.
    pub fn run_workload(
        &self,
        w: &Workload,
        machine: &MachineDescription,
    ) -> Result<WorkloadRun, ToolchainError> {
        let module = self.frontend(&w.source)?;
        let profile = if self.profile_guided {
            Some(self.profile(&module, &w.inputs, &w.args)?)
        } else {
            None
        };
        let compiled = self.compile_for(&module, machine, profile.as_ref())?;
        self.run_artifact(w, machine, &compiled)
    }

    /// The Simulate-stage cache key. Flavor-tagged like Compile keys, and
    /// covering everything that can change the deterministic measurement:
    /// the compiled program, the machine tables, the [`SimOptions`]
    /// *limits*, and the workload's inputs and arguments. The program and
    /// the input data are rendered through their lossless binary codec
    /// (hex-expanded) rather than `Debug` formatting — the key is built on
    /// the hot path of every cell, and the codec writer is an order of
    /// magnitude cheaper than `fmt` while remaining a complete, injective
    /// rendering. Two things are deliberately *not* part of the key:
    ///
    /// * the [`SimEngine`] choice — every engine produces bit-identical
    ///   `SimResult`s (pinned by the differential suites and the
    ///   `session_env` engine-invariance test), so a cell measured under
    ///   one engine is a valid hit for any other, on either tier;
    /// * the golden `expected` stream — the output check runs on every
    ///   call, hit or miss, so a sabotaged expectation still reports
    ///   [`ToolchainError::WrongOutput`] against the cached measurement.
    fn simulate_key<P: Codec>(
        &self,
        flavor: TargetKind,
        machine: &MachineDescription,
        program: &P,
        w: &Workload,
    ) -> String {
        let mut blob = Writer::new();
        program.encode(&mut blob);
        blob.put_u32(w.inputs.len() as u32);
        for (name, data) in &w.inputs {
            blob.put_str(name);
            data.encode(&mut blob);
        }
        w.args.encode(&mut blob);
        let key = format!(
            "{flavor}\u{1f}{machine:?}\u{1f}max_cycles={}\u{1f}",
            self.sim.max_cycles
        );
        hex_expand(key.into_bytes(), &blob.into_bytes())
    }

    /// The prepared-simulation key (see [`ArtifactCache::get_or_prepare`]):
    /// everything a preparation reads — engine, target flavor, machine
    /// tables, program — with the program codec-rendered like
    /// [`Toolchain::simulate_key`]. Unlike Simulate keys this one *does*
    /// carry the engine: a decoded and a block-compiled preparation of the
    /// same program are different objects.
    fn prepare_key<P: Codec>(
        &self,
        flavor: TargetKind,
        machine: &MachineDescription,
        program: &P,
    ) -> String {
        let mut blob = Writer::new();
        program.encode(&mut blob);
        let key = format!(
            "{}\u{1f}{flavor}\u{1f}{machine:?}\u{1f}",
            self.sim.engine.name()
        );
        hex_expand(key.into_bytes(), &blob.into_bytes())
    }

    /// One VLIW measurement on the configured [`SimEngine`]. The decoded
    /// and block engines run from a prepared form served by the cache's
    /// process-local preparation map ([`CacheStats::decode`]), so repeated
    /// runs of the same artifact skip validation + decode; the reference
    /// interpreter prepares nothing by design.
    fn simulate_vliw(
        &self,
        w: &Workload,
        machine: &MachineDescription,
        compiled: &CompiledProgram,
    ) -> Result<SimResult, ToolchainError> {
        let program = &compiled.program;
        match self.sim.engine {
            SimEngine::Reference => Ok(run_vliw_reference(
                machine, program, &w.inputs, &w.args, self.sim,
            )?),
            SimEngine::Decoded => {
                let key = self.prepare_key(TargetKind::Vliw, machine, program);
                let d = self
                    .cache
                    .get_or_prepare(key, || Ok(DecodedVliw::new(machine, program)?))?;
                Ok(d.run_with_inputs(&w.inputs, &w.args, self.sim)?)
            }
            SimEngine::Block => {
                let key = self.prepare_key(TargetKind::Vliw, machine, program);
                let b = self
                    .cache
                    .get_or_prepare(key, || Ok(BlockVliw::new(machine, program)?))?;
                Ok(b.run_with_inputs(&w.inputs, &w.args, self.sim)?)
            }
            SimEngine::Superblock => {
                let key = self.prepare_key(TargetKind::Vliw, machine, program);
                let b = self
                    .cache
                    .get_or_prepare(key, || Ok(BlockVliw::with_traces(machine, program)?))?;
                Ok(b.run_with_inputs(&w.inputs, &w.args, self.sim)?)
            }
        }
    }

    /// One scalar measurement on the configured [`SimEngine`]; prepared
    /// forms are shared exactly like [`Toolchain::simulate_vliw`].
    fn simulate_scalar(
        &self,
        w: &Workload,
        machine: &MachineDescription,
        compiled: &CompiledScalarProgram,
    ) -> Result<SimResult, ToolchainError> {
        let program = &compiled.program;
        match self.sim.engine {
            SimEngine::Reference => Ok(run_scalar_reference(
                machine, program, &w.inputs, &w.args, self.sim,
            )?),
            SimEngine::Decoded => {
                let key = self.prepare_key(TargetKind::Scalar, machine, program);
                let d = self
                    .cache
                    .get_or_prepare(key, || Ok(DecodedScalar::new(machine, program)?))?;
                Ok(d.run_with_inputs(&w.inputs, &w.args, self.sim)?)
            }
            SimEngine::Block => {
                let key = self.prepare_key(TargetKind::Scalar, machine, program);
                let b = self
                    .cache
                    .get_or_prepare(key, || Ok(BlockScalar::new(machine, program)?))?;
                Ok(b.run_with_inputs(&w.inputs, &w.args, self.sim)?)
            }
            SimEngine::Superblock => {
                let key = self.prepare_key(TargetKind::Scalar, machine, program);
                let b = self
                    .cache
                    .get_or_prepare(key, || Ok(BlockScalar::with_traces(machine, program)?))?;
                Ok(b.run_with_inputs(&w.inputs, &w.args, self.sim)?)
            }
        }
    }

    /// Golden-model output check shared by both Simulate flavors.
    fn check_output(
        result: &SimResult,
        w: &Workload,
        machine: &MachineDescription,
    ) -> Result<(), ToolchainError> {
        if result.output != w.expected {
            return Err(ToolchainError::WrongOutput {
                workload: w.name.clone(),
                machine: machine.name.clone(),
                expected: w.expected.clone(),
                actual: result.output.clone(),
            });
        }
        Ok(())
    }

    /// **Simulate stage**: run an already-compiled workload (used by sweeps
    /// that vary only the simulation conditions). **Memoized** like every
    /// other stage: the engines are deterministic functions of the key's
    /// rendered inputs, so a repeated identical cell across ISE/DSE sweeps
    /// — or a disk-warm rerun — skips the cycle loop entirely and returns
    /// a byte-identical [`SimResult`]. Errors are never cached.
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Sim`] or [`ToolchainError::WrongOutput`].
    pub fn run_compiled(
        &self,
        w: &Workload,
        machine: &MachineDescription,
        compiled: &CompiledProgram,
    ) -> Result<WorkloadRun, ToolchainError> {
        let key = self.simulate_key(TargetKind::Vliw, machine, &compiled.program, w);
        let result = self.cache.get_or_compute(StageKind::Simulate, key, |t| {
            let result = t.time(|| self.simulate_vliw(w, machine, compiled))?;
            self.cache.record_sim_cycles(result.cycles);
            Ok(result)
        })?;
        Self::check_output(&result, w, machine)?;
        let code_bytes =
            asip_isa::encoding::code_bytes(&compiled.program, machine, machine.encoding);
        Ok(WorkloadRun {
            workload: w.name.clone(),
            machine: machine.name.clone(),
            sim: result,
            compile: compiled.stats,
            code_bytes,
        })
    }

    /// **Simulate stage**, scalar flavor: run an already-compiled scalar
    /// workload on the in-order pipeline model. Memoized like
    /// [`Toolchain::run_compiled`], with a scalar-flavored key.
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Sim`] or [`ToolchainError::WrongOutput`].
    pub fn run_compiled_scalar(
        &self,
        w: &Workload,
        machine: &MachineDescription,
        compiled: &CompiledScalarProgram,
    ) -> Result<WorkloadRun, ToolchainError> {
        let key = self.simulate_key(TargetKind::Scalar, machine, &compiled.program, w);
        let result = self.cache.get_or_compute(StageKind::Simulate, key, |t| {
            let result = t.time(|| self.simulate_scalar(w, machine, compiled))?;
            self.cache.record_sim_cycles(result.cycles);
            Ok(result)
        })?;
        Self::check_output(&result, w, machine)?;
        let code_bytes = compiled.program.code_bytes(machine.encoding);
        Ok(WorkloadRun {
            workload: w.name.clone(),
            machine: machine.name.clone(),
            sim: result,
            compile: compiled.stats,
            code_bytes,
        })
    }

    /// **Simulate stage** for either artifact kind: dispatches to the VLIW
    /// or the scalar pipeline model. Never cached — this is the
    /// measurement.
    ///
    /// # Errors
    ///
    /// [`ToolchainError::Sim`] or [`ToolchainError::WrongOutput`].
    pub fn run_artifact(
        &self,
        w: &Workload,
        machine: &MachineDescription,
        compiled: &CompiledArtifact,
    ) -> Result<WorkloadRun, ToolchainError> {
        match compiled {
            CompiledArtifact::Vliw(p) => self.run_compiled(w, machine, p),
            CompiledArtifact::Scalar(p) => self.run_compiled_scalar(w, machine, p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_runs_and_checks_on_ember4() {
        let tc = Toolchain::default();
        let w = asip_workloads::by_name("fir").unwrap();
        let m = MachineDescription::ember4();
        let run = tc.run_workload(&w, &m).unwrap();
        assert!(run.sim.cycles > 0);
        assert!(run.code_bytes > 0);
        assert_eq!(run.workload, "fir");
    }

    #[test]
    fn unoptimized_toolchain_also_correct_but_slower() {
        let opt = Toolchain::default();
        let unopt = Toolchain::unoptimized();
        let w = asip_workloads::by_name("autocorr").unwrap();
        let m = MachineDescription::ember4();
        let fast = opt.run_workload(&w, &m).unwrap();
        let slow = unopt.run_workload(&w, &m).unwrap();
        assert!(
            fast.sim.cycles < slow.sim.cycles,
            "optimization must help: {} vs {}",
            fast.sim.cycles,
            slow.sim.cycles
        );
    }

    #[test]
    fn wrong_expected_detected() {
        let tc = Toolchain::default();
        let mut w = asip_workloads::by_name("crc32").unwrap();
        w.expected = vec![42]; // sabotage
        let m = MachineDescription::ember1();
        let err = tc.run_workload(&w, &m).unwrap_err();
        assert!(matches!(err, ToolchainError::WrongOutput { .. }));
    }

    #[test]
    fn repeated_run_hits_every_cacheable_stage() {
        let tc = Toolchain::default();
        let w = asip_workloads::by_name("fir").unwrap();
        let m = MachineDescription::ember4();

        let first = tc.run_workload(&w, &m).unwrap();
        let cold = tc.cache_stats();
        assert_eq!(cold.hits(), 0, "first run must be all misses: {cold}");
        assert_eq!(cold.parse.misses, 1);
        assert_eq!(cold.optimize.misses, 1);
        assert_eq!(cold.profile.misses, 1);
        assert_eq!(cold.compile.misses, 1);
        assert_eq!(cold.simulate.misses, 1);

        let second = tc.run_workload(&w, &m).unwrap();
        let warm = tc.cache_stats();
        assert_eq!(warm.optimize.hits, 1, "{warm}");
        assert_eq!(warm.profile.hits, 1, "{warm}");
        assert_eq!(warm.compile.hits, 1, "{warm}");
        assert_eq!(warm.simulate.hits, 1, "{warm}");
        // No stage recomputed.
        assert_eq!(warm.misses(), cold.misses(), "{warm}");

        // Cached and uncached runs are bit-identical measurements — the
        // memoized Simulate hit returns the whole SimResult unchanged.
        assert_eq!(first.sim, second.sim);
        assert_eq!(first.code_bytes, second.code_bytes);
    }

    #[test]
    fn new_machine_reuses_front_half() {
        let tc = Toolchain::default();
        let w = asip_workloads::by_name("sobel").unwrap();
        tc.run_workload(&w, &MachineDescription::ember1()).unwrap();
        let before = tc.cache_stats();
        tc.run_workload(&w, &MachineDescription::ember8()).unwrap();
        let after = tc.cache_stats();
        // Second machine: frontend + profile served from cache…
        assert_eq!(after.optimize.hits, before.optimize.hits + 1);
        assert_eq!(after.profile.hits, before.profile.hits + 1);
        // …but its compile is a genuine miss (different machine key).
        assert_eq!(after.compile.misses, before.compile.misses + 1);
        assert_eq!(after.compile.hits, before.compile.hits);
    }

    #[test]
    fn cached_result_equals_fresh_toolchain_result() {
        let shared = Toolchain::default();
        let w = asip_workloads::by_name("viterbi").unwrap();
        let m = MachineDescription::ember4();
        shared.run_workload(&w, &m).unwrap();
        let warm = shared.run_workload(&w, &m).unwrap();
        let cold = shared.fresh_cache().run_workload(&w, &m).unwrap();
        assert_eq!(warm.sim.cycles, cold.sim.cycles);
        assert_eq!(warm.sim.output, cold.sim.output);
        assert_eq!(warm.code_bytes, cold.code_bytes);
        assert!(shared.cache_stats().hits() > 0);
        assert_eq!(shared.fresh_cache().cache_stats().hits(), 0);
    }

    #[test]
    fn clones_share_the_cache() {
        let tc = Toolchain::default();
        let clone = tc.clone();
        let w = asip_workloads::by_name("rle").unwrap();
        let m = MachineDescription::ember2();
        tc.run_workload(&w, &m).unwrap();
        clone.run_workload(&w, &m).unwrap();
        assert!(clone.cache_stats().hits() >= 3, "{}", clone.cache_stats());
        assert_eq!(tc.cache_stats(), clone.cache_stats());
    }

    #[test]
    fn clear_cache_resets_everything() {
        let tc = Toolchain::default();
        let w = asip_workloads::by_name("fir").unwrap();
        tc.run_workload(&w, &MachineDescription::ember1()).unwrap();
        assert!(!tc.cache().is_empty());
        tc.cache().clear();
        assert!(tc.cache().is_empty());
        assert_eq!(tc.cache_stats(), CacheStats::default());
    }

    #[test]
    fn different_opt_configs_do_not_alias() {
        let opt = Toolchain::default();
        // Same cache, different OptConfig → distinct optimize/compile keys.
        let mut unopt = opt.clone();
        unopt.opt = OptConfig::none();
        unopt.backend = BackendOptions {
            superblocks: false,
            ..Default::default()
        };
        unopt.profile_guided = false;
        let w = asip_workloads::by_name("autocorr").unwrap();
        let m = MachineDescription::ember4();
        let fast = opt.run_workload(&w, &m).unwrap();
        let slow = unopt.run_workload(&w, &m).unwrap();
        assert!(fast.sim.cycles < slow.sim.cycles);
        let stats = opt.cache_stats();
        // Two distinct optimized modules and compiles, one shared parse.
        assert_eq!(stats.optimize.misses, 2);
        assert_eq!(stats.compile.misses, 2);
        assert_eq!(stats.parse.misses, 1);
        assert_eq!(stats.parse.hits, 1);
    }

    #[test]
    fn stage_times_accumulate_only_on_execution() {
        let tc = Toolchain::default();
        let w = asip_workloads::by_name("fir").unwrap();
        let m = MachineDescription::ember4();
        tc.run_workload(&w, &m).unwrap();
        let t1 = tc.stage_times();
        for s in StageKind::ALL {
            assert!(t1.get(s) > 0, "stage {s} should have recorded time");
        }
        tc.run_workload(&w, &m).unwrap();
        let t2 = tc.stage_times();
        // Cached stages record no new time — Simulate included, now that
        // the measurement itself is memoized.
        assert_eq!(t2.get(StageKind::Compile), t1.get(StageKind::Compile));
        assert_eq!(t2.get(StageKind::Optimize), t1.get(StageKind::Optimize));
        assert_eq!(t2.get(StageKind::Simulate), t1.get(StageKind::Simulate));
    }

    #[test]
    fn simulate_memoization_survives_sabotaged_expectations() {
        // The golden check runs outside the cached computation: a cached
        // Simulate hit must still be checked against the (possibly
        // different) expected stream of *this* call.
        let tc = Toolchain::default();
        let w = asip_workloads::by_name("rle").unwrap();
        let m = MachineDescription::ember2();
        tc.run_workload(&w, &m).unwrap();
        let mut sabotaged = w.clone();
        sabotaged.expected = vec![-123];
        let err = tc.run_workload(&sabotaged, &m).unwrap_err();
        assert!(matches!(err, ToolchainError::WrongOutput { .. }));
        let stats = tc.cache_stats();
        assert_eq!(
            stats.simulate.hits, 1,
            "sabotaged rerun hits the cached measurement: {stats}"
        );
        // And the honest workload still passes afterwards.
        tc.run_workload(&w, &m).unwrap();
    }

    #[test]
    fn sim_cycles_accumulate_only_on_execution() {
        let tc = Toolchain::default();
        let w = asip_workloads::by_name("fir").unwrap();
        let m = MachineDescription::ember4();
        let run = tc.run_workload(&w, &m).unwrap();
        assert_eq!(tc.cache().sim_cycles(), run.sim.cycles);
        tc.run_workload(&w, &m).unwrap();
        assert_eq!(
            tc.cache().sim_cycles(),
            run.sim.cycles,
            "a Simulate cache hit must not recount cycles"
        );
    }
}
