//! The memoized artifact store behind every
//! [`Toolchain`](crate::pipeline::Toolchain) and
//! [`Session`](crate::session::Session).
//!
//! # Hashed keys, exact hits
//!
//! Stage artifacts are keyed by the *complete rendered inputs* of the stage
//! (source text, machine description, profile fingerprint, …). Rather than
//! holding those multi-kilobyte strings as `HashMap` keys, the cache indexes
//! entries by a 64-bit FNV-1a hash and keeps the full key alongside each
//! entry: a lookup first matches the hash, then verifies the stored key
//! byte-for-byte, so a hash collision degrades to a bucket scan — never to a
//! wrong artifact. (Tests can force the degenerate all-collide case through
//! [`CacheConfig::hash_mask`].)
//!
//! # LRU byte budget
//!
//! Every entry carries an estimated resident size; the cache holds a global
//! least-recently-used queue across all four stages and evicts the coldest
//! artifacts whenever the total exceeds the configured byte budget
//! ([`CacheConfig::byte_budget`], default [`DEFAULT_CACHE_BYTES`], overridable
//! with the `ASIP_CACHE_BYTES` environment variable). An evicted artifact is
//! simply recomputed on the next request — results are unchanged, only the
//! hit/miss/eviction counters in [`CacheStats`] move. A budget of `0`
//! disables retention entirely (every insert is immediately evicted).

use crate::pipeline::{CompiledArtifact, ToolchainError};
use asip_backend::{CompiledProgram, CompiledScalarProgram};
use asip_ir::interp::Profile;
use asip_ir::Module;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default cache byte budget (256 MiB) when neither
/// [`CacheConfig::byte_budget`] nor `ASIP_CACHE_BYTES` says otherwise.
pub const DEFAULT_CACHE_BYTES: u64 = 256 * 1024 * 1024;

/// Environment variable overriding the default cache byte budget.
pub const CACHE_BYTES_ENV: &str = "ASIP_CACHE_BYTES";

/// The byte budget a fresh cache uses: `ASIP_CACHE_BYTES` if set to a
/// parseable `u64`, else [`DEFAULT_CACHE_BYTES`].
pub fn default_cache_bytes() -> u64 {
    std::env::var(CACHE_BYTES_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_CACHE_BYTES)
}

/// Cache construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident artifact bytes before LRU eviction kicks in.
    pub byte_budget: u64,
    /// Mask applied to the 64-bit key hash. `!0` (the default) keeps the
    /// full hash; tests set narrower masks (down to `0`) to force bucket
    /// collisions and exercise the stored-key fallback path.
    pub hash_mask: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            byte_budget: default_cache_bytes(),
            hash_mask: !0,
        }
    }
}

/// The stages of the pipeline graph, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// TinyC source → unoptimized IR module.
    Parse = 0,
    /// IR module → optimized IR module.
    Optimize = 1,
    /// Optimized module + inputs → block-frequency profile.
    Profile = 2,
    /// Module + machine (+ profile) → compiled program.
    Compile = 3,
    /// Compiled program + machine → simulation result, golden-checked.
    Simulate = 4,
}

impl StageKind {
    /// Every stage, in pipeline order.
    pub const ALL: [StageKind; 5] = [
        StageKind::Parse,
        StageKind::Optimize,
        StageKind::Profile,
        StageKind::Compile,
        StageKind::Simulate,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Parse => "parse",
            StageKind::Optimize => "optimize",
            StageKind::Profile => "profile",
            StageKind::Compile => "compile",
            StageKind::Simulate => "simulate",
        }
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Hit/miss counters for one cacheable stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Artifact served from the cache.
    pub hits: u64,
    /// Artifact computed (and inserted).
    pub misses: u64,
}

/// Snapshot of cache behavior (see [`crate::pipeline::Toolchain::cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Source → unoptimized module.
    pub parse: StageStats,
    /// (source, opt config) → optimized module.
    pub optimize: StageStats,
    /// (module, inputs, args) → profile.
    pub profile: StageStats,
    /// (module, machine, backend, profile) → compiled program.
    pub compile: StageStats,
    /// Artifacts evicted to stay under the byte budget.
    pub evictions: u64,
    /// Estimated bytes currently held by resident artifacts.
    pub resident_bytes: u64,
}

impl CacheStats {
    /// Total hits across all stages.
    pub fn hits(&self) -> u64 {
        self.parse.hits + self.optimize.hits + self.profile.hits + self.compile.hits
    }

    /// Total misses across all stages.
    pub fn misses(&self) -> u64 {
        self.parse.misses + self.optimize.misses + self.profile.misses + self.compile.misses
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse {}/{} optimize {}/{} profile {}/{} compile {}/{} (hits/misses), \
             {} evictions, {} KiB resident",
            self.parse.hits,
            self.parse.misses,
            self.optimize.hits,
            self.optimize.misses,
            self.profile.hits,
            self.profile.misses,
            self.compile.hits,
            self.compile.misses,
            self.evictions,
            self.resident_bytes / 1024,
        )
    }
}

/// Cumulative wall-clock nanoseconds spent *executing* each stage (cache
/// hits cost nothing here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Per stage, indexed by `StageKind as usize`.
    pub ns: [u64; 5],
}

impl StageTimes {
    /// Nanoseconds spent in `stage`.
    pub fn get(&self, stage: StageKind) -> u64 {
        self.ns[stage as usize]
    }
}

/// 64-bit FNV-1a over the rendered key.
fn fnv1a64(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Estimated resident size of a cached artifact, used for the byte budget.
/// These are deliberately cheap structural estimates, not exact heap sizes.
pub(crate) trait ArtifactBytes {
    /// Approximate heap bytes held by the artifact.
    fn artifact_bytes(&self) -> u64;
}

impl ArtifactBytes for Module {
    fn artifact_bytes(&self) -> u64 {
        let mut b = 64u64;
        for f in &self.funcs {
            b += 128;
            for blk in &f.blocks {
                b += 48 + 56 * blk.insts.len() as u64;
            }
        }
        for g in &self.globals {
            b += 64 + 4 * u64::from(g.words);
        }
        b + 256 * self.custom_ops.len() as u64
    }
}

impl ArtifactBytes for Profile {
    fn artifact_bytes(&self) -> u64 {
        let per: u64 = self.counts.values().map(|v| 8 * v.len() as u64).sum();
        48 * self.counts.len() as u64 + per + 64
    }
}

impl ArtifactBytes for CompiledProgram {
    fn artifact_bytes(&self) -> u64 {
        let p = &self.program;
        let slots: u64 = p.bundles.iter().map(|b| b.slots.len() as u64).sum();
        let globals: u64 = p.globals.iter().map(|g| 64 + 4 * g.init.len() as u64).sum();
        64 * slots + 64 * p.functions.len() as u64 + globals + 256 * p.custom_ops.len() as u64 + 128
    }
}

impl ArtifactBytes for CompiledScalarProgram {
    fn artifact_bytes(&self) -> u64 {
        let p = &self.program;
        let globals: u64 = p.globals.iter().map(|g| 64 + 4 * g.init.len() as u64).sum();
        64 * p.insts.len() as u64
            + 64 * p.functions.len() as u64
            + globals
            + 256 * p.custom_ops.len() as u64
            + 128
    }
}

impl ArtifactBytes for CompiledArtifact {
    fn artifact_bytes(&self) -> u64 {
        match self {
            CompiledArtifact::Vliw(p) => p.artifact_bytes(),
            CompiledArtifact::Scalar(p) => p.artifact_bytes(),
        }
    }
}

/// Fixed per-entry bookkeeping overhead added to every size estimate.
const ENTRY_OVERHEAD: u64 = 96;

struct Entry<V> {
    /// Full rendered key, compared byte-for-byte on every bucket probe.
    key: Box<str>,
    value: V,
    id: u64,
}

/// One stage's hash-indexed store. Buckets hold every entry whose masked
/// hash collides; correctness never depends on hash uniqueness.
pub(crate) struct StageMap<V> {
    buckets: HashMap<u64, Vec<Entry<V>>>,
}

impl<V> Default for StageMap<V> {
    fn default() -> Self {
        StageMap {
            buckets: HashMap::new(),
        }
    }
}

impl<V> StageMap<V> {
    fn find(&self, hash: u64, key: &str) -> Option<&Entry<V>> {
        self.buckets
            .get(&hash)?
            .iter()
            .find(|e| e.key.as_ref() == key)
    }

    fn insert(&mut self, hash: u64, entry: Entry<V>) {
        self.buckets.entry(hash).or_default().push(entry);
    }

    fn remove_id(&mut self, hash: u64, id: u64) -> Option<Entry<V>> {
        let bucket = self.buckets.get_mut(&hash)?;
        let i = bucket.iter().position(|e| e.id == id)?;
        let e = bucket.swap_remove(i);
        if bucket.is_empty() {
            self.buckets.remove(&hash);
        }
        Some(e)
    }

    fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

#[derive(Default)]
pub(crate) struct Maps {
    parsed: StageMap<Module>,
    optimized: StageMap<Module>,
    profiles: StageMap<Profile>,
    compiled: StageMap<CompiledArtifact>,
}

/// Where an LRU queue entry lives, for typed removal on eviction.
#[derive(Clone, Copy)]
struct Loc {
    stage: usize,
    hash: u64,
    id: u64,
    bytes: u64,
}

#[derive(Default)]
struct Inner {
    maps: Maps,
    /// Recency queue: tick → entry location; the first entry is coldest.
    lru: BTreeMap<u64, Loc>,
    /// Entry id → its current tick in `lru` (moved on every touch).
    tick_of: HashMap<u64, u64>,
    next_tick: u64,
    next_id: u64,
    resident_bytes: u64,
}

impl Inner {
    fn touch(&mut self, id: u64) {
        if let Some(old) = self.tick_of.get(&id).copied() {
            if let Some(loc) = self.lru.remove(&old) {
                let tick = self.next_tick;
                self.next_tick += 1;
                self.lru.insert(tick, loc);
                self.tick_of.insert(id, tick);
            }
        }
    }

    fn remember(&mut self, loc: Loc) {
        let tick = self.next_tick;
        self.next_tick += 1;
        self.lru.insert(tick, loc);
        self.tick_of.insert(loc.id, tick);
        self.resident_bytes += loc.bytes;
    }

    /// Evict the coldest entry; returns false when the cache is empty.
    fn evict_one(&mut self) -> bool {
        let Some((tick, loc)) = self.lru.pop_first() else {
            return false;
        };
        debug_assert_eq!(self.tick_of.get(&loc.id), Some(&tick));
        self.tick_of.remove(&loc.id);
        let removed = match loc.stage {
            0 => self.maps.parsed.remove_id(loc.hash, loc.id).is_some(),
            1 => self.maps.optimized.remove_id(loc.hash, loc.id).is_some(),
            2 => self.maps.profiles.remove_id(loc.hash, loc.id).is_some(),
            _ => self.maps.compiled.remove_id(loc.hash, loc.id).is_some(),
        };
        debug_assert!(removed, "LRU queue and stage maps must stay in sync");
        self.resident_bytes = self.resident_bytes.saturating_sub(loc.bytes);
        true
    }
}

/// Memoized intermediate artifacts, shared by every clone of a
/// [`Toolchain`] (clones share one cache via `Arc`).
///
/// Entries are indexed by hashed key with a stored-key collision check (see
/// the [module docs](self)), and bounded by an LRU byte budget. Computation
/// happens outside the lock: concurrent grid cells never serialize on each
/// other's compiles (at worst a race computes the same artifact twice and
/// one copy wins).
///
/// [`Toolchain`]: crate::pipeline::Toolchain
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    config: CacheConfig,
    hits: [AtomicU64; 4],
    misses: [AtomicU64; 4],
    evictions: AtomicU64,
    stage_ns: [AtomicU64; 5],
}

impl ArtifactCache {
    /// A new, empty cache with the default configuration (byte budget from
    /// `ASIP_CACHE_BYTES` or [`DEFAULT_CACHE_BYTES`]).
    pub fn new() -> ArtifactCache {
        ArtifactCache::with_config(CacheConfig::default())
    }

    /// A new, empty cache bounded to `byte_budget` resident bytes.
    pub fn with_budget(byte_budget: u64) -> ArtifactCache {
        ArtifactCache::with_config(CacheConfig {
            byte_budget,
            ..CacheConfig::default()
        })
    }

    /// A new, empty cache with explicit configuration.
    pub fn with_config(config: CacheConfig) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(Inner::default()),
            config,
            hits: Default::default(),
            misses: Default::default(),
            evictions: AtomicU64::new(0),
            stage_ns: Default::default(),
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> u64 {
        self.config.byte_budget
    }

    /// Per-stage hit/miss snapshot plus eviction and residency counters.
    pub fn stats(&self) -> CacheStats {
        let s = |i: usize| StageStats {
            hits: self.hits[i].load(Ordering::Relaxed),
            misses: self.misses[i].load(Ordering::Relaxed),
        };
        CacheStats {
            parse: s(0),
            optimize: s(1),
            profile: s(2),
            compile: s(3),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.inner.lock().unwrap().resident_bytes,
        }
    }

    /// Cumulative per-stage execution time snapshot.
    pub fn stage_times(&self) -> StageTimes {
        let mut ns = [0u64; 5];
        for (i, slot) in ns.iter_mut().enumerate() {
            *slot = self.stage_ns[i].load(Ordering::Relaxed);
        }
        StageTimes { ns }
    }

    /// Drop all cached artifacts and reset counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        *inner = Inner::default();
        for c in self.hits.iter().chain(&self.misses).chain(&self.stage_ns) {
            c.store(0, Ordering::Relaxed);
        }
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Number of artifacts currently held, per cacheable stage.
    pub fn len(&self) -> [usize; 4] {
        let inner = self.inner.lock().unwrap();
        [
            inner.maps.parsed.len(),
            inner.maps.optimized.len(),
            inner.maps.profiles.len(),
            inner.maps.compiled.len(),
        ]
    }

    /// Whether the cache holds no artifacts at all.
    pub fn is_empty(&self) -> bool {
        self.len().iter().all(|&n| n == 0)
    }

    /// Estimated resident artifact bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().unwrap().resident_bytes
    }

    fn hash(&self, key: &str) -> u64 {
        fnv1a64(key) & self.config.hash_mask
    }

    pub(crate) fn record_time(&self, stage: StageKind, start: Instant) {
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stage_ns[stage as usize].fetch_add(ns, Ordering::Relaxed);
    }

    /// Look up `key` in the stage map chosen by `select`, computing and
    /// inserting on miss. `compute` runs outside the lock and times only
    /// this stage's own work (nested stage calls inside `compute` — e.g.
    /// Optimize invoking Parse — record under their own [`StageKind`], so
    /// [`StageTimes`] entries add up instead of double-counting). After an
    /// insert the LRU queue is trimmed to the byte budget.
    pub(crate) fn get_or_compute<V: Clone + ArtifactBytes>(
        &self,
        stage: StageKind,
        key: String,
        select: impl Fn(&mut Maps) -> &mut StageMap<V>,
        compute: impl FnOnce(&mut StageTimer) -> Result<V, ToolchainError>,
    ) -> Result<V, ToolchainError> {
        let hash = self.hash(&key);
        {
            let mut inner = self.inner.lock().unwrap();
            let found = select(&mut inner.maps)
                .find(hash, &key)
                .map(|e| (e.id, e.value.clone()));
            if let Some((id, v)) = found {
                inner.touch(id);
                self.hits[stage as usize].fetch_add(1, Ordering::Relaxed);
                return Ok(v);
            }
        }
        self.misses[stage as usize].fetch_add(1, Ordering::Relaxed);
        let mut timer = StageTimer::default();
        let v = compute(&mut timer)?;
        self.stage_ns[stage as usize].fetch_add(timer.ns, Ordering::Relaxed);

        let mut inner = self.inner.lock().unwrap();
        // A racing worker may have inserted while we computed; keep the
        // resident copy (first insert wins, like the old exact-key cache).
        if let Some((id, existing)) = select(&mut inner.maps)
            .find(hash, &key)
            .map(|e| (e.id, e.value.clone()))
        {
            inner.touch(id);
            return Ok(existing);
        }
        let bytes = key.len() as u64 + v.artifact_bytes() + ENTRY_OVERHEAD;
        if bytes > self.config.byte_budget {
            // An artifact that can never fit is not retained at all —
            // admitting it would flush every other resident entry for
            // nothing. Counted as an eviction so the non-retention shows
            // up in the stats.
            drop(inner);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        select(&mut inner.maps).insert(
            hash,
            Entry {
                key: key.into_boxed_str(),
                value: v.clone(),
                id,
            },
        );
        inner.remember(Loc {
            stage: stage as usize,
            hash,
            id,
            bytes,
        });
        let mut evicted = 0u64;
        while inner.resident_bytes > self.config.byte_budget && inner.evict_one() {
            evicted += 1;
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(v)
    }

    pub(crate) fn parsed(maps: &mut Maps) -> &mut StageMap<Module> {
        &mut maps.parsed
    }

    pub(crate) fn optimized(maps: &mut Maps) -> &mut StageMap<Module> {
        &mut maps.optimized
    }

    pub(crate) fn profiles(maps: &mut Maps) -> &mut StageMap<Profile> {
        &mut maps.profiles
    }

    pub(crate) fn compiled(maps: &mut Maps) -> &mut StageMap<CompiledArtifact> {
        &mut maps.compiled
    }
}

/// Accumulates the nanoseconds a stage spends in its *own* work. Stage
/// compute closures wrap their work in [`StageTimer::time`] and leave
/// nested stage calls outside, so those record under their own stage.
#[derive(Debug, Default)]
pub(crate) struct StageTimer {
    ns: u64,
}

impl StageTimer {
    pub(crate) fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.ns = self
            .ns
            .saturating_add(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        out
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

/// `Debug` prints the stats snapshot, not megabytes of artifacts.
impl fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("stats", &self.stats())
            .field("budget", &self.config.byte_budget)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> Module {
        asip_tinyc::compile(src).unwrap()
    }

    fn store(cache: &ArtifactCache, key: &str, m: &Module) -> Result<Module, ToolchainError> {
        cache.get_or_compute(
            StageKind::Parse,
            key.to_string(),
            ArtifactCache::parsed,
            |t| Ok(t.time(|| m.clone())),
        )
    }

    #[test]
    fn hit_returns_identical_artifact() {
        let cache = ArtifactCache::with_budget(u64::MAX);
        let m = module("void main(int a) { emit(a + 1); }");
        let first = store(&cache, "k", &m).unwrap();
        let second = store(&cache, "k", &m).unwrap();
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
        let s = cache.stats();
        assert_eq!(s.parse.hits, 1);
        assert_eq!(s.parse.misses, 1);
        assert_eq!(s.evictions, 0);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn forced_collisions_never_alias() {
        // hash_mask 0: every key lands in bucket 0; only the stored-key
        // comparison separates artifacts.
        let cache = ArtifactCache::with_config(CacheConfig {
            byte_budget: u64::MAX,
            hash_mask: 0,
        });
        let a = module("void main(int a) { emit(a + 1); }");
        let b = module("void main(int a) { emit(a - 1); }");
        store(&cache, "ka", &a).unwrap();
        store(&cache, "kb", &b).unwrap();
        let back_a = store(&cache, "ka", &a).unwrap();
        let back_b = store(&cache, "kb", &b).unwrap();
        assert_eq!(format!("{back_a:?}"), format!("{a:?}"));
        assert_eq!(format!("{back_b:?}"), format!("{b:?}"));
        let s = cache.stats();
        assert_eq!(s.parse.misses, 2, "{s}");
        assert_eq!(s.parse.hits, 2, "{s}");
        assert_eq!(cache.len(), [2, 0, 0, 0]);
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        let m = module("void main(int a) { emit(a); }");
        let bytes = m.artifact_bytes() + ENTRY_OVERHEAD + 2;
        // Room for exactly two entries.
        let cache = ArtifactCache::with_budget(2 * bytes);
        store(&cache, "k1", &m).unwrap();
        store(&cache, "k2", &m).unwrap();
        assert_eq!(cache.stats().evictions, 0);
        // Touch k1 so k2 is the LRU victim.
        store(&cache, "k1", &m).unwrap();
        store(&cache, "k3", &m).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1, "{s}");
        assert!(s.resident_bytes <= cache.byte_budget(), "{s}");
        // k1 survived (hit), k2 was evicted (miss again).
        store(&cache, "k1", &m).unwrap();
        store(&cache, "k2", &m).unwrap();
        let s = cache.stats();
        assert_eq!(s.parse.hits, 2, "{s}");
        assert_eq!(s.parse.misses, 4, "{s}");
    }

    #[test]
    fn oversized_artifact_is_not_admitted_and_does_not_flush() {
        let small = module("void main(int a) { emit(a); }");
        let unit = small.artifact_bytes() + ENTRY_OVERHEAD + 2;
        let cache = ArtifactCache::with_budget(3 * unit);
        store(&cache, "k1", &small).unwrap();
        store(&cache, "k2", &small).unwrap();
        // Larger than the whole budget: returned to the caller but never
        // retained, and the resident entries stay hot.
        let big = module("int g[4096]; void main(int a) { emit(g[a]); }");
        assert!(big.artifact_bytes() > cache.byte_budget());
        let back = store(&cache, "big", &big).unwrap();
        assert_eq!(format!("{back:?}"), format!("{big:?}"));
        assert_eq!(cache.stats().evictions, 1, "oversized counts as evicted");
        store(&cache, "k1", &small).unwrap();
        store(&cache, "k2", &small).unwrap();
        let s = cache.stats();
        assert_eq!(s.parse.hits, 2, "small entries must survive: {s}");
        // The oversized artifact recomputes (it was never resident).
        store(&cache, "big", &big).unwrap();
        let s = cache.stats();
        assert_eq!(s.parse.misses, 4, "{s}");
        assert_eq!(s.evictions, 2, "{s}");
        assert!(s.resident_bytes <= cache.byte_budget(), "{s}");
    }

    #[test]
    fn zero_budget_disables_retention_but_stays_correct() {
        let cache = ArtifactCache::with_budget(0);
        let m = module("void main(int a) { emit(a * 2); }");
        for _ in 0..3 {
            let back = store(&cache, "k", &m).unwrap();
            assert_eq!(format!("{back:?}"), format!("{m:?}"));
        }
        let s = cache.stats();
        assert_eq!(s.parse.hits, 0, "{s}");
        assert_eq!(s.parse.misses, 3, "{s}");
        assert_eq!(s.evictions, 3, "{s}");
        assert!(cache.is_empty());
        assert_eq!(s.resident_bytes, 0, "{s}");
    }

    #[test]
    fn clear_resets_budget_accounting() {
        let cache = ArtifactCache::with_budget(u64::MAX);
        let m = module("void main(int a) { emit(a); }");
        store(&cache, "k", &m).unwrap();
        assert!(cache.resident_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
