//! The tiered, memoized artifact store behind every
//! [`Toolchain`](crate::pipeline::Toolchain) and
//! [`Session`](crate::session::Session).
//!
//! # Tiers behind one abstraction
//!
//! The cache is a stack of [`CacheStore`] tiers, probed hottest-first:
//!
//! * **Tier 0 — memory** ([`MemoryStore`]): the LRU byte-budgeted in-process
//!   store ([`CacheConfig::byte_budget`], default [`DEFAULT_CACHE_BYTES`],
//!   `ASIP_CACHE_BYTES`).
//! * **Tier 1 — disk** ([`DiskStore`], optional): a persistent directory
//!   ([`SessionBuilder::cache_dir`](crate::session::SessionBuilder::cache_dir)
//!   or `ASIP_CACHE_DIR`) that survives the process, so a new session
//!   warm-starts the whole Parse→Optimize→Profile→Compile front half.
//!
//! Lookups **read through**: a miss in tier 0 falls to tier 1, and a hit
//! there is promoted back into tier 0. Computed artifacts **write through**
//! to every tier. Each tier reports its own [`TierStats`] (hits, loads,
//! stale drops, evictions) inside [`CacheStats`]. Custom tier stacks plug
//! in via [`ArtifactCache::with_tiers`].
//!
//! # Hashed keys, exact hits
//!
//! Stage artifacts are keyed by the *complete rendered inputs* of the stage
//! (source text, machine description, profile fingerprint, …). The memory
//! tier indexes entries by a 64-bit FNV-1a hash and keeps the full key
//! alongside each entry: a lookup first matches the hash, then verifies the
//! stored key byte-for-byte, so a hash collision degrades to a bucket scan
//! — never to a wrong artifact. (Tests can force the degenerate all-collide
//! case through [`CacheConfig::hash_mask`].) The disk tier stores each
//! entry with a self-describing header (magic, [`FORMAT_VERSION`], stage
//! kind, **full key**, payload checksum) and re-verifies all of it on load,
//! so a filename collision, a stale format or plain file corruption
//! silently degrades to a recompute — never to a wrong artifact.
//!
//! # Artifacts travel as versioned bytes
//!
//! Every cached artifact kind (IR modules, profiles, compiled VLIW/scalar
//! programs) implements the hand-rolled binary [`Codec`]
//! ([`asip_isa::codec`]); `decode(encode(x)) == x` exactly, so disk-warm,
//! memory-warm and cold evaluations produce byte-identical results — only
//! the counters in [`CacheStats`] can tell them apart.

pub mod disk;
mod entry;
pub mod mem;

pub use disk::DiskStore;
pub use entry::FORMAT_VERSION;
pub use mem::MemoryStore;

use crate::pipeline::ToolchainError;
use asip_isa::codec::Codec;
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default memory-tier byte budget (256 MiB) when neither
/// [`CacheConfig::byte_budget`] nor `ASIP_CACHE_BYTES` says otherwise.
pub const DEFAULT_CACHE_BYTES: u64 = 256 * 1024 * 1024;

/// Default disk-tier byte budget (1 GiB) when [`DiskTierConfig`] does not
/// say otherwise.
pub const DEFAULT_DISK_CACHE_BYTES: u64 = 1024 * 1024 * 1024;

/// Environment variable overriding the default memory-tier byte budget.
pub const CACHE_BYTES_ENV: &str = "ASIP_CACHE_BYTES";

/// Environment variable naming the persistent cache directory. Unset (or
/// empty) means no disk tier; an explicit
/// [`SessionBuilder::cache_dir`](crate::session::SessionBuilder::cache_dir)
/// always wins over this variable.
pub const CACHE_DIR_ENV: &str = "ASIP_CACHE_DIR";

/// The byte budget a fresh cache uses: `ASIP_CACHE_BYTES` if set to a
/// parseable `u64`, else [`DEFAULT_CACHE_BYTES`].
pub fn default_cache_bytes() -> u64 {
    std::env::var(CACHE_BYTES_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_CACHE_BYTES)
}

/// The default persistent cache directory: `ASIP_CACHE_DIR` when set and
/// non-empty, else `None` (no disk tier).
pub fn default_cache_dir() -> Option<PathBuf> {
    std::env::var_os(CACHE_DIR_ENV)
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Configuration of the persistent disk tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskTierConfig {
    /// Directory holding the cache (created on demand; one subdirectory
    /// per cacheable stage).
    pub dir: PathBuf,
    /// Maximum total entry-file bytes before age-ordered eviction (oldest
    /// entries deleted first). Default [`DEFAULT_DISK_CACHE_BYTES`].
    pub byte_budget: u64,
    /// Entries older than this many seconds are purged when the store is
    /// opened. `None` (the default) keeps entries until size eviction.
    pub max_age_secs: Option<u64>,
}

impl DiskTierConfig {
    /// A disk tier at `dir` with the default budget and no age limit.
    pub fn new(dir: impl Into<PathBuf>) -> DiskTierConfig {
        DiskTierConfig {
            dir: dir.into(),
            byte_budget: DEFAULT_DISK_CACHE_BYTES,
            max_age_secs: None,
        }
    }
}

/// Cache construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Maximum resident artifact bytes in the memory tier before LRU
    /// eviction kicks in.
    pub byte_budget: u64,
    /// Mask applied to the memory tier's 64-bit key hash. `!0` (the
    /// default) keeps the full hash; tests set narrower masks (down to `0`)
    /// to force bucket collisions and exercise the stored-key fallback
    /// path.
    pub hash_mask: u64,
    /// Optional persistent disk tier. `None` by default: only
    /// [`Session::builder`](crate::session::Session::builder) consults
    /// `ASIP_CACHE_DIR` (via [`default_cache_dir`]), so bare
    /// `ArtifactCache`/`Toolchain` construction stays hermetic — unit
    /// tests and scratch toolchains never touch (or clear!) a persistent
    /// directory they were not explicitly pointed at.
    pub disk: Option<DiskTierConfig>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            byte_budget: default_cache_bytes(),
            hash_mask: !0,
            disk: None,
        }
    }
}

/// The stages of the pipeline graph, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// TinyC source → unoptimized IR module.
    Parse = 0,
    /// IR module → optimized IR module.
    Optimize = 1,
    /// Optimized module + inputs → block-frequency profile.
    Profile = 2,
    /// Module + machine (+ profile) → compiled program.
    Compile = 3,
    /// Compiled program + machine → simulation result, golden-checked.
    Simulate = 4,
}

impl StageKind {
    /// Every stage, in pipeline order.
    pub const ALL: [StageKind; 5] = [
        StageKind::Parse,
        StageKind::Optimize,
        StageKind::Profile,
        StageKind::Compile,
        StageKind::Simulate,
    ];

    /// The cacheable stages. Since the Simulate stage became memoized
    /// (engines are deterministic and keys cover artifact + options +
    /// inputs), this is every stage; kept distinct from [`StageKind::ALL`]
    /// for readability at call sites that mean "what the cache stores".
    pub const CACHEABLE: [StageKind; 5] = [
        StageKind::Parse,
        StageKind::Optimize,
        StageKind::Profile,
        StageKind::Compile,
        StageKind::Simulate,
    ];

    /// The front half of the pipeline: everything up to (but excluding)
    /// the Simulate measurement stage.
    pub const FRONT_HALF: [StageKind; 4] = [
        StageKind::Parse,
        StageKind::Optimize,
        StageKind::Profile,
        StageKind::Compile,
    ];

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Parse => "parse",
            StageKind::Optimize => "optimize",
            StageKind::Profile => "profile",
            StageKind::Compile => "compile",
            StageKind::Simulate => "simulate",
        }
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Hit/miss counters for one cacheable stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Artifact served from some cache tier.
    pub hits: u64,
    /// Artifact computed (and written through to every tier).
    pub misses: u64,
}

/// Counters for one cache tier (see [`CacheStore::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Lookups that returned a verified artifact from this tier.
    pub hits: u64,
    /// Lookup attempts reaching this tier (hits + misses + stale drops).
    pub loads: u64,
    /// Payloads written into this tier (write-through and promotions).
    pub stores: u64,
    /// Entries dropped because they failed verification: truncation,
    /// corruption, format-version or key mismatch, undecodable payload.
    /// Every one degrades silently to a recompute.
    pub stale_drops: u64,
    /// Entries evicted by the tier's retention policy (LRU bytes in
    /// memory, age+size on disk; non-admitted oversized entries count
    /// here too).
    pub evictions: u64,
    /// Orphaned temporary files reclaimed at open: `.tmp-*` leftovers of
    /// writers that crashed between write and rename. Always zero for
    /// tiers without a staging area (memory). A crash-looped fleet that
    /// kept leaking these would otherwise fill the disk silently.
    pub tmp_reclaimed: u64,
    /// Estimated bytes currently held by this tier.
    pub resident_bytes: u64,
    /// Entries currently held by this tier.
    pub entries: u64,
}

impl fmt::Display for TierStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits/{} loads, {} stale, {} evictions, {} KiB in {} entries",
            self.hits,
            self.loads,
            self.stale_drops,
            self.evictions,
            self.resident_bytes / 1024,
            self.entries,
        )?;
        if self.tmp_reclaimed > 0 {
            write!(f, ", {} tmp reclaimed", self.tmp_reclaimed)?;
        }
        Ok(())
    }
}

/// Snapshot of cache behavior (see [`crate::pipeline::Toolchain::cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Source → unoptimized module.
    pub parse: StageStats,
    /// (source, opt config) → optimized module.
    pub optimize: StageStats,
    /// (module, inputs, args) → profile.
    pub profile: StageStats,
    /// (module, machine, backend, profile) → compiled program.
    pub compile: StageStats,
    /// (target, artifact, machine, sim options, inputs, args) → simulation
    /// result. A hit skips the cycle-level simulation entirely.
    pub simulate: StageStats,
    /// (engine, target, machine, program) → prepared simulation engine
    /// (validated + decoded/block-compiled program). A hit reuses the
    /// in-memory preparation across runs of the same artifact — e.g. the
    /// same cell under different inputs — instead of re-validating and
    /// re-decoding per run. Process-local only (never persisted): the
    /// prepared forms are cheap to rebuild and not serializable.
    pub decode: StageStats,
    /// Memory-tier artifacts evicted to stay under the byte budget.
    pub evictions: u64,
    /// Estimated bytes currently held by the memory tier.
    pub resident_bytes: u64,
    /// Memory-tier counters.
    pub mem: TierStats,
    /// Disk-tier counters (all zero when no disk tier is attached).
    pub disk: TierStats,
    /// Whether a persistent disk tier is attached.
    pub has_disk: bool,
}

impl CacheStats {
    /// Total hits across all stages (served from any tier).
    pub fn hits(&self) -> u64 {
        self.parse.hits
            + self.optimize.hits
            + self.profile.hits
            + self.compile.hits
            + self.simulate.hits
    }

    /// Total misses across all stages (artifact computed).
    pub fn misses(&self) -> u64 {
        self.parse.misses
            + self.optimize.misses
            + self.profile.misses
            + self.compile.misses
            + self.simulate.misses
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse {}/{} optimize {}/{} profile {}/{} compile {}/{} simulate {}/{} \
             decode {}/{} (hits/misses), {} evictions, {} KiB resident",
            self.parse.hits,
            self.parse.misses,
            self.optimize.hits,
            self.optimize.misses,
            self.profile.hits,
            self.profile.misses,
            self.compile.hits,
            self.compile.misses,
            self.simulate.hits,
            self.simulate.misses,
            self.decode.hits,
            self.decode.misses,
            self.evictions,
            self.resident_bytes / 1024,
        )?;
        if self.has_disk {
            write!(f, "; disk tier: {}", self.disk)?;
        }
        Ok(())
    }
}

/// Cumulative wall-clock nanoseconds spent *executing* each stage (cache
/// hits cost nothing here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Per stage, indexed by `StageKind as usize`.
    pub ns: [u64; 5],
}

impl StageTimes {
    /// Nanoseconds spent in `stage`.
    pub fn get(&self, stage: StageKind) -> u64 {
        self.ns[stage as usize]
    }
}

/// 64-bit FNV-1a over `key`, from an arbitrary basis (`seed`). The memory
/// tier hashes with the standard basis; the disk tier derives its file
/// names from two independently-seeded hashes.
pub(crate) fn fnv1a64_seeded(key: &str, seed: u64) -> u64 {
    let mut h: u64 = seed;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Standard FNV-1a offset basis.
pub(crate) const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// 64-bit FNV-1a over a byte slice (entry checksums).
pub(crate) fn fnv1a64_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = FNV_BASIS;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One tier of the artifact cache: an opaque byte store keyed by
/// (stage, full rendered key).
///
/// Implementations **own verification**: `load` must only return a payload
/// that was stored under exactly this (stage, key) pair — via an exact
/// stored-key comparison ([`MemoryStore`]) or a self-describing entry
/// header ([`DiskStore`]). Anything unverifiable is dropped (counted in
/// [`TierStats::stale_drops`]) and reported as a miss, so corruption can
/// only ever cost a recompute. All methods are infallible by contract: a
/// tier that cannot serve (I/O errors, missing directory) behaves as
/// always-miss.
///
/// Payloads are the versioned binary encodings produced by the artifact
/// [`Codec`]s; stores treat them as opaque bytes, which is what makes the
/// tier stack pluggable ([`ArtifactCache::with_tiers`]).
pub trait CacheStore: Send + Sync + fmt::Debug {
    /// Short tier name for stats and summaries (`"mem"`, `"disk"`, …).
    fn label(&self) -> &'static str;

    /// Look up the payload stored for (stage, key); `None` on miss.
    fn load(&self, stage: StageKind, key: &str) -> Option<Vec<u8>>;

    /// Store a payload for (stage, key). An entry already present for the
    /// same key may be kept unchanged (payloads are deterministic encodings
    /// of deterministic artifacts, so both copies are identical).
    fn store(&self, stage: StageKind, key: &str, payload: &[u8]);

    /// Drop the entry for (stage, key), counting a stale drop (called when
    /// a loaded payload fails to decode).
    fn invalidate(&self, stage: StageKind, key: &str);

    /// Drop every entry and reset the tier's counters.
    fn clear(&self);

    /// This tier's counters.
    fn stats(&self) -> TierStats;

    /// Entries currently held, per cacheable stage (indexed by
    /// `StageKind as usize`).
    fn stage_entries(&self) -> [u64; 5];
}

/// Per-stage **self wall time** histograms: the full wall clock of each
/// [`ArtifactCache::get_or_compute`] call (probe + compute + write-through,
/// hits included), minus the wall time of nested stage calls inside its
/// compute closure. Selves therefore partition the outermost call's wall
/// time — summed across stages they reconstruct an evaluation's wall time
/// within tolerance (pinned by the `obs_timing` integration test), unlike
/// [`StageTimes`] which deliberately times only the compute closure's own
/// work.
static STAGE_SELF_NS: [asip_obs::Histogram; 5] = [
    asip_obs::Histogram::new("stage.parse.self_ns"),
    asip_obs::Histogram::new("stage.optimize.self_ns"),
    asip_obs::Histogram::new("stage.profile.self_ns"),
    asip_obs::Histogram::new("stage.compile.self_ns"),
    asip_obs::Histogram::new("stage.simulate.self_ns"),
];

thread_local! {
    /// Wall nanoseconds consumed by already-completed *child* stage calls
    /// of the stage call currently running on this thread.
    static CHILD_STAGE_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// One stack frame of stage self-time accounting (see [`STAGE_SELF_NS`]).
struct StageFrame {
    start: Instant,
    parent_child_ns: u64,
}

impl StageFrame {
    fn enter() -> StageFrame {
        StageFrame {
            start: Instant::now(),
            parent_child_ns: CHILD_STAGE_NS.with(|c| c.replace(0)),
        }
    }

    fn exit(self, stage: StageKind) {
        let wall = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let children = CHILD_STAGE_NS.with(|c| c.get());
        STAGE_SELF_NS[stage as usize].record(wall.saturating_sub(children));
        // Report this call's *full* wall to the parent frame.
        CHILD_STAGE_NS.with(|c| c.set(self.parent_child_ns.saturating_add(wall)));
    }
}

/// Interned per-tier observability counters, resolved once per
/// [`ArtifactCache`] so the probe loop records through plain `'static`
/// references (no allocation, no map lookups on the hot path).
struct TierObs {
    label: &'static str,
    loads: &'static asip_obs::Counter,
    hits: &'static asip_obs::Counter,
    stores: &'static asip_obs::Counter,
}

impl TierObs {
    fn for_store(store: &dyn CacheStore) -> TierObs {
        let label = store.label();
        TierObs {
            label,
            loads: asip_obs::counter(&format!("cache.{label}.loads")),
            hits: asip_obs::counter(&format!("cache.{label}.hits")),
            stores: asip_obs::counter(&format!("cache.{label}.stores")),
        }
    }
}

/// The tiered, memoized artifact cache shared by every clone of a
/// [`Toolchain`] (clones share one cache via `Arc`).
///
/// Lookups probe the tier stack hottest-first, promote lower-tier hits
/// upward, and write computed artifacts through to every tier; see the
/// [module docs](self) for the verification story. Computation happens
/// outside any lock: concurrent grid cells never serialize on each other's
/// compiles (at worst a race computes the same artifact twice and the
/// deterministic copies are identical).
///
/// [`Toolchain`]: crate::pipeline::Toolchain
pub struct ArtifactCache {
    stores: Vec<Arc<dyn CacheStore>>,
    tier_obs: Vec<TierObs>,
    config: CacheConfig,
    hits: [AtomicU64; 5],
    misses: [AtomicU64; 5],
    stage_ns: [AtomicU64; 5],
    /// Total simulated cycles produced by Simulate-stage *executions*
    /// (cache hits add nothing): the numerator of the session throughput
    /// (MIPS) report.
    sim_cycles: AtomicU64,
    /// Prepared simulation engines, keyed by (engine, target, machine,
    /// program): validated + decoded/block-compiled forms shared across
    /// runs of the same artifact. Type-erased because the four prepared
    /// shapes (VLIW/scalar × decoded/block) share no trait; process-local
    /// only (not a [`CacheStore`] tier — the forms are not serializable,
    /// and rebuilding them is microseconds).
    prepared: Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>,
    decode_hits: AtomicU64,
    decode_misses: AtomicU64,
}

/// Bound on distinct prepared simulations held at once. Each entry is a
/// decoded program (kilobytes); the map is wiped wholesale past the cap —
/// a crude policy that is fine because re-preparing is microseconds and
/// real sessions hold far fewer distinct (machine, program) pairs.
const PREPARED_CAP: usize = 512;

impl ArtifactCache {
    /// A new, empty cache with the default configuration (memory budget
    /// from `ASIP_CACHE_BYTES` or [`DEFAULT_CACHE_BYTES`]; no disk tier —
    /// see [`CacheConfig::disk`]).
    pub fn new() -> ArtifactCache {
        ArtifactCache::with_config(CacheConfig::default())
    }

    /// A new, empty, memory-only cache bounded to `byte_budget` resident
    /// bytes.
    pub fn with_budget(byte_budget: u64) -> ArtifactCache {
        ArtifactCache::with_config(CacheConfig {
            byte_budget,
            ..CacheConfig::default()
        })
    }

    /// A new, empty cache with explicit configuration: a [`MemoryStore`]
    /// tier 0, plus a [`DiskStore`] tier 1 when [`CacheConfig::disk`] is
    /// set.
    pub fn with_config(config: CacheConfig) -> ArtifactCache {
        let mut stores: Vec<Arc<dyn CacheStore>> = vec![Arc::new(MemoryStore::new(
            config.byte_budget,
            config.hash_mask,
        ))];
        if let Some(d) = &config.disk {
            stores.push(Arc::new(DiskStore::open(d.clone())));
        }
        ArtifactCache::with_tiers(config, stores)
    }

    /// A cache over an explicit tier stack, hottest first. This is the
    /// pluggability seam: any [`CacheStore`] implementation (remote,
    /// instrumented, …) can participate. `config` is kept for
    /// introspection ([`ArtifactCache::config`]) but the stores themselves
    /// govern retention.
    pub fn with_tiers(config: CacheConfig, stores: Vec<Arc<dyn CacheStore>>) -> ArtifactCache {
        assert!(!stores.is_empty(), "a cache needs at least one tier");
        let tier_obs = stores.iter().map(|s| TierObs::for_store(&**s)).collect();
        ArtifactCache {
            stores,
            tier_obs,
            config,
            hits: Default::default(),
            misses: Default::default(),
            stage_ns: Default::default(),
            sim_cycles: AtomicU64::new(0),
            prepared: Mutex::new(HashMap::new()),
            decode_hits: AtomicU64::new(0),
            decode_misses: AtomicU64::new(0),
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config.clone()
    }

    /// The configured memory-tier byte budget.
    pub fn byte_budget(&self) -> u64 {
        self.config.byte_budget
    }

    /// The persistent cache directory, when a disk tier is configured.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.config.disk.as_ref().map(|d| d.dir.as_path())
    }

    /// The tier stack, hottest first.
    pub fn tiers(&self) -> &[Arc<dyn CacheStore>] {
        &self.stores
    }

    fn tier_by_label(&self, label: &str) -> Option<&Arc<dyn CacheStore>> {
        self.stores.iter().find(|s| s.label() == label)
    }

    /// Per-stage hit/miss snapshot plus per-tier counters.
    pub fn stats(&self) -> CacheStats {
        let s = |i: usize| StageStats {
            hits: self.hits[i].load(Ordering::Relaxed),
            misses: self.misses[i].load(Ordering::Relaxed),
        };
        let mem = self
            .tier_by_label("mem")
            .map(|t| t.stats())
            .unwrap_or_default();
        let disk_tier = self.tier_by_label("disk");
        let disk = disk_tier.map(|t| t.stats()).unwrap_or_default();
        CacheStats {
            parse: s(0),
            optimize: s(1),
            profile: s(2),
            compile: s(3),
            simulate: s(4),
            decode: StageStats {
                hits: self.decode_hits.load(Ordering::Relaxed),
                misses: self.decode_misses.load(Ordering::Relaxed),
            },
            evictions: mem.evictions,
            resident_bytes: mem.resident_bytes,
            mem,
            disk,
            has_disk: disk_tier.is_some(),
        }
    }

    /// Cumulative per-stage execution time snapshot.
    pub fn stage_times(&self) -> StageTimes {
        let mut ns = [0u64; 5];
        for (i, slot) in ns.iter_mut().enumerate() {
            *slot = self.stage_ns[i].load(Ordering::Relaxed);
        }
        StageTimes { ns }
    }

    /// Drop all cached artifacts in **every** tier (including persisted
    /// disk entries) and reset all counters.
    pub fn clear(&self) {
        for s in &self.stores {
            s.clear();
        }
        for c in self.hits.iter().chain(&self.misses).chain(&self.stage_ns) {
            c.store(0, Ordering::Relaxed);
        }
        self.sim_cycles.store(0, Ordering::Relaxed);
        self.prepared.lock().unwrap().clear();
        self.decode_hits.store(0, Ordering::Relaxed);
        self.decode_misses.store(0, Ordering::Relaxed);
    }

    /// Total simulated cycles recorded by Simulate-stage executions (cache
    /// hits add nothing). Together with
    /// [`StageTimes::get`]`(StageKind::Simulate)` this yields the session's
    /// simulation throughput (cycles per host second).
    pub fn sim_cycles(&self) -> u64 {
        self.sim_cycles.load(Ordering::Relaxed)
    }

    /// Record cycles simulated by one Simulate-stage execution.
    pub(crate) fn record_sim_cycles(&self, cycles: u64) {
        self.sim_cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Look up (or build and retain) a **prepared simulation** under
    /// `key` — a validated, decoded or block-compiled program ready to
    /// run. Counted in [`CacheStats::decode`]. `build` runs outside the
    /// lock: a racing duplicate preparation is tolerated (both copies are
    /// equivalent; last insert wins). Keys must render everything the
    /// preparation reads — engine, target flavor, machine tables, program
    /// — so distinct preparations can never alias; the engine tag also
    /// keeps the map from serving a decoded form where a block-compiled
    /// one was requested.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns (typically program validation failure).
    pub fn get_or_prepare<T: Any + Send + Sync>(
        &self,
        key: String,
        build: impl FnOnce() -> Result<T, ToolchainError>,
    ) -> Result<Arc<T>, ToolchainError> {
        if let Some(any) = self.prepared.lock().unwrap().get(&key) {
            if let Ok(hit) = Arc::clone(any).downcast::<T>() {
                self.decode_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
        }
        self.decode_misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build()?);
        let mut map = self.prepared.lock().unwrap();
        if map.len() >= PREPARED_CAP {
            map.clear();
        }
        map.insert(key, Arc::clone(&built) as Arc<dyn Any + Send + Sync>);
        Ok(built)
    }

    /// Number of artifacts held by the hottest (memory) tier, per
    /// cacheable stage.
    pub fn len(&self) -> [usize; 5] {
        let e = self.stores[0].stage_entries();
        e.map(|n| n as usize)
    }

    /// Whether no tier holds any artifact.
    pub fn is_empty(&self) -> bool {
        self.stores
            .iter()
            .all(|s| s.stage_entries().iter().all(|&n| n == 0))
    }

    /// Estimated resident artifact bytes in the memory tier.
    pub fn resident_bytes(&self) -> u64 {
        self.tier_by_label("mem")
            .map(|t| t.stats().resident_bytes)
            .unwrap_or(0)
    }

    /// Look up `key` for `stage` through the tier stack, computing and
    /// writing through on a full miss.
    ///
    /// A hit in a colder tier is promoted into every hotter tier; a
    /// payload that fails to decode is invalidated in the tier that served
    /// it and the probe continues downward — corruption degrades to a
    /// recompute, never an error. `compute` runs outside any lock and
    /// times only this stage's own work (nested stage calls inside
    /// `compute` — e.g. Optimize invoking Parse — record under their own
    /// [`StageKind`], so [`StageTimes`] entries add up instead of
    /// double-counting).
    pub(crate) fn get_or_compute<V: Codec>(
        &self,
        stage: StageKind,
        key: String,
        compute: impl FnOnce(&mut StageTimer) -> Result<V, ToolchainError>,
    ) -> Result<V, ToolchainError> {
        // Symmetric timing: the frame measures this call's *entire* wall
        // time (hit or miss, probe and write-through included), net of
        // nested stage calls — see STAGE_SELF_NS.
        let frame = StageFrame::enter();
        let span = asip_obs::span("stage", stage.name());
        let out = self.probe_or_compute(stage, key, compute, span);
        frame.exit(stage);
        out
    }

    fn probe_or_compute<V: Codec>(
        &self,
        stage: StageKind,
        key: String,
        compute: impl FnOnce(&mut StageTimer) -> Result<V, ToolchainError>,
        mut span: asip_obs::Span,
    ) -> Result<V, ToolchainError> {
        for (i, store) in self.stores.iter().enumerate() {
            let obs = &self.tier_obs[i];
            obs.loads.add(1);
            let payload = {
                let mut tier_span = asip_obs::span("cache", obs.label);
                tier_span.note("load");
                store.load(stage, &key)
            };
            let Some(payload) = payload else {
                continue;
            };
            match V::decode_all(&payload) {
                Ok(v) => {
                    obs.hits.add(1);
                    for (j, hotter) in self.stores[..i].iter().enumerate() {
                        let promote = &self.tier_obs[j];
                        promote.stores.add(1);
                        let mut tier_span = asip_obs::span("cache", promote.label);
                        tier_span.note("store");
                        hotter.store(stage, &key, &payload);
                    }
                    self.hits[stage as usize].fetch_add(1, Ordering::Relaxed);
                    span.note("hit");
                    return Ok(v);
                }
                // Verified container, undecodable payload (e.g. encoded by
                // a build with different tag assignments): drop and fall
                // through to the next tier.
                Err(_) => {
                    let mut tier_span = asip_obs::span("cache", obs.label);
                    tier_span.note("stale-drop");
                    store.invalidate(stage, &key);
                }
            }
        }
        self.misses[stage as usize].fetch_add(1, Ordering::Relaxed);
        span.note("miss");
        let mut timer = StageTimer::default();
        let v = compute(&mut timer)?;
        self.stage_ns[stage as usize].fetch_add(timer.ns, Ordering::Relaxed);
        let payload = v.encode_to_vec();
        for (j, store) in self.stores.iter().enumerate() {
            let tier = &self.tier_obs[j];
            tier.stores.add(1);
            let mut tier_span = asip_obs::span("cache", tier.label);
            tier_span.note("store");
            store.store(stage, &key, &payload);
        }
        Ok(v)
    }
}

/// Accumulates the nanoseconds a stage spends in its *own* work. Stage
/// compute closures wrap their work in [`StageTimer::time`] and leave
/// nested stage calls outside, so those record under their own stage.
#[derive(Debug, Default)]
pub(crate) struct StageTimer {
    ns: u64,
}

impl StageTimer {
    pub(crate) fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.ns = self
            .ns
            .saturating_add(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        out
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

/// `Debug` prints the stats snapshot, not megabytes of artifacts.
impl fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("stats", &self.stats())
            .field("budget", &self.config.byte_budget)
            .field("tiers", &self.stores.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::mem::ENTRY_OVERHEAD;
    use super::*;
    use asip_ir::Module;
    use std::sync::Mutex;

    fn module(src: &str) -> Module {
        asip_tinyc::compile(src).unwrap()
    }

    fn bare(budget: u64, mask: u64) -> ArtifactCache {
        // Memory tier only: unit tests here must not pick up ASIP_CACHE_DIR.
        let config = CacheConfig {
            byte_budget: budget,
            hash_mask: mask,
            disk: None,
        };
        ArtifactCache::with_config(config)
    }

    fn store(cache: &ArtifactCache, key: &str, m: &Module) -> Result<Module, ToolchainError> {
        cache.get_or_compute(StageKind::Parse, key.to_string(), |t| {
            Ok(t.time(|| m.clone()))
        })
    }

    /// Payload + bookkeeping bytes one entry occupies in the memory tier.
    fn entry_bytes(key: &str, m: &Module) -> u64 {
        key.len() as u64 + m.encode_to_vec().len() as u64 + ENTRY_OVERHEAD
    }

    #[test]
    fn hit_returns_identical_artifact() {
        let cache = bare(u64::MAX, !0);
        let m = module("void main(int a) { emit(a + 1); }");
        let first = store(&cache, "k", &m).unwrap();
        let second = store(&cache, "k", &m).unwrap();
        assert_eq!(first, m);
        assert_eq!(second, m);
        let s = cache.stats();
        assert_eq!(s.parse.hits, 1);
        assert_eq!(s.parse.misses, 1);
        assert_eq!(s.evictions, 0);
        assert!(s.resident_bytes > 0);
        assert!(!s.has_disk);
        assert_eq!(s.mem.hits, 1);
        assert_eq!(s.mem.loads, 2);
        assert_eq!(s.mem.stores, 1);
    }

    #[test]
    fn forced_collisions_never_alias() {
        // hash_mask 0: every key lands in bucket 0; only the stored-key
        // comparison separates artifacts.
        let cache = bare(u64::MAX, 0);
        let a = module("void main(int a) { emit(a + 1); }");
        let b = module("void main(int a) { emit(a - 1); }");
        store(&cache, "ka", &a).unwrap();
        store(&cache, "kb", &b).unwrap();
        let back_a = store(&cache, "ka", &a).unwrap();
        let back_b = store(&cache, "kb", &b).unwrap();
        assert_eq!(back_a, a);
        assert_eq!(back_b, b);
        let s = cache.stats();
        assert_eq!(s.parse.misses, 2, "{s}");
        assert_eq!(s.parse.hits, 2, "{s}");
        assert_eq!(cache.len(), [2, 0, 0, 0, 0]);
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        let m = module("void main(int a) { emit(a); }");
        let bytes = entry_bytes("k1", &m) + 2;
        // Room for exactly two entries.
        let cache = bare(2 * bytes, !0);
        store(&cache, "k1", &m).unwrap();
        store(&cache, "k2", &m).unwrap();
        assert_eq!(cache.stats().evictions, 0);
        // Touch k1 so k2 is the LRU victim.
        store(&cache, "k1", &m).unwrap();
        store(&cache, "k3", &m).unwrap();
        let s = cache.stats();
        assert_eq!(s.evictions, 1, "{s}");
        assert!(s.resident_bytes <= cache.byte_budget(), "{s}");
        // k1 survived (hit), k2 was evicted (miss again).
        store(&cache, "k1", &m).unwrap();
        store(&cache, "k2", &m).unwrap();
        let s = cache.stats();
        assert_eq!(s.parse.hits, 2, "{s}");
        assert_eq!(s.parse.misses, 4, "{s}");
    }

    #[test]
    fn oversized_artifact_is_not_admitted_and_does_not_flush() {
        let small = module("void main(int a) { emit(a); }");
        let unit = entry_bytes("k1", &small) + 2;
        let cache = bare(3 * unit, !0);
        store(&cache, "k1", &small).unwrap();
        store(&cache, "k2", &small).unwrap();
        // Larger than the whole budget: returned to the caller but never
        // retained, and the resident entries stay hot.
        let mut big = module("int g[4096]; void main(int a) { emit(g[a]); }");
        big.globals[0].init = vec![7; 4096]; // make the encoding genuinely big
        assert!(entry_bytes("big", &big) > cache.byte_budget());
        let back = store(&cache, "big", &big).unwrap();
        assert_eq!(back, big);
        assert_eq!(cache.stats().evictions, 1, "oversized counts as evicted");
        store(&cache, "k1", &small).unwrap();
        store(&cache, "k2", &small).unwrap();
        let s = cache.stats();
        assert_eq!(s.parse.hits, 2, "small entries must survive: {s}");
        // The oversized artifact recomputes (it was never resident).
        store(&cache, "big", &big).unwrap();
        let s = cache.stats();
        assert_eq!(s.parse.misses, 4, "{s}");
        assert_eq!(s.evictions, 2, "{s}");
        assert!(s.resident_bytes <= cache.byte_budget(), "{s}");
    }

    #[test]
    fn zero_budget_disables_retention_but_stays_correct() {
        let cache = bare(0, !0);
        let m = module("void main(int a) { emit(a * 2); }");
        for _ in 0..3 {
            let back = store(&cache, "k", &m).unwrap();
            assert_eq!(back, m);
        }
        let s = cache.stats();
        assert_eq!(s.parse.hits, 0, "{s}");
        assert_eq!(s.parse.misses, 3, "{s}");
        assert_eq!(s.evictions, 3, "{s}");
        assert!(cache.is_empty());
        assert_eq!(s.resident_bytes, 0, "{s}");
    }

    #[test]
    fn clear_resets_budget_accounting() {
        let cache = bare(u64::MAX, !0);
        let m = module("void main(int a) { emit(a); }");
        store(&cache, "k", &m).unwrap();
        assert!(cache.resident_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    /// A custom tier that records every call — proves the tier stack is
    /// genuinely pluggable and pins the read-through/write-through protocol.
    #[derive(Debug, Default)]
    struct TraceStore {
        entries: Mutex<Vec<(StageKind, String, Vec<u8>)>>,
        hits: AtomicU64,
        loads: AtomicU64,
        stores: AtomicU64,
    }

    impl CacheStore for TraceStore {
        fn label(&self) -> &'static str {
            "trace"
        }

        fn load(&self, stage: StageKind, key: &str) -> Option<Vec<u8>> {
            self.loads.fetch_add(1, Ordering::Relaxed);
            let found = self
                .entries
                .lock()
                .unwrap()
                .iter()
                .find(|(s, k, _)| *s == stage && k == key)
                .map(|(_, _, p)| p.clone());
            if found.is_some() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            found
        }

        fn store(&self, stage: StageKind, key: &str, payload: &[u8]) {
            self.stores.fetch_add(1, Ordering::Relaxed);
            self.entries
                .lock()
                .unwrap()
                .push((stage, key.to_string(), payload.to_vec()));
        }

        fn invalidate(&self, _stage: StageKind, _key: &str) {}

        fn clear(&self) {
            self.entries.lock().unwrap().clear();
        }

        fn stats(&self) -> TierStats {
            TierStats {
                hits: self.hits.load(Ordering::Relaxed),
                loads: self.loads.load(Ordering::Relaxed),
                stores: self.stores.load(Ordering::Relaxed),
                ..TierStats::default()
            }
        }

        fn stage_entries(&self) -> [u64; 5] {
            let mut out = [0u64; 5];
            for (s, _, _) in self.entries.lock().unwrap().iter() {
                out[*s as usize] += 1;
            }
            out
        }
    }

    #[test]
    fn custom_tier_sees_write_through_and_serves_read_through() {
        let trace = Arc::new(TraceStore::default());
        let mem: Arc<dyn CacheStore> = Arc::new(MemoryStore::new(u64::MAX, !0));
        let config = CacheConfig {
            byte_budget: u64::MAX,
            hash_mask: !0,
            disk: None,
        };
        let cache = ArtifactCache::with_tiers(config, vec![mem, trace.clone()]);
        let m = module("void main(int a) { emit(a + 3); }");

        // Miss: computed once, written through to both tiers.
        store(&cache, "k", &m).unwrap();
        assert_eq!(trace.stores.load(Ordering::Relaxed), 1);

        // Memory hit: the cold tier is not consulted.
        store(&cache, "k", &m).unwrap();
        assert_eq!(trace.loads.load(Ordering::Relaxed), 1);

        // Fresh cache sharing only the trace tier: read-through hit, and
        // the payload is promoted into the new memory tier.
        let cache2 = ArtifactCache::with_tiers(
            CacheConfig {
                byte_budget: u64::MAX,
                hash_mask: !0,
                disk: None,
            },
            vec![Arc::new(MemoryStore::new(u64::MAX, !0)), trace.clone()],
        );
        let back = store(&cache2, "k", &m).unwrap();
        assert_eq!(back, m);
        let s = cache2.stats();
        assert_eq!(s.parse.hits, 1, "cold-tier hit counts for the stage");
        assert_eq!(s.parse.misses, 0);
        assert_eq!(trace.hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache2.len(), [1, 0, 0, 0, 0], "promoted into memory");
        // Next lookup is a pure memory hit.
        store(&cache2, "k", &m).unwrap();
        assert_eq!(trace.loads.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn undecodable_payload_in_a_tier_degrades_to_recompute() {
        /// A tier that always claims a (verified) hit with garbage bytes.
        #[derive(Debug, Default)]
        struct GarbageStore {
            invalidated: AtomicU64,
        }
        impl CacheStore for GarbageStore {
            fn label(&self) -> &'static str {
                "garbage"
            }
            fn load(&self, _stage: StageKind, _key: &str) -> Option<Vec<u8>> {
                Some(vec![0xff, 0xff, 0xff])
            }
            fn store(&self, _stage: StageKind, _key: &str, _payload: &[u8]) {}
            fn invalidate(&self, _stage: StageKind, _key: &str) {
                self.invalidated.fetch_add(1, Ordering::Relaxed);
            }
            fn clear(&self) {}
            fn stats(&self) -> TierStats {
                TierStats::default()
            }
            fn stage_entries(&self) -> [u64; 5] {
                [0; 5]
            }
        }

        let garbage = Arc::new(GarbageStore::default());
        let cache = ArtifactCache::with_tiers(
            CacheConfig {
                byte_budget: u64::MAX,
                hash_mask: !0,
                disk: None,
            },
            vec![garbage.clone()],
        );
        let m = module("void main(int a) { emit(a); }");
        let back = store(&cache, "k", &m).unwrap();
        assert_eq!(back, m, "garbage payload must recompute, not corrupt");
        let s = cache.stats();
        assert_eq!(s.parse.misses, 1, "{s}");
        assert_eq!(garbage.invalidated.load(Ordering::Relaxed), 1);
    }
}
