//! The builder-configured [`Session`]: one object that owns the artifact
//! cache and a worker pool, and evaluates any batch of (workload × machine)
//! cells through the unified [`Session::eval_batch`] API.
//!
//! This is the paper's §3.1 "single family view" made operational: the N×M
//! grid ([`crate::nxm`]), design-space exploration ([`crate::dse`]) and ISE
//! budget sweeps ([`crate::ise::sweep_budgets`]) are all thin layers over
//! the same batched evaluation service, so every search loop shares one
//! tiered [`ArtifactCache`] (LRU-bounded memory, plus a persistent disk
//! tier via [`SessionBuilder::cache_dir`] / `ASIP_CACHE_DIR` for
//! cross-process warm starts) and one parallelism policy.
//!
//! # Quickstart
//!
//! ```
//! use asip_core::session::{EvalRequest, Session};
//! use asip_isa::MachineDescription;
//!
//! let session = Session::builder().threads(2).build();
//! let fir = asip_workloads::by_name("fir").unwrap();
//! let reqs = vec![
//!     EvalRequest::new(fir.clone(), MachineDescription::ember1()),
//!     EvalRequest::new(fir, MachineDescription::ember4()),
//! ];
//! let outcomes = session.eval_batch(&reqs);
//! // Results come back in request order, golden-checked.
//! assert!(outcomes.iter().all(|o| o.cycles().is_some()));
//! ```
//!
//! # Determinism
//!
//! `eval_batch` executes cells on scoped worker threads pulling from a
//! shared cursor, and writes each outcome into its request's slot: the
//! result vector is **request-ordered and byte-identical regardless of
//! thread count**. Artifacts are deterministic functions of their rendered
//! inputs and round-trip the cache's versioned binary codec exactly, so
//! cache hits (from either tier), racing recomputes, LRU evictions and
//! disk warm starts can never change a measurement — only the
//! [`CacheStats`] counters.

use crate::cache::{
    default_cache_bytes, default_cache_dir, ArtifactCache, CacheConfig, CacheStats, DiskTierConfig,
    StageTimes, DEFAULT_DISK_CACHE_BYTES,
};
use crate::flight::SingleFlight;
use crate::ise::{extend, IseConfig, IseReport};
use crate::pipeline::{Toolchain, ToolchainError, WorkloadRun};
use asip_backend::BackendOptions;
use asip_ir::passes::OptConfig;
use asip_isa::{FuKind, MachineDescription};
use asip_sim::{SimEngine, SimOptions};
use asip_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Full wall time of every [`Session::eval`] call, cache hits included.
static CELL_EVAL_NS: asip_obs::Histogram = asip_obs::Histogram::new("cell.eval_ns");

/// Environment variable overriding the default worker-thread count.
///
/// The builder is the single source of truth for parallelism: an explicit
/// [`SessionBuilder::threads`] call always wins. This variable only feeds
/// the builder's *default* (via [`default_threads`]) and is read nowhere
/// else in the workspace; precedence is pinned by the `session_env`
/// integration test.
pub const THREADS_ENV: &str = "ASIP_GRID_THREADS";

/// Environment variable overriding the default simulation engine.
///
/// Accepts `reference`, `decoded`, `block` or `superblock`
/// (case-insensitive; unparseable values are ignored). Precedence mirrors
/// [`THREADS_ENV`]: an explicit [`SessionBuilder::sim_engine`] call
/// always wins, this variable feeds the builder's *default* (via
/// [`default_engine`]), and with neither the engine is
/// [`SimEngine::default`] (the block compiler). The engine can never
/// change a measurement — all four produce bit-identical `SimResult`s
/// (pinned by the differential suites) — so Simulate cache keys
/// deliberately exclude it.
pub const ENGINE_ENV: &str = "ASIP_SIM_ENGINE";

/// Environment variable overriding the superblock promotion threshold:
/// how many dispatches a hot loop-header block must accumulate before the
/// superblock engine chains a trace through it (default 64). Only the
/// `superblock` engine reads it. Precedence mirrors [`ENGINE_ENV`]: an
/// explicit [`SessionBuilder::sb_threshold`] call wins, then this
/// variable (positive integers only), then the default. Thresholds tune
/// *when* traces form, never what they compute, so Simulate cache keys
/// exclude this knob too.
pub const SB_THRESHOLD_ENV: &str = "ASIP_SB_THRESHOLD";

fn engine_from_env() -> Option<SimEngine> {
    std::env::var(ENGINE_ENV)
        .ok()
        .and_then(|v| SimEngine::parse(&v))
}

fn sb_threshold_from_env() -> Option<u32> {
    std::env::var(SB_THRESHOLD_ENV)
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n > 0)
}

/// Default simulation engine: the `ASIP_SIM_ENGINE` environment variable
/// if set (and parseable), else [`SimEngine::default`].
pub fn default_engine() -> SimEngine {
    engine_from_env().unwrap_or_default()
}

/// Default worker count: the `ASIP_GRID_THREADS` environment variable if
/// set (and a positive integer), else one per available hardware thread.
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Configures and builds a [`Session`]. Obtain one with
/// [`Session::builder`]; every knob has a sensible default.
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    opt: OptConfig,
    backend: BackendOptions,
    sim: SimOptions,
    profile_guided: Option<bool>,
    cache_bytes: Option<u64>,
    cache_dir: Option<std::path::PathBuf>,
    disk_cache_bytes: Option<u64>,
    cache: Option<Arc<ArtifactCache>>,
    threads: Option<usize>,
    engine: Option<SimEngine>,
    sb_threshold: Option<u32>,
    trace: Option<std::path::PathBuf>,
}

impl SessionBuilder {
    /// Set the optimization pipeline configuration.
    pub fn opt(mut self, opt: OptConfig) -> Self {
        self.opt = opt;
        self
    }

    /// Set the backend configuration.
    pub fn backend(mut self, backend: BackendOptions) -> Self {
        self.backend = backend;
        self
    }

    /// Set the simulation limits applied to every evaluation.
    pub fn sim(mut self, sim: SimOptions) -> Self {
        self.sim = sim;
        self
    }

    /// Set the simulation engine serving every evaluation. Defaults to
    /// the `ASIP_SIM_ENGINE` environment variable, or the block compiler
    /// ([`SimEngine::Block`]). Engines differ only in speed: results are
    /// bit-identical, and Simulate cache keys exclude the engine.
    pub fn sim_engine(mut self, engine: SimEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Set the superblock promotion threshold: dispatches a hot
    /// loop-header block must accumulate before the superblock engine
    /// chains a trace through it. Defaults to the `ASIP_SB_THRESHOLD`
    /// environment variable, or 64. Only read by
    /// [`SimEngine::Superblock`]; like the engine itself it never changes
    /// a measurement, so Simulate cache keys exclude it.
    pub fn sb_threshold(mut self, threshold: u32) -> Self {
        self.sb_threshold = Some(threshold.max(1));
        self
    }

    /// Enable or disable profile-guided superblock formation (default on).
    pub fn profile_guided(mut self, on: bool) -> Self {
        self.profile_guided = Some(on);
        self
    }

    /// Bound the artifact cache to `bytes` resident bytes (LRU eviction
    /// beyond it). Defaults to the `ASIP_CACHE_BYTES` environment variable,
    /// or 256 MiB. `0` disables artifact retention entirely.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = Some(bytes);
        self
    }

    /// Attach a **persistent disk tier** at `dir`: cached artifacts
    /// survive the process, so the next session pointed at the same
    /// directory skips Parse/Optimize/Profile/Compile for everything it
    /// has seen before.
    ///
    /// Precedence: an explicit call here always wins; otherwise the
    /// `ASIP_CACHE_DIR` environment variable supplies the directory; with
    /// neither, no disk tier is attached.
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Bound the disk tier to `bytes` of entry files (oldest evicted
    /// first). Default [`DEFAULT_DISK_CACHE_BYTES`]. Only meaningful when
    /// a disk tier is attached.
    pub fn disk_cache_bytes(mut self, bytes: u64) -> Self {
        self.disk_cache_bytes = Some(bytes);
        self
    }

    /// Attach a pre-built cache (shared with other sessions or configured
    /// through [`CacheConfig`]); overrides
    /// [`SessionBuilder::cache_bytes`], [`SessionBuilder::cache_dir`] and
    /// [`SessionBuilder::disk_cache_bytes`].
    pub fn cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Set the worker-pool width for [`Session::eval_batch`]. Defaults to
    /// the `ASIP_GRID_THREADS` environment variable, or one worker per
    /// available hardware thread.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Record span traces for this session's process and write them to
    /// `path` (Chrome trace-event JSON) when the harness flushes
    /// (`asip_obs::flush_trace`, or `asip_bench::finish` in the bench
    /// bins).
    ///
    /// Precedence mirrors every other knob: an explicit call here always
    /// wins; otherwise the `ASIP_TRACE` environment variable supplies the
    /// path; with neither, span recording stays off (its disabled cost is
    /// one atomic load per site).
    pub fn trace(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Preset: all optimizations off (baseline for ablation studies).
    pub fn unoptimized(mut self) -> Self {
        self.opt = OptConfig::none();
        self.backend = BackendOptions {
            superblocks: false,
            ..Default::default()
        };
        self.profile_guided = Some(false);
        self
    }

    /// Build the session.
    pub fn build(self) -> Session {
        // Builder wins over environment, like every other knob. The
        // process-global recorder is configured here because sessions are
        // the entry point of every evaluation path (bench bins, the serve
        // workers, tests).
        match self.trace {
            Some(path) => asip_obs::set_trace_path(Some(path)),
            None => asip_obs::init_from_env(),
        }
        let cache = self.cache.unwrap_or_else(|| {
            // Builder wins over environment; environment wins over
            // default-off (pinned by the `session_env` integration tests).
            let disk = self
                .cache_dir
                .or_else(default_cache_dir)
                .map(|dir| DiskTierConfig {
                    dir,
                    byte_budget: self.disk_cache_bytes.unwrap_or(DEFAULT_DISK_CACHE_BYTES),
                    max_age_secs: None,
                });
            Arc::new(ArtifactCache::with_config(CacheConfig {
                byte_budget: self.cache_bytes.unwrap_or_else(default_cache_bytes),
                hash_mask: !0,
                disk,
            }))
        });
        let mut tc = Toolchain::default().with_cache(cache);
        tc.opt = self.opt;
        tc.backend = self.backend;
        tc.profile_guided = self.profile_guided.unwrap_or(true);
        tc.sim = self.sim;
        // Builder wins over environment; environment wins over whatever
        // the sim options carried (normally the engine default). Pinned
        // by the `session_env` integration tests.
        tc.sim.engine = self
            .engine
            .or_else(engine_from_env)
            .unwrap_or(tc.sim.engine);
        tc.sim.sb_threshold = self
            .sb_threshold
            .or_else(sb_threshold_from_env)
            .unwrap_or(tc.sim.sb_threshold);
        Session {
            tc,
            threads: self.threads.unwrap_or_else(default_threads),
            flights: Arc::new(SingleFlight::new()),
        }
    }
}

/// Per-request evaluation options.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalOptions {
    /// ISE area budget in adder-equivalents. When positive and the machine
    /// hosts a `Custom` slot, the module is extended with automatically
    /// selected custom operations before compilation (see [`crate::ise`]),
    /// and the outcome's [`EvalRun::machine`] carries the extended
    /// description. `0.0` (the default) evaluates the machine as given.
    pub ise_budget: f64,
}

/// One cell of work: run `workload` on `machine` under `options`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// The workload to compile and simulate.
    pub workload: Workload,
    /// The family member to target.
    pub machine: MachineDescription,
    /// Per-request options.
    pub options: EvalOptions,
}

impl EvalRequest {
    /// A request with default options.
    pub fn new(workload: Workload, machine: MachineDescription) -> EvalRequest {
        EvalRequest {
            workload,
            machine,
            options: EvalOptions::default(),
        }
    }

    /// This request with an ISE area budget (see [`EvalOptions::ise_budget`]).
    pub fn with_ise(mut self, area_budget: f64) -> EvalRequest {
        self.options.ise_budget = area_budget;
        self
    }

    /// The full machine-major (row-major) cross product: one default
    /// request per (machine, workload) cell, machines outermost — the
    /// layout [`Grid`](crate::nxm::Grid) and the batch consumers expect.
    pub fn grid(machines: &[MachineDescription], workloads: &[Workload]) -> Vec<EvalRequest> {
        machines
            .iter()
            .flat_map(|m| {
                workloads
                    .iter()
                    .map(move |w| EvalRequest::new(w.clone(), m.clone()))
            })
            .collect()
    }
}

/// The successful payload of an evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRun {
    /// The golden-checked run (cycles, stalls, energy activity, code size).
    pub run: WorkloadRun,
    /// The machine actually evaluated: the request's machine, ISE-extended
    /// when [`EvalOptions::ise_budget`] asked for it.
    pub machine: MachineDescription,
    /// The ISE selection report, when an extension was requested.
    pub ise: Option<IseReport>,
}

/// Result of one [`EvalRequest`]: names for reporting plus the typed
/// outcome ([`EvalRun`] or [`ToolchainError`] — never a stringly error).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// Workload name (from the request).
    pub workload: String,
    /// Base machine name (from the request).
    pub machine: String,
    /// The evaluation result.
    pub result: Result<EvalRun, ToolchainError>,
}

impl EvalOutcome {
    /// Simulated cycles, when the evaluation succeeded.
    pub fn cycles(&self) -> Option<u64> {
        self.result.as_ref().ok().map(|r| r.run.sim.cycles)
    }

    /// Whether the evaluation succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// A builder-configured toolchain session: owns the [`ArtifactCache`] and
/// a worker pool, and evaluates batches of (workload × machine) cells.
///
/// Cloning is cheap and shares the cache (like [`Toolchain`] clones);
/// [`Session::with_threads`] and [`Session::fresh_cache`] derive variants.
#[derive(Debug, Clone)]
pub struct Session {
    tc: Toolchain,
    threads: usize,
    flights: Arc<SingleFlight<EvalOutcome>>,
}

impl Default for Session {
    fn default() -> Self {
        Session::builder().build()
    }
}

impl Session {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Wrap an existing engine, keeping its cache ([`default_threads`]
    /// workers).
    pub fn from_toolchain(tc: Toolchain) -> Session {
        Session {
            tc,
            threads: default_threads(),
            flights: Arc::new(SingleFlight::new()),
        }
    }

    /// The underlying stage engine (shared cache).
    pub fn toolchain(&self) -> &Toolchain {
        &self.tc
    }

    /// Worker-pool width used by [`Session::eval_batch`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// This session with a different worker-pool width (shared cache).
    pub fn with_threads(&self, threads: usize) -> Session {
        Session {
            tc: self.tc.clone(),
            threads: threads.max(1),
            flights: Arc::clone(&self.flights),
        }
    }

    /// This session with a new, empty, unshared cache (same configuration).
    /// The single-flight map is fresh too: coalesced results always come
    /// from this session's own cache.
    pub fn fresh_cache(&self) -> Session {
        Session {
            tc: self.tc.fresh_cache(),
            threads: self.threads,
            flights: Arc::new(SingleFlight::new()),
        }
    }

    /// The session's artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        self.tc.cache()
    }

    /// Cache hit/miss/eviction counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.tc.cache_stats()
    }

    /// Cumulative per-stage execution times.
    pub fn stage_times(&self) -> StageTimes {
        self.tc.stage_times()
    }

    /// Convenience: run one workload on one machine with default options
    /// (see [`Toolchain::run_workload`]).
    ///
    /// # Errors
    ///
    /// Any [`ToolchainError`].
    pub fn run_workload(
        &self,
        w: &Workload,
        machine: &MachineDescription,
    ) -> Result<WorkloadRun, ToolchainError> {
        self.tc.run_workload(w, machine)
    }

    /// Evaluate one request on the calling thread.
    pub fn eval(&self, req: &EvalRequest) -> EvalOutcome {
        let start = std::time::Instant::now();
        let mut span = asip_obs::span("cell", "eval");
        if span.is_recording() {
            span.detail(format!(
                "{}@{} engine={}",
                req.workload.name,
                req.machine.name,
                self.tc.sim.engine.name()
            ));
        }
        let out = EvalOutcome {
            workload: req.workload.name.clone(),
            machine: req.machine.name.clone(),
            result: self.eval_inner(req),
        };
        span.note(if out.is_ok() { "ok" } else { "err" });
        drop(span);
        CELL_EVAL_NS.record(start.elapsed().as_nanos() as u64);
        out
    }

    /// Evaluate one request, **coalescing** with any identical request
    /// currently in flight on this session (or its `with_threads`/`clone`
    /// derivatives): one caller computes, concurrent duplicates block and
    /// clone the result. Returns the outcome plus whether this call *led*
    /// the computation — the evaluation server uses the flag for
    /// per-client attribution. Keyed by the codec-rendered request, so
    /// coalescing can never conflate distinct cells.
    ///
    /// Unlike the artifact cache this dedups only *concurrent* work:
    /// sequential repeats recompute (and are then served by the cache), so
    /// plain [`Session::eval`]/[`Session::eval_batch`] counters are
    /// unaffected by this path existing.
    pub fn eval_coalesced(&self, req: &EvalRequest) -> (EvalOutcome, bool) {
        use asip_isa::codec::Codec;
        self.flights.run(req.encode_to_vec(), || self.eval(req))
    }

    fn eval_inner(&self, req: &EvalRequest) -> Result<EvalRun, ToolchainError> {
        let tc = &self.tc;
        let w = &req.workload;
        let mut module = tc.frontend(&w.source)?;
        let wants_ise = req.options.ise_budget > 0.0 && req.machine.has_fu(FuKind::Custom);
        // ISE selection needs a profile even when compilation is not
        // profile-guided.
        let profile = if tc.profile_guided || wants_ise {
            Some(tc.profile(&module, &w.inputs, &w.args)?)
        } else {
            None
        };
        let (machine, ise) = if wants_ise {
            let cfg = IseConfig {
                area_budget: req.options.ise_budget,
                ..Default::default()
            };
            let (m2, report) = extend(
                &mut module,
                &req.machine,
                profile.as_ref().expect("profiled for ISE"),
                &cfg,
            );
            (m2, Some(report))
        } else {
            (req.machine.clone(), None)
        };
        let guided = if tc.profile_guided {
            profile.as_ref()
        } else {
            None
        };
        let compiled = tc.compile_for(&module, &machine, guided)?;
        let run = tc.run_artifact(w, &machine, &compiled)?;
        Ok(EvalRun { run, machine, ise })
    }

    /// Evaluate a batch of cells on the worker pool.
    ///
    /// Workers pull requests from a shared cursor (long cells never leave
    /// threads idle) and write outcomes into their request's slot: the
    /// returned vector is request-ordered and identical for any thread
    /// count. The pool is `min(threads, requests)` scoped threads.
    pub fn eval_batch(&self, reqs: &[EvalRequest]) -> Vec<EvalOutcome> {
        let n = reqs.len();
        let threads = self.threads.min(n).max(1);
        if threads <= 1 {
            return reqs.iter().map(|r| self.eval(r)).collect();
        }
        let slots: Mutex<Vec<Option<EvalOutcome>>> = Mutex::new(vec![None; n]);
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let outcome = self.eval(&reqs[i]);
                    slots.lock().unwrap()[i] = Some(outcome);
                });
            }
        });
        slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|o| o.expect("every batch slot is filled by a worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sensible() {
        let s = Session::builder().build();
        assert!(s.threads() >= 1);
        assert!(s.toolchain().profile_guided);
        assert_eq!(s.cache().byte_budget(), default_cache_bytes());
    }

    #[test]
    fn builder_overrides_stick() {
        let s = Session::builder()
            .threads(3)
            .cache_bytes(4096)
            .profile_guided(false)
            .build();
        assert_eq!(s.threads(), 3);
        assert_eq!(s.cache().byte_budget(), 4096);
        assert!(!s.toolchain().profile_guided);
        // threads(0) clamps to 1.
        assert_eq!(Session::builder().threads(0).build().threads(), 1);
    }

    #[test]
    fn eval_batch_returns_request_order() {
        let s = Session::builder().threads(4).build();
        let fir = asip_workloads::by_name("fir").unwrap();
        let crc = asip_workloads::by_name("crc32").unwrap();
        let reqs = vec![
            EvalRequest::new(fir.clone(), MachineDescription::ember4()),
            EvalRequest::new(crc.clone(), MachineDescription::ember1()),
            EvalRequest::new(fir, MachineDescription::ember1()),
            EvalRequest::new(crc, MachineDescription::ember4()),
        ];
        let out = s.eval_batch(&reqs);
        assert_eq!(out.len(), 4);
        for (o, r) in out.iter().zip(&reqs) {
            assert_eq!(o.workload, r.workload.name);
            assert_eq!(o.machine, r.machine.name);
            assert!(o.is_ok(), "{:?}", o.result);
        }
    }

    #[test]
    fn eval_reports_typed_errors() {
        let s = Session::builder().build();
        let mut w = asip_workloads::by_name("rle").unwrap();
        w.expected = vec![-1]; // sabotage the golden stream
        let out = s.eval(&EvalRequest::new(w, MachineDescription::ember2()));
        assert!(matches!(
            out.result,
            Err(ToolchainError::WrongOutput { .. })
        ));
        assert_eq!(out.cycles(), None);
    }

    #[test]
    fn ise_budget_extends_machine_in_outcome() {
        let s = Session::builder().build();
        let w = asip_workloads::by_name("yuv2rgb").unwrap();
        let base = MachineDescription::ember1();
        let out = s.eval(&EvalRequest::new(w, base.clone()).with_ise(32.0));
        let run = out.result.expect("ISE eval runs");
        let report = run.ise.expect("ISE report present");
        assert!(!report.selected.is_empty());
        assert!(run.machine.custom_ops.len() > base.custom_ops.len());
    }

    #[test]
    fn empty_batch_is_empty() {
        let s = Session::builder().build();
        assert!(s.eval_batch(&[]).is_empty());
    }
}
