//! [`Codec`] implementations for the session-level request/response types:
//! [`EvalRequest`], [`EvalOutcome`] (with its full [`ToolchainError`]
//! payloads) and the [`CacheStats`] family.
//!
//! These are the currency of the evaluation service (`asip_serve`): a
//! request travels to a worker process as bytes, the outcome travels back,
//! and a decoded outcome must compare equal to the locally computed one —
//! the shard executor's byte-identity guarantee rests on every impl here
//! being a lossless roundtrip. Conventions follow [`asip_isa::codec`]:
//! little-endian scalars, u32-prefixed collections, u8 enum tags that are
//! **never renumbered**, `f64` as exact IEEE-754 bits.

use crate::cache::{CacheStats, StageStats, TierStats};
use crate::ise::{IseReport, SelectedOp};
use crate::pipeline::{ToolchainError, WorkloadRun};
use crate::session::{EvalOptions, EvalOutcome, EvalRequest, EvalRun};
use asip_isa::codec::{Codec, CodecError, Reader, Writer};

impl Codec for EvalOptions {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.ise_budget);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EvalOptions {
            ise_budget: r.get_f64()?,
        })
    }
}

impl Codec for EvalRequest {
    fn encode(&self, w: &mut Writer) {
        self.workload.encode(w);
        self.machine.encode(w);
        self.options.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EvalRequest {
            workload: Codec::decode(r)?,
            machine: Codec::decode(r)?,
            options: Codec::decode(r)?,
        })
    }
}

/// Stable wire tags: 0 = `Frontend`, 1 = `Backend`, 2 = `Sim`,
/// 3 = `Profile`, 4 = `WrongOutput`. Never renumber.
impl Codec for ToolchainError {
    fn encode(&self, w: &mut Writer) {
        match self {
            ToolchainError::Frontend(e) => {
                w.put_u8(0);
                e.encode(w);
            }
            ToolchainError::Backend(e) => {
                w.put_u8(1);
                e.encode(w);
            }
            ToolchainError::Sim(e) => {
                w.put_u8(2);
                e.encode(w);
            }
            ToolchainError::Profile(e) => {
                w.put_u8(3);
                e.encode(w);
            }
            ToolchainError::WrongOutput {
                workload,
                machine,
                expected,
                actual,
            } => {
                w.put_u8(4);
                w.put_str(workload);
                w.put_str(machine);
                expected.encode(w);
                actual.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => ToolchainError::Frontend(Codec::decode(r)?),
            1 => ToolchainError::Backend(Codec::decode(r)?),
            2 => ToolchainError::Sim(Codec::decode(r)?),
            3 => ToolchainError::Profile(Codec::decode(r)?),
            4 => ToolchainError::WrongOutput {
                workload: r.get_str()?,
                machine: r.get_str()?,
                expected: Vec::decode(r)?,
                actual: Vec::decode(r)?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    what: "ToolchainError",
                    tag: tag.into(),
                })
            }
        })
    }
}

impl Codec for WorkloadRun {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.workload);
        w.put_str(&self.machine);
        self.sim.encode(w);
        self.compile.encode(w);
        w.put_u32(self.code_bytes);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WorkloadRun {
            workload: r.get_str()?,
            machine: r.get_str()?,
            sim: Codec::decode(r)?,
            compile: Codec::decode(r)?,
            code_bytes: r.get_u32()?,
        })
    }
}

impl Codec for SelectedOp {
    fn encode(&self, w: &mut Writer) {
        self.def.encode(w);
        w.put_f64(self.est_saved_cycles);
        w.put_u64(self.instances as u64);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SelectedOp {
            def: Codec::decode(r)?,
            est_saved_cycles: r.get_f64()?,
            instances: r.get_u64()? as usize,
        })
    }
}

impl Codec for IseReport {
    fn encode(&self, w: &mut Writer) {
        self.selected.encode(w);
        w.put_u64(self.candidates_considered as u64);
        w.put_f64(self.area_used);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(IseReport {
            selected: Vec::decode(r)?,
            candidates_considered: r.get_u64()? as usize,
            area_used: r.get_f64()?,
        })
    }
}

impl Codec for EvalRun {
    fn encode(&self, w: &mut Writer) {
        self.run.encode(w);
        self.machine.encode(w);
        self.ise.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EvalRun {
            run: Codec::decode(r)?,
            machine: Codec::decode(r)?,
            ise: Option::decode(r)?,
        })
    }
}

/// The `result` field uses tag 0 = `Ok`, 1 = `Err`. Never renumber.
impl Codec for EvalOutcome {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.workload);
        w.put_str(&self.machine);
        match &self.result {
            Ok(run) => {
                w.put_u8(0);
                run.encode(w);
            }
            Err(e) => {
                w.put_u8(1);
                e.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let workload = r.get_str()?;
        let machine = r.get_str()?;
        let result = match r.get_u8()? {
            0 => Ok(EvalRun::decode(r)?),
            1 => Err(ToolchainError::decode(r)?),
            tag => {
                return Err(CodecError::BadTag {
                    what: "EvalOutcome",
                    tag: tag.into(),
                })
            }
        };
        Ok(EvalOutcome {
            workload,
            machine,
            result,
        })
    }
}

impl Codec for StageStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.hits);
        w.put_u64(self.misses);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(StageStats {
            hits: r.get_u64()?,
            misses: r.get_u64()?,
        })
    }
}

impl Codec for TierStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.hits);
        w.put_u64(self.loads);
        w.put_u64(self.stores);
        w.put_u64(self.stale_drops);
        w.put_u64(self.evictions);
        w.put_u64(self.tmp_reclaimed);
        w.put_u64(self.resident_bytes);
        w.put_u64(self.entries);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TierStats {
            hits: r.get_u64()?,
            loads: r.get_u64()?,
            stores: r.get_u64()?,
            stale_drops: r.get_u64()?,
            evictions: r.get_u64()?,
            tmp_reclaimed: r.get_u64()?,
            resident_bytes: r.get_u64()?,
            entries: r.get_u64()?,
        })
    }
}

impl Codec for CacheStats {
    fn encode(&self, w: &mut Writer) {
        self.parse.encode(w);
        self.optimize.encode(w);
        self.profile.encode(w);
        self.compile.encode(w);
        self.simulate.encode(w);
        self.decode.encode(w);
        w.put_u64(self.evictions);
        w.put_u64(self.resident_bytes);
        self.mem.encode(w);
        self.disk.encode(w);
        w.put_bool(self.has_disk);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CacheStats {
            parse: Codec::decode(r)?,
            optimize: Codec::decode(r)?,
            profile: Codec::decode(r)?,
            compile: Codec::decode(r)?,
            simulate: Codec::decode(r)?,
            decode: Codec::decode(r)?,
            evictions: r.get_u64()?,
            resident_bytes: r.get_u64()?,
            mem: Codec::decode(r)?,
            disk: Codec::decode(r)?,
            has_disk: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_isa::MachineDescription;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.encode_to_vec();
        let back = T::decode_all(&bytes).expect("decode");
        assert_eq!(*v, back);
        assert_eq!(bytes, back.encode_to_vec(), "re-encode must be stable");
    }

    #[test]
    fn requests_roundtrip() {
        let fir = asip_workloads::by_name("fir").unwrap();
        roundtrip(&EvalRequest::new(fir.clone(), MachineDescription::ember4()));
        roundtrip(&EvalRequest::new(fir, MachineDescription::scalar2()).with_ise(24.0));
    }

    #[test]
    fn toolchain_errors_roundtrip() {
        let errs = vec![
            ToolchainError::Frontend(asip_tinyc::CompileError {
                line: 3,
                message: "bad token".into(),
            }),
            ToolchainError::Sim(asip_sim::SimError::MemFault { pc: 7, addr: -4 }),
            ToolchainError::Sim(asip_sim::SimError::CycleLimit),
            ToolchainError::Profile(asip_ir::InterpError::OutOfBounds(-1)),
            ToolchainError::WrongOutput {
                workload: "fir".into(),
                machine: "ember1".into(),
                expected: vec![1, 2],
                actual: vec![1, 3],
            },
        ];
        roundtrip(&errs);
        assert!(matches!(
            ToolchainError::decode_all(&[9]),
            Err(CodecError::BadTag {
                what: "ToolchainError",
                ..
            })
        ));
    }

    #[test]
    fn real_outcomes_roundtrip_ok_and_err() {
        let s = crate::session::Session::builder().threads(1).build();
        let w = asip_workloads::by_name("fir").unwrap();
        let ok = s.eval(&EvalRequest::new(w.clone(), MachineDescription::ember2()).with_ise(16.0));
        assert!(ok.is_ok());
        roundtrip(&ok);
        let mut sabotaged = w;
        sabotaged.expected = vec![-1];
        let err = s.eval(&EvalRequest::new(sabotaged, MachineDescription::ember1()));
        assert!(!err.is_ok());
        roundtrip(&err);
    }

    #[test]
    fn cache_stats_roundtrip() {
        roundtrip(&CacheStats::default());
        let s = crate::session::Session::builder().threads(1).build();
        let w = asip_workloads::by_name("crc32").unwrap();
        s.eval(&EvalRequest::new(w, MachineDescription::ember1()));
        let stats = s.cache_stats();
        assert!(stats.misses() > 0);
        roundtrip(&stats);
    }
}
