//! The N×M validation grid — §3.1's testing discipline, literally:
//! *"Testing methodology uses architectures as if they were test programs
//! (thus N×M tests)."*
//!
//! Every machine in the family is crossed with every workload; each cell
//! compiles, simulates and checks the golden output. A single failing cell
//! fails the whole grid, which is what keeps "mass customization"
//! trustworthy.
//!
//! The grid is a thin layer over [`Session::eval_batch`]: cells execute in
//! parallel on the session's worker pool, share the session's
//! [`ArtifactCache`](crate::cache::ArtifactCache) (each workload's
//! parse/optimize/profile half runs once no matter how many machines cross
//! it), and report through the typed
//! [`ToolchainError`](crate::pipeline::ToolchainError).

use crate::session::{EvalRequest, Session};
use asip_isa::MachineDescription;
use asip_workloads::Workload;
use std::collections::HashMap;
use std::fmt;

/// One cell of the grid.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Machine name.
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// `Ok(cycles)` or the typed failure.
    pub outcome: Result<u64, crate::pipeline::ToolchainError>,
}

/// The completed grid.
///
/// Cells are stored row-major (machine-major) and indexed by name maps, so
/// [`Grid::cell`] and [`Grid::cycles`] are O(1). Grids are assembled
/// through [`Grid::from_cells`] (which builds the index); cell outcomes may
/// be mutated in place, but the machine/workload layout is fixed at
/// construction.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Machine names (rows).
    pub machines: Vec<String>,
    /// Workload names (columns).
    pub workloads: Vec<String>,
    /// All cells, row-major.
    pub cells: Vec<Cell>,
    /// Number of worker threads the run used.
    pub parallelism: usize,
    machine_index: HashMap<String, usize>,
    workload_index: HashMap<String, usize>,
}

impl Grid {
    /// Assemble a grid from row-major `cells`, building the O(1) name
    /// index. `cells.len()` must be `machines.len() × workloads.len()`.
    pub fn from_cells(
        machines: Vec<String>,
        workloads: Vec<String>,
        cells: Vec<Cell>,
        parallelism: usize,
    ) -> Grid {
        assert_eq!(
            cells.len(),
            machines.len() * workloads.len(),
            "grid cells must be a full row-major cross product"
        );
        let machine_index = machines
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), i))
            .collect();
        let workload_index = workloads
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        Grid {
            machines,
            workloads,
            cells,
            parallelism,
            machine_index,
            workload_index,
        }
    }

    /// Whether every cell passed.
    pub fn all_pass(&self) -> bool {
        self.cells.iter().all(|c| c.outcome.is_ok())
    }

    /// Number of failing cells.
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_err()).count()
    }

    /// The full outcome for a (machine, workload) pair, in O(1).
    pub fn cell(&self, machine: &str, workload: &str) -> Option<&Cell> {
        let row = *self.machine_index.get(machine)?;
        let col = *self.workload_index.get(workload)?;
        self.cells.get(row * self.workloads.len() + col)
    }

    /// Cycles for a (machine, workload) pair, if it passed. O(1).
    pub fn cycles(&self, machine: &str, workload: &str) -> Option<u64> {
        self.cell(machine, workload)
            .and_then(|c| c.outcome.as_ref().ok().copied())
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<14}", "machine\\app")?;
        for w in &self.workloads {
            write!(f, "{w:>10}")?;
        }
        writeln!(f)?;
        for m in &self.machines {
            write!(f, "{m:<14}")?;
            for w in &self.workloads {
                match self.cell(m, w).map(|c| &c.outcome) {
                    Some(Ok(cycles)) => write!(f, "{cycles:>10}")?,
                    Some(Err(_)) => write!(f, "{:>10}", "FAIL")?,
                    None => write!(f, "{:>10}", "-")?,
                }
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "{} cells, {} failures",
            self.cells.len(),
            self.failures()
        )
    }
}

/// Default worker count (see [`crate::session::default_threads`]).
#[deprecated(note = "use asip_core::session::default_threads")]
pub fn default_parallelism() -> usize {
    crate::session::default_threads()
}

/// Run the full grid on the session's worker pool.
pub fn run_grid(
    session: &Session,
    machines: &[MachineDescription],
    workloads: &[Workload],
) -> Grid {
    let reqs = EvalRequest::grid(machines, workloads);
    let n = reqs.len();
    let outcomes = session.eval_batch(&reqs);
    let cells = outcomes
        .into_iter()
        .map(|o| Cell {
            machine: o.machine,
            workload: o.workload,
            outcome: o.result.map(|r| r.run.sim.cycles),
        })
        .collect();
    Grid::from_cells(
        machines.iter().map(|m| m.name.clone()).collect(),
        workloads.iter().map(|w| w.name.clone()).collect(),
        cells,
        session.threads().min(n).max(1),
    )
}

/// Run the full grid on `threads` workers (clamped to the cell count; `0`
/// behaves as `1`), sharing the session's cache.
pub fn run_grid_threaded(
    session: &Session,
    machines: &[MachineDescription],
    workloads: &[Workload],
    threads: usize,
) -> Grid {
    run_grid(&session.with_threads(threads), machines, workloads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ToolchainError;

    #[test]
    fn small_grid_passes() {
        let session = Session::builder().build();
        let machines = vec![MachineDescription::ember1(), MachineDescription::ember4()];
        let workloads: Vec<Workload> = ["crc32", "sobel"]
            .iter()
            .map(|n| asip_workloads::by_name(n).unwrap())
            .collect();
        let grid = run_grid(&session, &machines, &workloads);
        assert!(grid.all_pass(), "\n{grid}");
        assert_eq!(grid.cells.len(), 4);
        // Wider machine at least as fast on every kernel.
        for w in &grid.workloads {
            let c1 = grid.cycles("ember1", w).unwrap();
            let c4 = grid.cycles("ember4", w).unwrap();
            assert!(c4 <= c1, "{w}: ember4 {c4} vs ember1 {c1}");
        }
        // The O(1) index agrees with the row-major layout.
        let cell = grid.cell("ember4", "sobel").unwrap();
        assert_eq!(cell.machine, "ember4");
        assert_eq!(cell.workload, "sobel");
        assert!(grid.cell("nope", "sobel").is_none());
        assert!(grid.cell("ember4", "nope").is_none());
    }

    #[test]
    fn scalar_machines_are_first_class_grid_rows() {
        let session = Session::builder().build();
        let machines = vec![
            MachineDescription::scalar1(),
            MachineDescription::scalar2(),
            MachineDescription::ember4(),
        ];
        let workloads: Vec<Workload> = ["crc32", "fir"]
            .iter()
            .map(|n| asip_workloads::by_name(n).unwrap())
            .collect();
        let grid = run_grid(&session, &machines, &workloads);
        assert!(grid.all_pass(), "\n{grid}");
        for w in &grid.workloads {
            let s1 = grid.cycles("scalar1", w).unwrap();
            let s2 = grid.cycles("scalar2", w).unwrap();
            assert!(s2 <= s1, "{w}: dual issue slower? {s2} vs {s1}");
        }
    }

    #[test]
    fn parallel_grid_matches_serial_grid() {
        let session = Session::builder().build();
        let machines = vec![
            MachineDescription::ember1(),
            MachineDescription::ember2(),
            MachineDescription::ember4(),
        ];
        let workloads: Vec<Workload> = ["fir", "crc32", "rle"]
            .iter()
            .map(|n| asip_workloads::by_name(n).unwrap())
            .collect();
        let serial = run_grid_threaded(&session.fresh_cache(), &machines, &workloads, 1);
        let parallel = run_grid_threaded(&session.fresh_cache(), &machines, &workloads, 4);
        assert_eq!(serial.parallelism, 1);
        assert_eq!(parallel.parallelism, 4);
        assert!(serial.all_pass() && parallel.all_pass());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.outcome, b.outcome, "{}/{}", a.machine, a.workload);
        }
    }

    #[test]
    fn grid_shares_front_half_across_machines() {
        let session = Session::builder().build().fresh_cache();
        let machines = vec![
            MachineDescription::ember1(),
            MachineDescription::ember2(),
            MachineDescription::ember4(),
        ];
        let workloads = vec![asip_workloads::by_name("median").unwrap()];
        // Serial first pass for deterministic counters.
        let grid = run_grid_threaded(&session, &machines, &workloads, 1);
        assert!(grid.all_pass(), "\n{grid}");
        let stats = session.cache_stats();
        // One workload, three machines: parse/optimize/profile computed for
        // the first cell only; the other two cells reuse the front half.
        assert_eq!(stats.optimize.misses, 1, "{stats}");
        assert_eq!(stats.optimize.hits, 2, "{stats}");
        assert_eq!(stats.profile.misses, 1, "{stats}");
        assert_eq!(stats.profile.hits, 2, "{stats}");
        assert_eq!(stats.compile.misses, 3, "{stats}");
        assert_eq!(stats.compile.hits, 0, "{stats}");
        // Re-running the identical grid in parallel is all cache hits —
        // no stage recomputes, only simulation runs.
        let again = run_grid(&session, &machines, &workloads);
        assert!(again.all_pass());
        let warm = session.cache_stats();
        assert_eq!(warm.misses(), stats.misses(), "no new work on re-run");
        assert_eq!(warm.compile.hits, 3, "{warm}");
    }

    #[test]
    fn display_marks_failures() {
        let fail = Cell {
            machine: "m".into(),
            workload: "w".into(),
            outcome: Err(ToolchainError::Sim(asip_sim::SimError::CycleLimit)),
        };
        let mut grid = Grid::from_cells(vec!["m".into()], vec!["w".into()], vec![fail], 1);
        assert!(!grid.all_pass());
        let s = grid.to_string();
        assert!(s.contains("FAIL"));
        grid.cells[0].outcome = Ok(123);
        assert!(grid.to_string().contains("123"));
    }
}
