//! The N×M validation grid — §3.1's testing discipline, literally:
//! *"Testing methodology uses architectures as if they were test programs
//! (thus N×M tests)."*
//!
//! Every machine in the family is crossed with every workload; each cell
//! compiles, simulates and checks the golden output. A single failing cell
//! fails the whole grid, which is what keeps "mass customization"
//! trustworthy.
//!
//! Cells execute **in parallel** on scoped worker threads
//! ([`run_grid_threaded`]); because every worker shares the toolchain's
//! [`ArtifactCache`](crate::pipeline::ArtifactCache), each workload's
//! parse/optimize/profile half runs once no matter how many machines cross
//! it, and each (machine, workload) compile runs once no matter how often
//! the grid is re-run.

use crate::pipeline::Toolchain;
use asip_isa::MachineDescription;
use asip_workloads::Workload;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One cell of the grid.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Machine name.
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// `Ok(cycles)` or the failure description.
    pub outcome: Result<u64, String>,
}

/// The completed grid.
#[derive(Debug, Clone, Default)]
pub struct Grid {
    /// Machine names (rows).
    pub machines: Vec<String>,
    /// Workload names (columns).
    pub workloads: Vec<String>,
    /// All cells, row-major.
    pub cells: Vec<Cell>,
    /// Number of worker threads the run used.
    pub parallelism: usize,
}

impl Grid {
    /// Whether every cell passed.
    pub fn all_pass(&self) -> bool {
        self.cells.iter().all(|c| c.outcome.is_ok())
    }

    /// Number of failing cells.
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_err()).count()
    }

    /// Cycles for a (machine, workload) pair, if it passed.
    pub fn cycles(&self, machine: &str, workload: &str) -> Option<u64> {
        self.cells
            .iter()
            .find(|c| c.machine == machine && c.workload == workload)
            .and_then(|c| c.outcome.as_ref().ok().copied())
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<14}", "machine\\app")?;
        for w in &self.workloads {
            write!(f, "{w:>10}")?;
        }
        writeln!(f)?;
        for m in &self.machines {
            write!(f, "{m:<14}")?;
            for w in &self.workloads {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| &c.machine == m && &c.workload == w);
                match cell.map(|c| &c.outcome) {
                    Some(Ok(cycles)) => write!(f, "{cycles:>10}")?,
                    Some(Err(_)) => write!(f, "{:>10}", "FAIL")?,
                    None => write!(f, "{:>10}", "-")?,
                }
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "{} cells, {} failures",
            self.cells.len(),
            self.failures()
        )
    }
}

/// Default worker count: the `ASIP_GRID_THREADS` environment variable if
/// set (and a positive integer), else one per available hardware thread.
pub fn default_parallelism() -> usize {
    if let Some(n) = std::env::var("ASIP_GRID_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run the full grid with [`default_parallelism`] workers.
pub fn run_grid(tc: &Toolchain, machines: &[MachineDescription], workloads: &[Workload]) -> Grid {
    run_grid_threaded(tc, machines, workloads, default_parallelism())
}

/// Run the full grid on `threads` scoped worker threads (clamped to the
/// cell count; `0` behaves as `1`). Workers pull cells from a shared
/// cursor, so long rows never leave threads idle, and the row-major cell
/// order of the result is deterministic regardless of scheduling.
pub fn run_grid_threaded(
    tc: &Toolchain,
    machines: &[MachineDescription],
    workloads: &[Workload],
    threads: usize,
) -> Grid {
    let n = machines.len() * workloads.len();
    let threads = threads.max(1).min(n.max(1));
    let slots: Mutex<Vec<Option<Cell>>> = Mutex::new(vec![None; n]);
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let m = &machines[i / workloads.len()];
                let w = &workloads[i % workloads.len()];
                let outcome = tc
                    .run_workload(w, m)
                    .map(|r| r.sim.cycles)
                    .map_err(|e| e.to_string());
                let cell = Cell {
                    machine: m.name.clone(),
                    workload: w.name.clone(),
                    outcome,
                };
                slots.lock().unwrap()[i] = Some(cell);
            });
        }
    });

    Grid {
        machines: machines.iter().map(|m| m.name.clone()).collect(),
        workloads: workloads.iter().map(|w| w.name.clone()).collect(),
        cells: slots
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|c| c.expect("every grid cell is filled by a worker"))
            .collect(),
        parallelism: threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_passes() {
        let tc = Toolchain::default();
        let machines = vec![MachineDescription::ember1(), MachineDescription::ember4()];
        let workloads: Vec<Workload> = ["crc32", "sobel"]
            .iter()
            .map(|n| asip_workloads::by_name(n).unwrap())
            .collect();
        let grid = run_grid(&tc, &machines, &workloads);
        assert!(grid.all_pass(), "\n{grid}");
        assert_eq!(grid.cells.len(), 4);
        // Wider machine at least as fast on every kernel.
        for w in &grid.workloads {
            let c1 = grid.cycles("ember1", w).unwrap();
            let c4 = grid.cycles("ember4", w).unwrap();
            assert!(c4 <= c1, "{w}: ember4 {c4} vs ember1 {c1}");
        }
    }

    #[test]
    fn parallel_grid_matches_serial_grid() {
        let tc = Toolchain::default();
        let machines = vec![
            MachineDescription::ember1(),
            MachineDescription::ember2(),
            MachineDescription::ember4(),
        ];
        let workloads: Vec<Workload> = ["fir", "crc32", "rle"]
            .iter()
            .map(|n| asip_workloads::by_name(n).unwrap())
            .collect();
        let serial = run_grid_threaded(&tc.fresh_cache(), &machines, &workloads, 1);
        let parallel = run_grid_threaded(&tc.fresh_cache(), &machines, &workloads, 4);
        assert_eq!(serial.parallelism, 1);
        assert_eq!(parallel.parallelism, 4);
        assert!(serial.all_pass() && parallel.all_pass());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.outcome, b.outcome, "{}/{}", a.machine, a.workload);
        }
    }

    #[test]
    fn grid_shares_front_half_across_machines() {
        let tc = Toolchain::default().fresh_cache();
        let machines = vec![
            MachineDescription::ember1(),
            MachineDescription::ember2(),
            MachineDescription::ember4(),
        ];
        let workloads = vec![asip_workloads::by_name("median").unwrap()];
        // Serial first pass for deterministic counters.
        let grid = run_grid_threaded(&tc, &machines, &workloads, 1);
        assert!(grid.all_pass(), "\n{grid}");
        let stats = tc.cache_stats();
        // One workload, three machines: parse/optimize/profile computed for
        // the first cell only; the other two cells reuse the front half.
        assert_eq!(stats.optimize.misses, 1, "{stats}");
        assert_eq!(stats.optimize.hits, 2, "{stats}");
        assert_eq!(stats.profile.misses, 1, "{stats}");
        assert_eq!(stats.profile.hits, 2, "{stats}");
        assert_eq!(stats.compile.misses, 3, "{stats}");
        assert_eq!(stats.compile.hits, 0, "{stats}");
        // Re-running the identical grid in parallel is all cache hits —
        // no stage recomputes, only simulation runs.
        let again = run_grid(&tc, &machines, &workloads);
        assert!(again.all_pass());
        let warm = tc.cache_stats();
        assert_eq!(warm.misses(), stats.misses(), "no new work on re-run");
        assert_eq!(warm.compile.hits, 3, "{warm}");
    }

    #[test]
    fn display_marks_failures() {
        let mut grid = Grid {
            machines: vec!["m".into()],
            workloads: vec!["w".into()],
            cells: vec![Cell {
                machine: "m".into(),
                workload: "w".into(),
                outcome: Err("boom".into()),
            }],
            parallelism: 1,
        };
        assert!(!grid.all_pass());
        let s = grid.to_string();
        assert!(s.contains("FAIL"));
        grid.cells[0].outcome = Ok(123);
        assert!(grid.to_string().contains("123"));
    }
}
