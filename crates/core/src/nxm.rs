//! The N×M validation grid — §3.1's testing discipline, literally:
//! *"Testing methodology uses architectures as if they were test programs
//! (thus N×M tests)."*
//!
//! Every machine in the family is crossed with every workload; each cell
//! compiles, simulates and checks the golden output. A single failing cell
//! fails the whole grid, which is what keeps "mass customization"
//! trustworthy.

use crate::pipeline::Toolchain;
use asip_isa::MachineDescription;
use asip_workloads::Workload;
use std::fmt;

/// One cell of the grid.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Machine name.
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// `Ok(cycles)` or the failure description.
    pub outcome: Result<u64, String>,
}

/// The completed grid.
#[derive(Debug, Clone, Default)]
pub struct Grid {
    /// Machine names (rows).
    pub machines: Vec<String>,
    /// Workload names (columns).
    pub workloads: Vec<String>,
    /// All cells, row-major.
    pub cells: Vec<Cell>,
}

impl Grid {
    /// Whether every cell passed.
    pub fn all_pass(&self) -> bool {
        self.cells.iter().all(|c| c.outcome.is_ok())
    }

    /// Number of failing cells.
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_err()).count()
    }

    /// Cycles for a (machine, workload) pair, if it passed.
    pub fn cycles(&self, machine: &str, workload: &str) -> Option<u64> {
        self.cells
            .iter()
            .find(|c| c.machine == machine && c.workload == workload)
            .and_then(|c| c.outcome.as_ref().ok().copied())
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<14}", "machine\\app")?;
        for w in &self.workloads {
            write!(f, "{w:>10}")?;
        }
        writeln!(f)?;
        for m in &self.machines {
            write!(f, "{m:<14}")?;
            for w in &self.workloads {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| &c.machine == m && &c.workload == w);
                match cell.map(|c| &c.outcome) {
                    Some(Ok(cycles)) => write!(f, "{cycles:>10}")?,
                    Some(Err(_)) => write!(f, "{:>10}", "FAIL")?,
                    None => write!(f, "{:>10}", "-")?,
                }
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "{} cells, {} failures",
            self.cells.len(),
            self.failures()
        )
    }
}

/// Run the full grid.
pub fn run_grid(
    tc: &Toolchain,
    machines: &[MachineDescription],
    workloads: &[Workload],
) -> Grid {
    let mut grid = Grid {
        machines: machines.iter().map(|m| m.name.clone()).collect(),
        workloads: workloads.iter().map(|w| w.name.clone()).collect(),
        cells: Vec::with_capacity(machines.len() * workloads.len()),
    };
    for m in machines {
        for w in workloads {
            let outcome = tc
                .run_workload(w, m)
                .map(|r| r.sim.cycles)
                .map_err(|e| e.to_string());
            grid.cells.push(Cell {
                machine: m.name.clone(),
                workload: w.name.clone(),
                outcome,
            });
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_passes() {
        let tc = Toolchain::default();
        let machines = vec![MachineDescription::ember1(), MachineDescription::ember4()];
        let workloads: Vec<Workload> = ["crc32", "sobel"]
            .iter()
            .map(|n| asip_workloads::by_name(n).unwrap())
            .collect();
        let grid = run_grid(&tc, &machines, &workloads);
        assert!(grid.all_pass(), "\n{grid}");
        assert_eq!(grid.cells.len(), 4);
        // Wider machine at least as fast on every kernel.
        for w in &grid.workloads {
            let c1 = grid.cycles("ember1", w).unwrap();
            let c4 = grid.cycles("ember4", w).unwrap();
            assert!(c4 <= c1, "{w}: ember4 {c4} vs ember1 {c1}");
        }
    }

    #[test]
    fn display_marks_failures() {
        let mut grid = Grid {
            machines: vec!["m".into()],
            workloads: vec!["w".into()],
            cells: vec![Cell {
                machine: "m".into(),
                workload: "w".into(),
                outcome: Err("boom".into()),
            }],
        };
        assert!(!grid.all_pass());
        let s = grid.to_string();
        assert!(s.contains("FAIL"));
        grid.cells[0].outcome = Ok(123);
        assert!(grid.to_string().contains("123"));
    }
}
