//! Stage self-time accounting: the `stage.*.self_ns` histograms subtract
//! nested stage time (a compile miss that recursively optimizes must not
//! bill the optimizer's wall to both stages), so across one cold cell the
//! per-stage self times sum to at most — and in practice nearly all of —
//! the cell's wall time.

use asip_core::session::EvalRequest;
use asip_core::{ArtifactCache, Session, StageKind};
use asip_isa::MachineDescription;
use std::sync::Arc;
use std::time::Instant;

#[test]
fn stage_self_times_partition_cell_wall_time() {
    asip_obs::set_trace_path(None);
    asip_obs::reset();
    let s = Session::builder()
        .threads(1)
        .cache(Arc::new(ArtifactCache::new()))
        .build();
    let w = asip_workloads::by_name("crc32").unwrap();
    let req = EvalRequest::new(w, MachineDescription::ember4());
    let t0 = Instant::now();
    let out = s.eval(&req);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    assert!(out.is_ok(), "{:?}", out.result);

    let snap = asip_obs::snapshot();
    let mut self_sum_ns = 0u64;
    for stage in StageKind::ALL {
        let h = snap
            .histogram(&format!("stage.{}.self_ns", stage.name()))
            .unwrap_or_else(|| panic!("no self-time histogram for {}", stage.name()));
        assert!(h.count >= 1, "stage {} never ran", stage.name());
        self_sum_ns += h.sum_ns;
    }
    // No double counting: the selves are disjoint slices of the cell, so
    // their sum cannot exceed what the clock measured around eval()...
    assert!(
        self_sum_ns <= wall_ns,
        "stage self times ({self_sum_ns} ns) exceed cell wall time ({wall_ns} ns)"
    );
    // ...and no big blind spot either: a cold eval is almost entirely
    // stage work, so the selves account for the bulk of the wall.
    assert!(
        self_sum_ns * 2 >= wall_ns,
        "stage self times ({self_sum_ns} ns) cover under half the cell wall ({wall_ns} ns)"
    );

    // The per-cell histogram wraps exactly the stage work plus cheap glue:
    // one sample, between the stage sum and the outer wall.
    let cell = snap
        .histogram("cell.eval_ns")
        .expect("cell.eval_ns recorded");
    assert_eq!(cell.count, 1);
    assert!(cell.sum_ns >= self_sum_ns && cell.sum_ns <= wall_ns);
}
