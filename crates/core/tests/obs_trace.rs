//! Span recording end to end: an evaluated cell yields spans for all five
//! pipeline stages and both cache tiers, every per-thread stream is
//! well-nested, and the Chrome trace export is valid JSON.

use asip_core::session::EvalRequest;
use asip_core::{Session, StageKind};
use asip_isa::MachineDescription;
use asip_obs::SpanEvent;

/// A minimal JSON validator (objects, arrays, strings, numbers, literals):
/// enough to prove the hand-written Chrome exporter emits a syntactically
/// complete document without pulling in a JSON dependency.
fn check_json(s: &str) -> Result<(), String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.b.get(self.i) == Some(&c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", c as char, self.i))
            }
        }
        fn string(&mut self) -> Result<(), String> {
            self.eat(b'"')?;
            while let Some(&c) = self.b.get(self.i) {
                self.i += 1;
                match c {
                    b'"' => return Ok(()),
                    b'\\' => self.i += 1, // good enough: skip the escapee
                    _ => {}
                }
            }
            Err("unterminated string".into())
        }
        fn value(&mut self) -> Result<(), String> {
            self.ws();
            match self.b.get(self.i) {
                Some(b'{') => {
                    self.i += 1;
                    self.ws();
                    if self.b.get(self.i) == Some(&b'}') {
                        self.i += 1;
                        return Ok(());
                    }
                    loop {
                        self.ws();
                        self.string()?;
                        self.ws();
                        self.eat(b':')?;
                        self.value()?;
                        self.ws();
                        match self.b.get(self.i) {
                            Some(b',') => self.i += 1,
                            Some(b'}') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("bad object at byte {}", self.i)),
                        }
                    }
                }
                Some(b'[') => {
                    self.i += 1;
                    self.ws();
                    if self.b.get(self.i) == Some(&b']') {
                        self.i += 1;
                        return Ok(());
                    }
                    loop {
                        self.value()?;
                        self.ws();
                        match self.b.get(self.i) {
                            Some(b',') => self.i += 1,
                            Some(b']') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("bad array at byte {}", self.i)),
                        }
                    }
                }
                Some(b'"') => self.string(),
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    while matches!(
                        self.b.get(self.i),
                        Some(c) if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                    ) {
                        self.i += 1;
                    }
                    Ok(())
                }
                _ => {
                    for lit in ["true", "false", "null"] {
                        if self.b[self.i..].starts_with(lit.as_bytes()) {
                            self.i += lit.len();
                            return Ok(());
                        }
                    }
                    Err(format!("bad value at byte {}", self.i))
                }
            }
        }
    }
    let mut p = P {
        b: s.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.ws();
    if p.i == p.b.len() {
        Ok(())
    } else {
        Err(format!("trailing bytes at {}", p.i))
    }
}

/// Per-thread streams must be properly nested: any two spans on one
/// thread are either disjoint or one contains the other.
fn assert_well_nested(events: &[SpanEvent]) {
    // events() orders by (tid, start, longest-first), so a plain sweep
    // with a stack of open intervals suffices.
    let mut stack: Vec<(u32, u64, u64)> = Vec::new(); // (tid, start, end)
    for e in events {
        let end = e.start_ns + e.dur_ns;
        while let Some(&(tid, _, top_end)) = stack.last() {
            if tid != e.tid || top_end <= e.start_ns {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(tid, top_start, top_end)) = stack.last() {
            if tid == e.tid {
                assert!(
                    e.start_ns >= top_start && end <= top_end,
                    "span {}/{} [{}, {end}) straddles enclosing [{top_start}, {top_end}) on tid {tid}",
                    e.cat,
                    e.name,
                    e.start_ns,
                );
            }
        }
        stack.push((e.tid, e.start_ns, end));
    }
}

#[test]
fn trace_covers_stages_and_tiers_and_exports_valid_json() {
    let dir = std::env::temp_dir().join(format!("asip-obs-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trace_file = dir.join("trace.json");
    asip_obs::set_trace_path(Some(trace_file.clone()));
    asip_obs::reset();

    // Disk tier on, one worker (single-threaded streams are the
    // interesting nesting case: stage spans enclose tier spans).
    let s = Session::builder()
        .threads(1)
        .cache_dir(dir.join("cache"))
        .build();
    let w = asip_workloads::by_name("crc32").unwrap();
    let req = EvalRequest::new(w, MachineDescription::ember4());
    assert!(s.eval(&req).is_ok()); // cold: every stage misses, stores to both tiers
    assert!(s.eval(&req).is_ok()); // warm: memory hits

    let events = asip_obs::events();

    for stage in StageKind::ALL {
        assert!(
            events
                .iter()
                .any(|e| e.cat == "stage" && e.name == stage.name()),
            "no span for stage {}",
            stage.name()
        );
    }
    for tier in ["mem", "disk"] {
        assert!(
            events.iter().any(|e| e.cat == "cache" && e.name == tier),
            "no span for cache tier {tier}"
        );
    }
    assert!(events.iter().any(|e| e.cat == "stage" && e.note == "miss"));
    assert!(events.iter().any(|e| e.cat == "stage" && e.note == "hit"));
    assert!(events.iter().any(|e| e.cat == "cache" && e.note == "store"));
    assert!(events.iter().any(|e| e.cat == "cell" && e.name == "eval"));
    assert!(events
        .iter()
        .all(|e| !e.cat.is_empty() && !e.name.is_empty()));
    assert_well_nested(&events);

    let (path, count) = asip_obs::flush_trace()
        .expect("trace writes")
        .expect("trace path configured");
    assert_eq!(path, trace_file);
    assert_eq!(count, events.len());
    let json = std::fs::read_to_string(&trace_file).unwrap();
    check_json(&json).expect("exporter emits valid JSON");
    assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    assert!(json.contains("\"ph\":\"X\""));

    asip_obs::set_trace_path(None);
    asip_obs::clear_events();
    let _ = std::fs::remove_dir_all(&dir);
}
