//! The `ASIP_TRACE` knob follows the workspace convention: the
//! environment variable activates tracing for unmodified binaries, and
//! the builder knob (`SessionBuilder::trace`) wins over it.

use asip_core::Session;
use std::path::PathBuf;

#[test]
fn trace_knob_builder_wins_over_env() {
    let dir = std::env::temp_dir().join(format!("asip-session-env-{}", std::process::id()));
    let env_path = dir.join("env.json");
    let builder_path = dir.join("builder.json");

    // Environment alone: building a session turns recording on and the
    // effective path is the environment's.
    std::env::set_var(asip_obs::TRACE_ENV, &env_path);
    let _s = Session::builder().build();
    assert!(asip_obs::enabled(), "ASIP_TRACE enables span recording");
    assert_eq!(asip_obs::trace_path(), Some(env_path.clone()));

    // Builder knob beats the environment.
    let _s = Session::builder().trace(&builder_path).build();
    assert!(asip_obs::enabled());
    assert_eq!(asip_obs::trace_path(), Some(builder_path));

    // An explicit clear turns tracing off even with the variable set.
    asip_obs::set_trace_path(None);
    assert!(!asip_obs::enabled());
    assert_eq!(asip_obs::trace_path(), None::<PathBuf>);
    // A later env-driven build stays off: the explicit choice sticks.
    let _s = Session::builder().build();
    assert!(!asip_obs::enabled());

    std::env::remove_var(asip_obs::TRACE_ENV);
    asip_obs::clear_events();
}
