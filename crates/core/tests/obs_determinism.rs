//! The metrics plane is a deterministic function of the work performed:
//! the same grid of distinct cells through one worker and through eight
//! must produce identical counter values and histogram counts (only the
//! timing fields on histogram lines may differ).

use asip_core::session::EvalRequest;
use asip_core::{ArtifactCache, Session};
use asip_isa::MachineDescription;
use std::sync::Arc;

/// Strip the timing tail (`sum_ns=` onward) from histogram lines: what is
/// left — counter values and `count=` fields — is the deterministic part
/// of the exposition (see `Snapshot::exposition`).
fn masked(exposition: &str) -> String {
    exposition
        .lines()
        .map(|l| match l.find(" sum_ns=") {
            Some(idx) => &l[..idx],
            None => l,
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Evaluate `reqs` through a fresh memory-only session with `threads`
/// workers and return the masked exposition.
fn run(threads: usize, reqs: &[EvalRequest]) -> String {
    asip_obs::reset();
    let s = Session::builder()
        .threads(threads)
        .cache(Arc::new(ArtifactCache::new()))
        .build();
    for out in s.eval_batch(reqs) {
        assert!(
            out.is_ok(),
            "{}@{}: {:?}",
            out.workload,
            out.machine,
            out.result
        );
    }
    masked(&asip_obs::snapshot().exposition())
}

#[test]
fn metrics_are_identical_across_thread_counts() {
    // Spans off: this test is about the always-on metrics plane.
    asip_obs::set_trace_path(None);
    // Distinct workloads and machines per cell, so no two cells share a
    // stage key: every counter is then a per-cell sum independent of
    // scheduling (no coalescing, no leader/waiter races).
    let cells = [
        ("crc32", MachineDescription::ember1()),
        ("fir", MachineDescription::ember4()),
        ("rle", MachineDescription::ember2()),
        ("sobel", MachineDescription::ember8()),
    ];
    let reqs: Vec<EvalRequest> = cells
        .into_iter()
        .map(|(w, m)| EvalRequest::new(asip_workloads::by_name(w).unwrap(), m))
        .collect();

    let single = run(1, &reqs);
    let threaded = run(8, &reqs);
    assert_eq!(
        single, threaded,
        "masked exposition must not depend on worker count"
    );
    // Sanity: the exposition actually covers the instrumented planes.
    assert!(single.contains("counter cache.mem.loads"));
    assert!(single.contains("counter cache.mem.stores"));
    assert!(single.contains("hist cell.eval_ns count=4"));
    assert!(single.contains("hist stage.simulate.self_ns"));
}
