//! First-order hardware models: silicon area, cycle time and energy.
//!
//! These are the models that make customization *quantifiable*: every
//! experiment that trades performance against cost (§2.2's "in about the chip
//! area required for a RISC processor, we can build a 4-issue customized
//! VLIW", the clustering trade-off, the power argument of §1.2) evaluates a
//! machine description through this module. Constants are calibrated to a
//! late-1990s 0.25 µm process so the absolute numbers land in the range the
//! paper's audience would recognize; all conclusions drawn from them are
//! *relative*.

use crate::machine::MachineDescription;
use crate::op::FuKind;

/// Area in mm² of one functional unit of the given kind (0.25 µm process).
pub fn fu_area_mm2(kind: FuKind) -> f64 {
    match kind {
        FuKind::Alu => 0.35,
        FuKind::Mul => 1.60,
        FuKind::Mem => 0.80,
        FuKind::Branch => 0.30,
        FuKind::Custom => 0.10, // port/control overhead; datapaths add per-op
    }
}

/// Area in mm² per adder-equivalent of custom datapath.
pub const CUSTOM_AREA_PER_ADDER: f64 = 0.12;

/// Breakdown of a machine's silicon area, all in mm².
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Fixed core overhead: sequencer, fetch, SP/LR, bus interface.
    pub base: f64,
    /// Functional units across all clusters.
    pub fus: f64,
    /// Register files (grows with size × ports²).
    pub regfile: f64,
    /// Decode/dispersal logic per issue slot.
    pub decode: f64,
    /// Selected custom-operation datapaths.
    pub custom: f64,
    /// Instruction cache.
    pub icache: f64,
    /// Binary-compatibility control (rename/issue/reorder) — zero for an
    /// exposed VLIW, the paper's §2.2 point.
    pub compat: f64,
}

impl AreaBreakdown {
    /// Total area in mm².
    pub fn total(&self) -> f64 {
        self.base + self.fus + self.regfile + self.decode + self.custom + self.icache + self.compat
    }
}

/// Compute the area model for a machine description.
pub fn area(m: &MachineDescription) -> AreaBreakdown {
    let clusters = f64::from(m.clusters);
    let spc = m.slots_per_cluster() as f64;

    let mut fus = 0.0;
    for slot in &m.slots {
        for &k in slot.kinds() {
            fus += fu_area_mm2(k);
        }
    }
    fus *= clusters;

    // Ports: 2 reads + 1 write per slot in the cluster.
    let ports = 3.0 * spc;
    let regfile = clusters * (f64::from(m.regs_per_cluster) * ports * ports * 0.000_55 + 0.05);

    let decode = 0.15 * spc * clusters;

    let custom: f64 = m
        .custom_ops
        .iter()
        .map(|c| c.area * CUSTOM_AREA_PER_ADDER)
        .sum();

    let icache = m
        .icache
        .map(|c| f64::from(c.size_bytes) / 1024.0 * 0.08 + f64::from(c.ways) * 0.02)
        .unwrap_or(0.0);

    let width = spc * clusters;
    // Rename tables, wakeup/select and a reorder buffer were roughly half
    // the core of a late-90s compatible superscalar; grows quadratically
    // with issue width.
    let compat = if m.compat_control {
        1.5 + 1.0 * width * width
    } else {
        0.0
    };

    AreaBreakdown {
        base: 1.0,
        fus,
        regfile,
        decode,
        custom,
        icache,
        compat,
    }
}

/// Cycle-time model in nanoseconds: the clock is set by the slowest of the
/// ALU path, the register-file read, the bypass network and (if present)
/// the compatibility-control pipe stage.
///
/// Clustering shortens the register-file and bypass paths — this is how the
/// model captures §2.2's "critical paths in the hardware are far shorter,
/// the cycle time faster".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleTime {
    /// ALU compute path, ns.
    pub alu_path: f64,
    /// Register file read path, ns.
    pub regfile_path: f64,
    /// Full-bypass network path, ns.
    pub bypass_path: f64,
    /// Extra control depth for compatibility hardware, ns.
    pub compat_path: f64,
}

impl CycleTime {
    /// The clock period in ns.
    pub fn period_ns(&self) -> f64 {
        self.alu_path
            .max(self.regfile_path)
            .max(self.bypass_path)
            .max(self.compat_path)
    }

    /// Clock frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        1000.0 / self.period_ns()
    }
}

/// Compute the cycle-time model for a machine description.
pub fn cycle_time(m: &MachineDescription) -> CycleTime {
    let spc = m.slots_per_cluster() as f64;
    let regs = f64::from(m.regs_per_cluster);
    let ports = 3.0 * spc;
    CycleTime {
        alu_path: 1.0,
        regfile_path: 0.45 + 0.08 * regs.log2().max(0.0) + 0.035 * ports,
        bypass_path: 0.20 + 0.04 * spc * spc,
        compat_path: if m.compat_control {
            1.0 + 0.12 * spc * spc
        } else {
            0.0
        },
    }
}

/// Dynamic activity counts produced by the simulator, consumed by the energy
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActivityCounts {
    /// Executed ALU-class operations.
    pub alu_ops: u64,
    /// Executed multiplier operations.
    pub mul_ops: u64,
    /// Executed divide/remainder operations.
    pub div_ops: u64,
    /// Executed loads and stores.
    pub mem_ops: u64,
    /// Executed branch-unit operations.
    pub branch_ops: u64,
    /// Executed inter-cluster copies.
    pub copy_ops: u64,
    /// Executed custom operations.
    pub custom_ops: u64,
    /// Custom-op energy weight: Σ area(op) over executions.
    pub custom_area_executed: u64,
    /// Bundles fetched.
    pub bundles: u64,
    /// Instruction bytes fetched (encoding-dependent).
    pub fetch_bytes: u64,
    /// Issue slots that were empty in fetched bundles.
    pub idle_slots: u64,
    /// Total cycles, including stalls.
    pub cycles: u64,
}

/// Energy report in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Functional-unit switching energy.
    pub compute_nj: f64,
    /// Instruction fetch/decode energy.
    pub fetch_nj: f64,
    /// Register-file access energy.
    pub regfile_nj: f64,
    /// Idle-slot clocking energy (zero when the machine gates idle slots).
    pub idle_nj: f64,
    /// Leakage over the run.
    pub leakage_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nJ.
    pub fn total_nj(&self) -> f64 {
        self.compute_nj + self.fetch_nj + self.regfile_nj + self.idle_nj + self.leakage_nj
    }
}

/// Per-operation energies, pJ (0.25 µm class).
mod pj {
    pub const ALU: f64 = 8.0;
    pub const MUL: f64 = 28.0;
    pub const DIV: f64 = 40.0;
    pub const MEM: f64 = 25.0;
    pub const BRANCH: f64 = 6.0;
    pub const COPY: f64 = 10.0;
    pub const CUSTOM_PER_ADDER: f64 = 2.0;
    pub const FETCH_PER_BYTE: f64 = 0.9;
    pub const FETCH_PER_BUNDLE: f64 = 4.0;
    pub const IDLE_SLOT: f64 = 2.0;
    pub const REG_ACCESS: f64 = 1.6;
}

/// Evaluate the energy model for a run.
pub fn energy(m: &MachineDescription, act: &ActivityCounts) -> EnergyBreakdown {
    let compute_pj = act.alu_ops as f64 * pj::ALU
        + act.mul_ops as f64 * pj::MUL
        + act.div_ops as f64 * pj::DIV
        + act.mem_ops as f64 * pj::MEM
        + act.branch_ops as f64 * pj::BRANCH
        + act.copy_ops as f64 * pj::COPY
        + act.custom_area_executed as f64 * pj::CUSTOM_PER_ADDER;

    let fetch_pj =
        act.bundles as f64 * pj::FETCH_PER_BUNDLE + act.fetch_bytes as f64 * pj::FETCH_PER_BYTE;

    let total_ops = act.alu_ops
        + act.mul_ops
        + act.div_ops
        + act.mem_ops
        + act.branch_ops
        + act.copy_ops
        + act.custom_ops;
    // ~2 reads + 1 write per op; port cost grows weakly with file size.
    let reg_pj = total_ops as f64
        * 3.0
        * (pj::REG_ACCESS * (1.0 + 0.02 * f64::from(m.regs_per_cluster).sqrt()));

    let idle_pj = if m.gate_idle_slots {
        0.0
    } else {
        act.idle_slots as f64 * pj::IDLE_SLOT
    };

    // Leakage: 0.04 mW per mm² → pJ = mW × ns.
    let period = cycle_time(m).period_ns();
    let leak_pj = area(m).total() * 0.04 * act.cycles as f64 * period;

    EnergyBreakdown {
        compute_nj: compute_pj / 1000.0,
        fetch_nj: fetch_pj / 1000.0,
        regfile_nj: reg_pj / 1000.0,
        idle_nj: idle_pj / 1000.0,
        leakage_nj: leak_pj / 1000.0,
    }
}

/// Convenience: wall-clock seconds for a run of `cycles` on machine `m`.
pub fn seconds(m: &MachineDescription, cycles: u64) -> f64 {
    cycles as f64 * cycle_time(m).period_ns() * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::custom::mac_op;

    #[test]
    fn vliw4_fits_in_risc_compat_area() {
        // The §2.2 claim: a 4-issue exposed VLIW is about the area of a
        // compatible (control-heavy) narrower machine.
        let vliw = area(&MachineDescription::ember4()).total();
        let compat = area(&MachineDescription::massmarket()).total();
        assert!(
            vliw <= compat * 1.15,
            "ember4 ({vliw:.2} mm²) should be within 15% of massmarket ({compat:.2} mm²)"
        );
    }

    #[test]
    fn area_grows_with_width() {
        let a1 = area(&MachineDescription::ember1()).total();
        let a4 = area(&MachineDescription::ember4()).total();
        let a8 = area(&MachineDescription::ember8()).total();
        assert!(a1 < a4 && a4 < a8);
    }

    #[test]
    fn clustering_reduces_regfile_area_and_cycle() {
        let unified = MachineDescription::ember4();
        let clustered = MachineDescription::ember4x2();
        assert!(
            area(&clustered).regfile < area(&unified).regfile,
            "2×(16 regs, 6 ports) must be smaller than 1×(32 regs, 12 ports)"
        );
        assert!(cycle_time(&clustered).period_ns() < cycle_time(&unified).period_ns());
    }

    #[test]
    fn compat_control_costs_area_and_cycle() {
        let mm = MachineDescription::massmarket();
        let stripped = mm.derive("stripped", |m| m.compat_control = false);
        assert!(area(&mm).compat > 1.0);
        assert!(area(&stripped).compat == 0.0);
        assert!(cycle_time(&mm).period_ns() > cycle_time(&stripped).period_ns());
    }

    #[test]
    fn custom_ops_add_area() {
        let base = MachineDescription::ember4();
        let with = base.derive("w", |m| m.custom_ops.push(mac_op()));
        assert!(area(&with).custom > area(&base).custom);
        assert!(area(&with).total() > area(&base).total());
    }

    #[test]
    fn energy_scales_with_activity() {
        let m = MachineDescription::ember4();
        let mut a = ActivityCounts {
            alu_ops: 1000,
            cycles: 500,
            bundles: 500,
            ..Default::default()
        };
        let e1 = energy(&m, &a).total_nj();
        a.alu_ops = 2000;
        let e2 = energy(&m, &a).total_nj();
        assert!(e2 > e1);
    }

    #[test]
    fn idle_gating_saves_energy() {
        let gated = MachineDescription::ember4();
        let ungated = gated.derive("u", |m| m.gate_idle_slots = false);
        let act = ActivityCounts {
            alu_ops: 100,
            bundles: 100,
            idle_slots: 300,
            cycles: 100,
            ..Default::default()
        };
        assert!(energy(&ungated, &act).total_nj() > energy(&gated, &act).total_nj());
    }

    #[test]
    fn freq_and_seconds_consistent() {
        let m = MachineDescription::ember1();
        let ct = cycle_time(&m);
        assert!(ct.freq_mhz() > 100.0 && ct.freq_mhz() < 2000.0);
        let s = seconds(&m, 1_000_000);
        assert!((s - 1e6 * ct.period_ns() * 1e-9).abs() < 1e-12);
    }
}
