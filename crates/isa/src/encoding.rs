//! Instruction encoding: code-size models and a concrete bitstream format.
//!
//! Two distinct concerns live here. The *size model* answers "how many bytes
//! does this program occupy in the ROM / I-cache" for each of the three
//! encoding schemes of [`Encoding`] — that drives the paper's "visible
//! instruction compression" experiment (§1.2) and the I-cache simulation.
//! The *bitstream codec* is a real, lossless serialization of machine
//! operations used by the binary-translation substrate (§2.2), so that "a
//! binary" in this repository is an actual word stream, not a Rust object.

use crate::code::{Bundle, MachineOp, VliwProgram};
use crate::machine::{Encoding, MachineDescription};
use crate::op::Opcode;
use crate::reg::{Operand, Reg};
use std::fmt;

// ---------------------------------------------------------------------------
// Size model
// ---------------------------------------------------------------------------

/// Whether an operation fits the 16-bit compact form of
/// [`Encoding::Compact16`]: at most two register operands from the first
/// eight registers of cluster 0, a single low-register destination, no
/// branch target, and any immediate in `-16..=15`.
pub fn compact_eligible(op: &MachineOp) -> bool {
    if op.opcode.has_target() || matches!(op.opcode, Opcode::Custom(_)) {
        return false;
    }
    if op.srcs.len() > 2 || op.dsts.len() > 1 {
        return false;
    }
    let low = |r: Reg| r.cluster == 0 && r.index < 8;
    if !op.dsts.iter().all(|&d| low(d)) {
        return false;
    }
    for s in &op.srcs {
        match s {
            Operand::Reg(r) => {
                if !low(*r) {
                    return false;
                }
            }
            Operand::Imm(v) => {
                if !(-16..=15).contains(v) {
                    return false;
                }
            }
        }
    }
    (-16..=15).contains(&op.imm)
}

/// Encoded size in bytes of one bundle under `enc` on machine `m`.
pub fn bundle_bytes(bundle: &Bundle, m: &MachineDescription, enc: Encoding) -> u32 {
    match enc {
        Encoding::Uncompressed => 4 * m.issue_width() as u32,
        Encoding::StopBit => 4 * bundle.occupancy().max(1) as u32,
        Encoding::Compact16 => {
            let mut bytes = 0u32;
            for (_, op) in bundle.ops() {
                bytes += if compact_eligible(op) { 2 } else { 4 };
            }
            // Empty bundles still need a syllable; odd totals pad to 32-bit
            // fetch alignment.
            bytes = bytes.max(2);
            (bytes + 3) & !3
        }
    }
}

/// Byte layout of a program in instruction memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeLayout {
    /// Byte address of each bundle, in program order.
    pub bundle_addr: Vec<u32>,
    /// Total code bytes.
    pub total_bytes: u32,
}

/// Compute the byte layout of `prog` under the machine's encoding.
pub fn layout(prog: &VliwProgram, m: &MachineDescription) -> CodeLayout {
    let mut addr = 0u32;
    let mut bundle_addr = Vec::with_capacity(prog.bundles.len());
    for b in &prog.bundles {
        bundle_addr.push(addr);
        addr += bundle_bytes(b, m, m.encoding);
    }
    CodeLayout {
        bundle_addr,
        total_bytes: addr,
    }
}

/// Code size in bytes of `prog` under a specific scheme (not necessarily the
/// machine's own), for side-by-side compression comparisons.
pub fn code_bytes(prog: &VliwProgram, m: &MachineDescription, enc: Encoding) -> u32 {
    prog.bundles.iter().map(|b| bundle_bytes(b, m, enc)).sum()
}

// ---------------------------------------------------------------------------
// Bitstream codec
// ---------------------------------------------------------------------------

/// Error decoding a bitstream back into machine operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The word stream ended in the middle of an operation.
    Truncated,
    /// Unknown opcode identifier.
    BadOpcode(u8),
    /// Field inconsistency (e.g. arity out of bounds).
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "bitstream truncated mid-operation"),
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode id {b:#x}"),
            DecodeError::Malformed(s) => write!(f, "malformed bitstream: {s}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Stable numeric id for each opcode (part of the binary format).
pub fn opcode_id(op: Opcode) -> u8 {
    use Opcode::*;
    match op {
        Add => 0,
        Sub => 1,
        And => 2,
        Or => 3,
        Xor => 4,
        Shl => 5,
        Shr => 6,
        Sra => 7,
        Min => 8,
        Max => 9,
        Abs => 10,
        Sxtb => 11,
        Sxth => 12,
        CmpEq => 13,
        CmpNe => 14,
        CmpLt => 15,
        CmpLe => 16,
        CmpGt => 17,
        CmpGe => 18,
        CmpLtu => 19,
        CmpGeu => 20,
        Select => 21,
        Mov => 22,
        Mul => 23,
        MulH => 24,
        Div => 25,
        Rem => 26,
        Ldw => 27,
        Stw => 28,
        Br => 29,
        BrT => 30,
        BrF => 31,
        Call => 32,
        Ret => 33,
        Halt => 34,
        MovFromSp => 35,
        AddSp => 36,
        MovFromLr => 37,
        MovToLr => 38,
        Emit => 39,
        CopyX => 40,
        Nop => 41,
        Custom(_) => 42,
    }
}

/// Inverse of [`opcode_id`]; custom ops recover their payload from the
/// encoded custom field.
pub fn opcode_from_id(id: u8, custom: u16) -> Result<Opcode, DecodeError> {
    use Opcode::*;
    Ok(match id {
        0 => Add,
        1 => Sub,
        2 => And,
        3 => Or,
        4 => Xor,
        5 => Shl,
        6 => Shr,
        7 => Sra,
        8 => Min,
        9 => Max,
        10 => Abs,
        11 => Sxtb,
        12 => Sxth,
        13 => CmpEq,
        14 => CmpNe,
        15 => CmpLt,
        16 => CmpLe,
        17 => CmpGt,
        18 => CmpGe,
        19 => CmpLtu,
        20 => CmpGeu,
        21 => Select,
        22 => Mov,
        23 => Mul,
        24 => MulH,
        25 => Div,
        26 => Rem,
        27 => Ldw,
        28 => Stw,
        29 => Br,
        30 => BrT,
        31 => BrF,
        32 => Call,
        33 => Ret,
        34 => Halt,
        35 => MovFromSp,
        36 => AddSp,
        37 => MovFromLr,
        38 => MovToLr,
        39 => Emit,
        40 => CopyX,
        41 => Nop,
        42 => Custom(custom),
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

fn pack_reg(r: Reg) -> u32 {
    (u32::from(r.cluster) << 16) | u32::from(r.index)
}

fn unpack_reg(w: u32) -> Reg {
    Reg {
        cluster: ((w >> 16) & 0xFF) as u8,
        index: (w & 0xFFFF) as u16,
    }
}

/// Serialize one machine operation to the word stream.
pub fn encode_op(op: &MachineOp, out: &mut Vec<u32>) {
    let custom = match op.opcode {
        Opcode::Custom(k) => k,
        _ => 0,
    };
    let w0 = u32::from(opcode_id(op.opcode))
        | ((op.dsts.len() as u32 & 0xF) << 8)
        | ((op.srcs.len() as u32 & 0xF) << 12)
        | (u32::from(custom) << 16);
    out.push(w0);
    out.push(op.imm as u32);
    out.push(op.target);
    let mut mask = 0u32;
    for (i, s) in op.srcs.iter().enumerate() {
        if matches!(s, Operand::Imm(_)) {
            mask |= 1 << i;
        }
    }
    out.push(mask);
    for &d in &op.dsts {
        out.push(pack_reg(d));
    }
    for &s in &op.srcs {
        match s {
            Operand::Reg(r) => out.push(pack_reg(r)),
            Operand::Imm(v) => out.push(v as u32),
        }
    }
}

/// Deserialize one operation starting at `pos`; returns the op and the new
/// position.
///
/// # Errors
///
/// [`DecodeError`] if the stream is truncated or structurally invalid.
pub fn decode_op(words: &[u32], pos: usize) -> Result<(MachineOp, usize), DecodeError> {
    let need = |p: usize| -> Result<u32, DecodeError> {
        words.get(p).copied().ok_or(DecodeError::Truncated)
    };
    let w0 = need(pos)?;
    let id = (w0 & 0xFF) as u8;
    let ndst = ((w0 >> 8) & 0xF) as usize;
    let nsrc = ((w0 >> 12) & 0xF) as usize;
    let custom = (w0 >> 16) as u16;
    if ndst > 2 || nsrc > 8 {
        return Err(DecodeError::Malformed("operand arity out of range"));
    }
    let opcode = opcode_from_id(id, custom)?;
    let imm = need(pos + 1)? as i32;
    let target = need(pos + 2)?;
    let mask = need(pos + 3)?;
    let mut p = pos + 4;
    let mut dsts = Vec::with_capacity(ndst);
    for _ in 0..ndst {
        dsts.push(unpack_reg(need(p)?));
        p += 1;
    }
    let mut srcs = Vec::with_capacity(nsrc);
    for i in 0..nsrc {
        let w = need(p)?;
        p += 1;
        if mask & (1 << i) != 0 {
            srcs.push(Operand::Imm(w as i32));
        } else {
            srcs.push(Operand::Reg(unpack_reg(w)));
        }
    }
    Ok((
        MachineOp {
            opcode,
            dsts,
            srcs,
            imm,
            target,
        },
        p,
    ))
}

/// Serialize a whole bundle: header word `(width | occupied-slot mask << 8)`
/// followed by each occupied slot's operation.
pub fn encode_bundle(b: &Bundle, out: &mut Vec<u32>) {
    let mut mask = 0u32;
    for (i, _) in b.ops() {
        mask |= 1 << i;
    }
    out.push((b.slots.len() as u32 & 0xFF) | (mask << 8));
    for (_, op) in b.ops() {
        encode_op(op, out);
    }
}

/// Deserialize a bundle; returns the bundle and the next position.
///
/// # Errors
///
/// [`DecodeError`] on truncation or malformed content.
pub fn decode_bundle(words: &[u32], pos: usize) -> Result<(Bundle, usize), DecodeError> {
    let hdr = words.get(pos).copied().ok_or(DecodeError::Truncated)?;
    let width = (hdr & 0xFF) as usize;
    let mask = hdr >> 8;
    if width > 24 {
        return Err(DecodeError::Malformed("bundle width out of range"));
    }
    let mut b = Bundle::empty(width);
    let mut p = pos + 1;
    for slot in 0..width {
        if mask & (1 << slot) != 0 {
            let (op, np) = decode_op(words, p)?;
            b.slots[slot] = Some(op);
            p = np;
        }
    }
    Ok((b, p))
}

/// Serialize a program's instruction stream (bundles only; the directories
/// travel in the [`VliwProgram`] container).
pub fn encode_text_section(prog: &VliwProgram) -> Vec<u32> {
    let mut out = Vec::new();
    out.push(prog.bundles.len() as u32);
    for b in &prog.bundles {
        encode_bundle(b, &mut out);
    }
    out
}

/// Deserialize an instruction stream produced by [`encode_text_section`].
///
/// # Errors
///
/// [`DecodeError`] on truncation or malformed content.
pub fn decode_text_section(words: &[u32]) -> Result<Vec<Bundle>, DecodeError> {
    let n = *words.first().ok_or(DecodeError::Truncated)? as usize;
    let mut bundles = Vec::with_capacity(n);
    let mut pos = 1;
    for _ in 0..n {
        let (b, np) = decode_bundle(words, pos)?;
        bundles.push(b);
        pos = np;
    }
    Ok(bundles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineDescription;

    fn sample_ops() -> Vec<MachineOp> {
        let mut ldw = MachineOp::new(
            Opcode::Ldw,
            vec![Reg::new(0, 3)],
            vec![Operand::Reg(Reg::new(0, 2))],
        );
        ldw.imm = -8;
        let mut br = MachineOp::new(Opcode::BrT, vec![], vec![Operand::Reg(Reg::new(1, 4))]);
        br.target = 17;
        vec![
            MachineOp::new(
                Opcode::Add,
                vec![Reg::new(0, 1)],
                vec![Operand::Reg(Reg::new(0, 2)), Operand::Imm(-5)],
            ),
            ldw,
            br,
            MachineOp::new(
                Opcode::Custom(7),
                vec![Reg::new(0, 1), Reg::new(0, 2)],
                vec![
                    Operand::Reg(Reg::new(0, 3)),
                    Operand::Imm(9),
                    Operand::Reg(Reg::new(0, 4)),
                ],
            ),
            MachineOp::nop(),
        ]
    }

    #[test]
    fn op_roundtrip() {
        for op in sample_ops() {
            let mut words = Vec::new();
            encode_op(&op, &mut words);
            let (back, used) = decode_op(&words, 0).unwrap();
            assert_eq!(back, op);
            assert_eq!(used, words.len());
        }
    }

    #[test]
    fn bundle_roundtrip_preserves_slots() {
        let mut b = Bundle::empty(4);
        let ops = sample_ops();
        b.slots[1] = Some(ops[0].clone());
        b.slots[3] = Some(ops[1].clone());
        let mut words = Vec::new();
        encode_bundle(&b, &mut words);
        let (back, used) = decode_bundle(&words, 0).unwrap();
        assert_eq!(back, b);
        assert_eq!(used, words.len());
    }

    #[test]
    fn text_section_roundtrip() {
        let mut b0 = Bundle::empty(2);
        b0.slots[0] = Some(sample_ops()[0].clone());
        let mut b1 = Bundle::empty(2);
        b1.slots[1] = Some(sample_ops()[2].clone());
        let prog = VliwProgram {
            bundles: vec![b0, b1, Bundle::empty(2)],
            ..Default::default()
        };
        let words = encode_text_section(&prog);
        let back = decode_text_section(&words).unwrap();
        assert_eq!(back, prog.bundles);
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut words = Vec::new();
        encode_op(&sample_ops()[3], &mut words);
        for cut in 0..words.len() {
            assert!(decode_op(&words[..cut], 0).is_err());
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let words = vec![0xFF, 0, 0, 0];
        assert_eq!(decode_op(&words, 0), Err(DecodeError::BadOpcode(0xFF)));
    }

    #[test]
    fn size_model_orders_schemes() {
        let m = MachineDescription::ember4();
        // A half-empty bundle.
        let mut b = Bundle::empty(4);
        b.slots[0] = Some(MachineOp::new(
            Opcode::Add,
            vec![Reg::new(0, 1)],
            vec![Operand::Reg(Reg::new(0, 2)), Operand::Imm(3)],
        ));
        b.slots[1] = Some(MachineOp::new(
            Opcode::Xor,
            vec![Reg::new(0, 2)],
            vec![Operand::Reg(Reg::new(0, 2)), Operand::Reg(Reg::new(0, 3))],
        ));
        let unc = bundle_bytes(&b, &m, Encoding::Uncompressed);
        let stop = bundle_bytes(&b, &m, Encoding::StopBit);
        let cmp = bundle_bytes(&b, &m, Encoding::Compact16);
        assert_eq!(unc, 16);
        assert_eq!(stop, 8);
        assert_eq!(cmp, 4, "two compact ops pack into one word");
        assert!(cmp <= stop && stop <= unc);
    }

    #[test]
    fn compact_eligibility_rules() {
        let ok = MachineOp::new(
            Opcode::Add,
            vec![Reg::new(0, 1)],
            vec![Operand::Reg(Reg::new(0, 2)), Operand::Imm(3)],
        );
        assert!(compact_eligible(&ok));
        let high_reg = MachineOp::new(
            Opcode::Add,
            vec![Reg::new(0, 9)],
            vec![Operand::Reg(Reg::new(0, 2)), Operand::Imm(3)],
        );
        assert!(!compact_eligible(&high_reg));
        let big_imm = MachineOp::new(
            Opcode::Add,
            vec![Reg::new(0, 1)],
            vec![Operand::Reg(Reg::new(0, 2)), Operand::Imm(300)],
        );
        assert!(!compact_eligible(&big_imm));
        let mut br = MachineOp::new(Opcode::Br, vec![], vec![]);
        br.target = 3;
        assert!(!compact_eligible(&br));
    }

    #[test]
    fn layout_addresses_are_monotone() {
        let m = MachineDescription::ember2();
        let mut b = Bundle::empty(2);
        b.slots[0] = Some(MachineOp::new(Opcode::Halt, vec![], vec![]));
        let prog = VliwProgram {
            bundles: vec![b.clone(), Bundle::empty(2), b],
            ..Default::default()
        };
        let l = layout(&prog, &m);
        assert_eq!(l.bundle_addr.len(), 3);
        assert!(l.bundle_addr.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(l.total_bytes, code_bytes(&prog, &m, m.encoding));
    }
}
