//! Physical register names and operands of the machine code.

use std::fmt;

/// A physical general-purpose register: cluster number plus index within the
/// cluster's register file.
///
/// Register `c0.r0` is hardwired to zero (reads return 0, writes are
/// discarded), the classic embedded-RISC convention; it doubles as the base
/// register for absolute addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg {
    /// Cluster the register belongs to.
    pub cluster: u8,
    /// Index within the cluster's register file.
    pub index: u16,
}

impl Reg {
    /// Construct a register name.
    pub fn new(cluster: u8, index: u16) -> Reg {
        Reg { cluster, index }
    }

    /// The hardwired-zero register `c0.r0`.
    pub const ZERO: Reg = Reg {
        cluster: 0,
        index: 0,
    };

    /// The return-value register of the calling convention, `c0.r1`.
    pub const RETVAL: Reg = Reg {
        cluster: 0,
        index: 1,
    };

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self == Reg::ZERO
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cluster == 0 {
            write!(f, "r{}", self.index)
        } else {
            write!(f, "c{}.r{}", self.cluster, self.index)
        }
    }
}

/// A source operand of a machine operation: a register or a 32-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a physical register.
    Reg(Reg),
    /// A literal value encoded in the instruction.
    Imm(i32),
}

impl Operand {
    /// The register read by this operand, if any.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate carried by this operand, if any.
    pub fn imm(self) -> Option<i32> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(v),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Reg::new(0, 3).to_string(), "r3");
        assert_eq!(Reg::new(2, 7).to_string(), "c2.r7");
        assert_eq!(Operand::from(Reg::ZERO).to_string(), "r0");
        assert_eq!(Operand::from(-4).to_string(), "#-4");
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1, 0).is_zero());
        assert!(!Reg::new(0, 1).is_zero());
    }

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::Reg(Reg::new(0, 5)).reg(), Some(Reg::new(0, 5)));
        assert_eq!(Operand::Reg(Reg::ZERO).imm(), None);
        assert_eq!(Operand::Imm(9).imm(), Some(9));
        assert_eq!(Operand::Imm(9).reg(), None);
    }
}
