//! Machine-code containers: operations, bundles and whole VLIW programs.

use crate::custom::CustomOpDef;
use crate::machine::MachineDescription;
use crate::op::Opcode;
use crate::reg::{Operand, Reg};
use std::fmt;

/// One machine operation occupying one issue slot.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineOp {
    /// Operation to perform.
    pub opcode: Opcode,
    /// Destination registers (0, 1, or 2 for dual-output custom ops).
    pub dsts: Vec<Reg>,
    /// Source operands.
    pub srcs: Vec<Operand>,
    /// Immediate field: memory offset for `Ldw`/`Stw`, SP adjustment for
    /// `AddSp`; unused otherwise.
    pub imm: i32,
    /// Branch/call target: bundle index for branches, function id for calls.
    pub target: u32,
}

impl MachineOp {
    /// A plain `opcode dst, srcs...` operation.
    pub fn new(opcode: Opcode, dsts: Vec<Reg>, srcs: Vec<Operand>) -> MachineOp {
        MachineOp {
            opcode,
            dsts,
            srcs,
            imm: 0,
            target: 0,
        }
    }

    /// A no-operation filler.
    pub fn nop() -> MachineOp {
        MachineOp::new(Opcode::Nop, vec![], vec![])
    }

    /// The single destination, if the op has exactly one.
    pub fn dst(&self) -> Option<Reg> {
        if self.dsts.len() == 1 {
            Some(self.dsts[0])
        } else {
            None
        }
    }

    /// Registers read by this operation.
    pub fn reads(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().filter_map(|s| s.reg())
    }

    /// Render with a resolver for branch-target display.
    fn fmt_with(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        for d in &self.dsts {
            sep(f)?;
            write!(f, "{d}")?;
        }
        for s in &self.srcs {
            sep(f)?;
            write!(f, "{s}")?;
        }
        if self.opcode.has_imm_field() {
            sep(f)?;
            write!(f, "[{}]", self.imm)?;
        }
        if self.opcode.has_target() {
            sep(f)?;
            write!(f, "@{}", self.target)?;
        }
        Ok(())
    }
}

impl fmt::Display for MachineOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with(f)
    }
}

/// One long instruction: `issue_width` slots, issued together in one cycle.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Bundle {
    /// Slot contents; `None` is an empty (NOP) slot. Slot `i` of cluster `c`
    /// lives at index `c * slots_per_cluster + i`.
    pub slots: Vec<Option<MachineOp>>,
}

impl Bundle {
    /// An empty bundle with `width` slots.
    pub fn empty(width: usize) -> Bundle {
        Bundle {
            slots: vec![None; width],
        }
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterate over occupied slots as `(slot_index, op)`.
    pub fn ops(&self) -> impl Iterator<Item = (usize, &MachineOp)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|op| (i, op)))
    }

    /// The control-transfer op in this bundle, if any.
    pub fn control_op(&self) -> Option<&MachineOp> {
        self.ops()
            .map(|(_, op)| op)
            .find(|op| op.opcode.is_control())
    }
}

/// A named function within a program.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSym {
    /// Source-level name.
    pub name: String,
    /// Bundle index of the entry point.
    pub entry: u32,
    /// Words of stack frame (locals + spills) the function allocates.
    pub frame_words: u32,
    /// Number of word-sized arguments.
    pub num_args: u32,
}

/// A global data object with its placement and initial contents.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalSym {
    /// Source-level name.
    pub name: String,
    /// Word address of the first element.
    pub addr: u32,
    /// Size in words.
    pub words: u32,
    /// Initial values (shorter than `words` means zero-fill).
    pub init: Vec<i32>,
}

/// A complete linked VLIW executable for one machine description.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VliwProgram {
    /// Name of the machine description this program was compiled for.
    pub machine: String,
    /// The instruction stream.
    pub bundles: Vec<Bundle>,
    /// Function directory (calls use indices into this table).
    pub functions: Vec<FuncSym>,
    /// Global data directory.
    pub globals: Vec<GlobalSym>,
    /// Custom operations referenced by `Opcode::Custom` ids in the code.
    pub custom_ops: Vec<CustomOpDef>,
    /// Index into `functions` of the entry function (`main`).
    pub entry_func: u32,
    /// Total words of static data (globals are below this watermark).
    pub data_words: u32,
}

/// Errors found by [`VliwProgram::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum CodeError {
    /// A bundle is wider than the machine's issue width.
    WidthMismatch {
        bundle: usize,
        got: usize,
        want: usize,
    },
    /// An op sits in a slot that cannot host its FU kind.
    BadSlot {
        bundle: usize,
        slot: usize,
        opcode: String,
    },
    /// An op names a register outside the machine's register file.
    BadReg { bundle: usize, reg: Reg },
    /// A branch targets a bundle outside the program.
    BadTarget { bundle: usize, target: u32 },
    /// A call targets a nonexistent function.
    BadCallee { bundle: usize, target: u32 },
    /// Two ops in one bundle write the same register.
    WriteConflict { bundle: usize, reg: Reg },
    /// More than one control op in a bundle.
    TwoBranches { bundle: usize },
    /// `Opcode::Custom` id with no matching definition.
    BadCustomId { bundle: usize, id: u16 },
    /// The entry function index is out of range.
    BadEntry,
    /// A function's entry points outside the instruction stream.
    BadFuncEntry { func: usize, entry: u32 },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::WidthMismatch { bundle, got, want } => {
                write!(f, "bundle {bundle}: width {got} != machine width {want}")
            }
            CodeError::BadSlot {
                bundle,
                slot,
                opcode,
            } => {
                write!(f, "bundle {bundle} slot {slot}: cannot host {opcode}")
            }
            CodeError::BadReg { bundle, reg } => {
                write!(
                    f,
                    "bundle {bundle}: register {reg} outside the machine file"
                )
            }
            CodeError::BadTarget { bundle, target } => {
                write!(f, "bundle {bundle}: branch to nonexistent bundle {target}")
            }
            CodeError::BadCallee { bundle, target } => {
                write!(f, "bundle {bundle}: call to nonexistent function {target}")
            }
            CodeError::WriteConflict { bundle, reg } => {
                write!(f, "bundle {bundle}: two writes to {reg}")
            }
            CodeError::TwoBranches { bundle } => {
                write!(f, "bundle {bundle}: more than one control operation")
            }
            CodeError::BadCustomId { bundle, id } => {
                write!(f, "bundle {bundle}: undefined custom op {id}")
            }
            CodeError::BadEntry => write!(f, "entry function index out of range"),
            CodeError::BadFuncEntry { func, entry } => {
                write!(f, "function {func}: entry @{entry} outside the program")
            }
        }
    }
}

impl std::error::Error for CodeError {}

impl VliwProgram {
    /// Number of bundles.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// Whether the program has no bundles.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// Total occupied slots (dynamic NOPs excluded).
    pub fn total_ops(&self) -> usize {
        self.bundles.iter().map(|b| b.occupancy()).sum()
    }

    /// Mean slot occupancy across all bundles (a compile-time ILP measure).
    pub fn mean_occupancy(&self) -> f64 {
        if self.bundles.is_empty() {
            return 0.0;
        }
        self.total_ops() as f64 / self.bundles.len() as f64
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&FuncSym> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalSym> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Statically verify the program against a machine description.
    ///
    /// This is the toolchain's final safety net: anything the scheduler or
    /// allocator got structurally wrong is caught here, before simulation.
    ///
    /// # Errors
    ///
    /// The first [`CodeError`] encountered.
    pub fn validate(&self, m: &MachineDescription) -> Result<(), CodeError> {
        let width = m.issue_width();
        let spc = m.slots_per_cluster();
        if self.entry_func as usize >= self.functions.len() {
            return Err(CodeError::BadEntry);
        }
        for (fi, func) in self.functions.iter().enumerate() {
            if func.entry as usize >= self.bundles.len() {
                return Err(CodeError::BadFuncEntry {
                    func: fi,
                    entry: func.entry,
                });
            }
        }
        for (bi, bundle) in self.bundles.iter().enumerate() {
            if bundle.slots.len() != width {
                return Err(CodeError::WidthMismatch {
                    bundle: bi,
                    got: bundle.slots.len(),
                    want: width,
                });
            }
            let mut writes: Vec<Reg> = Vec::new();
            let mut controls = 0usize;
            for (si, op) in bundle.ops() {
                let slot_in_cluster = si % spc;
                if !m.slots[slot_in_cluster].hosts(op.opcode.fu_kind()) {
                    return Err(CodeError::BadSlot {
                        bundle: bi,
                        slot: si,
                        opcode: op.opcode.to_string(),
                    });
                }
                if let Opcode::Custom(id) = op.opcode {
                    if self.custom_ops.get(id as usize).is_none() {
                        return Err(CodeError::BadCustomId { bundle: bi, id });
                    }
                }
                for r in op.reads().chain(op.dsts.iter().copied()) {
                    if r.cluster >= m.clusters || r.index >= m.regs_per_cluster {
                        return Err(CodeError::BadReg { bundle: bi, reg: r });
                    }
                }
                for &d in &op.dsts {
                    if !d.is_zero() && writes.contains(&d) {
                        return Err(CodeError::WriteConflict { bundle: bi, reg: d });
                    }
                    writes.push(d);
                }
                if op.opcode.is_control() {
                    controls += 1;
                    if controls > 1 {
                        return Err(CodeError::TwoBranches { bundle: bi });
                    }
                }
                match op.opcode {
                    Opcode::Br | Opcode::BrT | Opcode::BrF
                        if op.target as usize >= self.bundles.len() =>
                    {
                        return Err(CodeError::BadTarget {
                            bundle: bi,
                            target: op.target,
                        });
                    }
                    Opcode::Call if op.target as usize >= self.functions.len() => {
                        return Err(CodeError::BadCallee {
                            bundle: bi,
                            target: op.target,
                        });
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Produce a human-readable assembly listing.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (fi, func) in self.functions.iter().enumerate() {
            let _ = writeln!(
                s,
                "; fn {} (id {fi}) entry @{} frame {} args {}",
                func.name, func.entry, func.frame_words, func.num_args
            );
        }
        for (bi, b) in self.bundles.iter().enumerate() {
            if let Some(func) = self.functions.iter().find(|f| f.entry as usize == bi) {
                let _ = writeln!(s, "{}:", func.name);
            }
            let _ = write!(s, "{bi:5}: ");
            let mut first = true;
            for (si, op) in b.ops() {
                if !first {
                    let _ = write!(s, " || ");
                }
                first = false;
                let _ = write!(s, "[{si}] {op}");
            }
            if first {
                let _ = write!(s, "nop");
            }
            let _ = writeln!(s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineDescription;

    fn tiny_prog(m: &MachineDescription) -> VliwProgram {
        let w = m.issue_width();
        let mut b0 = Bundle::empty(w);
        b0.slots[0] = Some(MachineOp::new(
            Opcode::Add,
            vec![Reg::new(0, 1)],
            vec![Operand::Imm(2), Operand::Imm(3)],
        ));
        let mut b1 = Bundle::empty(w);
        b1.slots[0] = Some(MachineOp::new(Opcode::Halt, vec![], vec![]));
        VliwProgram {
            machine: m.name.clone(),
            bundles: vec![b0, b1],
            functions: vec![FuncSym {
                name: "main".into(),
                entry: 0,
                frame_words: 0,
                num_args: 0,
            }],
            globals: vec![],
            custom_ops: vec![],
            entry_func: 0,
            data_words: 0,
        }
    }

    #[test]
    fn valid_program_passes() {
        let m = MachineDescription::ember1();
        let p = tiny_prog(&m);
        assert_eq!(p.validate(&m), Ok(()));
        assert_eq!(p.total_ops(), 2);
        assert!((p.mean_occupancy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn width_mismatch_detected() {
        let m1 = MachineDescription::ember1();
        let m4 = MachineDescription::ember4();
        let p = tiny_prog(&m1);
        assert!(matches!(
            p.validate(&m4),
            Err(CodeError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn bad_slot_detected() {
        let m = MachineDescription::ember4();
        let mut p = tiny_prog(&m);
        // Slot 2 of ember4 hosts Alu+Custom, not Mem.
        p.bundles[0].slots[2] = Some(MachineOp::new(
            Opcode::Ldw,
            vec![Reg::new(0, 2)],
            vec![Operand::Reg(Reg::ZERO)],
        ));
        assert!(matches!(
            p.validate(&m),
            Err(CodeError::BadSlot { slot: 2, .. })
        ));
    }

    #[test]
    fn bad_register_detected() {
        let m = MachineDescription::ember1();
        let mut p = tiny_prog(&m);
        p.bundles[0].slots[0] = Some(MachineOp::new(
            Opcode::Add,
            vec![Reg::new(0, 200)],
            vec![Operand::Imm(0), Operand::Imm(0)],
        ));
        assert!(matches!(p.validate(&m), Err(CodeError::BadReg { .. })));
    }

    #[test]
    fn write_conflict_detected() {
        let m = MachineDescription::ember4();
        let mut p = tiny_prog(&m);
        let op = MachineOp::new(
            Opcode::Add,
            vec![Reg::new(0, 3)],
            vec![Operand::Imm(1), Operand::Imm(1)],
        );
        p.bundles[0].slots[1] = Some(op.clone());
        p.bundles[0].slots[2] = Some(op);
        assert!(matches!(
            p.validate(&m),
            Err(CodeError::WriteConflict { .. })
        ));
    }

    #[test]
    fn branch_target_checked() {
        let m = MachineDescription::ember1();
        let mut p = tiny_prog(&m);
        let mut br = MachineOp::new(Opcode::Br, vec![], vec![]);
        br.target = 99;
        p.bundles[0].slots[0] = Some(br);
        assert!(matches!(
            p.validate(&m),
            Err(CodeError::BadTarget { target: 99, .. })
        ));
    }

    #[test]
    fn custom_id_checked() {
        let m = MachineDescription::ember1();
        let mut p = tiny_prog(&m);
        p.bundles[0].slots[0] = Some(MachineOp::new(
            Opcode::Custom(5),
            vec![Reg::new(0, 1)],
            vec![Operand::Imm(1)],
        ));
        assert!(matches!(
            p.validate(&m),
            Err(CodeError::BadCustomId { id: 5, .. })
        ));
    }

    #[test]
    fn listing_mentions_functions_and_ops() {
        let m = MachineDescription::ember1();
        let p = tiny_prog(&m);
        let l = p.listing();
        assert!(l.contains("main:"));
        assert!(l.contains("add"));
        assert!(l.contains("halt"));
    }

    #[test]
    fn bundle_helpers() {
        let m = MachineDescription::ember4();
        let p = tiny_prog(&m);
        assert_eq!(p.bundles[0].occupancy(), 1);
        assert!(p.bundles[0].control_op().is_none());
        assert!(p.bundles[1].control_op().is_some());
    }
}
