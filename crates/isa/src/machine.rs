//! Table-driven machine descriptions: one struct describes one family member.
//!
//! This is the paper's central artifact — §3.1: *"[the toolchain] generates
//! code from table-driven architectural descriptions … you can change most of
//! the normal architectural parameters to produce a new model, and continue
//! to generate good code."* Every compiler phase, the simulator and the
//! hardware models read only this description; nothing in the toolchain is
//! specialized to a particular member.

use crate::custom::CustomOpDef;
use crate::op::{FuKind, LatClass, Opcode};
use std::fmt;

/// Instruction-encoding scheme (paper §1.2: "visible instruction
/// compression").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Encoding {
    /// Every bundle occupies `issue_width` fixed 32-bit syllables; empty
    /// slots are explicit NOPs. Simplest decode, largest code.
    Uncompressed,
    /// Only occupied slots are stored; a stop bit marks the end of each
    /// bundle (the TMS320C6x / Multiflow scheme). NOPs are free.
    #[default]
    StopBit,
    /// Stop-bit scheme plus a short 16-bit form for two-operand operations
    /// with small immediates (Thumb/microVLIW-style), at one extra decode
    /// stage.
    Compact16,
}

impl Encoding {
    /// Name used by the description DSL.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::Uncompressed => "uncompressed",
            Encoding::StopBit => "stopbit",
            Encoding::Compact16 => "compact16",
        }
    }

    /// Parse a DSL name.
    pub fn from_name(s: &str) -> Option<Encoding> {
        Some(match s {
            "uncompressed" => Encoding::Uncompressed,
            "stopbit" => Encoding::StopBit,
            "compact16" => Encoding::Compact16,
            _ => return None,
        })
    }
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Execution paradigm of a family member: which backend compiles it and
/// which pipeline model simulates it.
///
/// The paper's central comparison (§2.2) pits customized exposed-pipeline
/// VLIWs against binary-compatible scalar/superscalar processors. Both kinds
/// are described by the same [`MachineDescription`] table; this discriminant
/// selects the code-generation and timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TargetKind {
    /// Exposed-pipeline VLIW: the compiler packs issue slots into bundles;
    /// the simulator issues whole bundles per cycle.
    #[default]
    Vliw,
    /// Scalar in-order RISC (1- or 2-issue superscalar): the compiler emits
    /// a linear instruction stream; the hardware pairs instructions
    /// dynamically, so the binary never encodes the issue width.
    Scalar,
}

impl TargetKind {
    /// Name used by the description DSL.
    pub fn name(self) -> &'static str {
        match self {
            TargetKind::Vliw => "vliw",
            TargetKind::Scalar => "scalar",
        }
    }

    /// Parse a DSL name.
    pub fn from_name(s: &str) -> Option<TargetKind> {
        Some(match s {
            "vliw" => TargetKind::Vliw,
            "scalar" => TargetKind::Scalar,
            _ => return None,
        })
    }
}

impl fmt::Display for TargetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One issue slot: the set of functional-unit kinds it can feed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Slot {
    kinds: Vec<FuKind>,
}

impl Slot {
    /// A slot hosting the given functional-unit kinds.
    pub fn new(kinds: &[FuKind]) -> Slot {
        let mut kinds = kinds.to_vec();
        kinds.sort();
        kinds.dedup();
        Slot { kinds }
    }

    /// Whether the slot can execute operations needing `kind`.
    pub fn hosts(&self, kind: FuKind) -> bool {
        self.kinds.contains(&kind)
    }

    /// The functional-unit kinds this slot hosts.
    pub fn kinds(&self) -> &[FuKind] {
        &self.kinds
    }
}

/// First-level instruction-cache parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ICacheConfig {
    /// Total capacity in bytes (power of two).
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (1 = direct mapped).
    pub ways: u32,
    /// Miss penalty in cycles.
    pub miss_penalty: u32,
}

impl Default for ICacheConfig {
    fn default() -> Self {
        ICacheConfig {
            size_bytes: 8192,
            line_bytes: 32,
            ways: 2,
            miss_penalty: 10,
        }
    }
}

/// Errors detected when validating a machine description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The description has no issue slots at all.
    NoSlots,
    /// A cluster index referenced a cluster that does not exist.
    BadCluster(u8),
    /// Fewer registers per cluster than the toolchain minimum (6).
    TooFewRegisters(u16),
    /// No slot can host the given functional-unit kind although operations
    /// of that kind are required (every machine needs Alu, Mem and Branch).
    MissingFu(FuKind),
    /// More than one branch-capable slot in a cluster's bundle.
    MultipleBranchSlots,
    /// A latency was zero (all operations take at least one cycle).
    ZeroLatency(&'static str),
    /// Custom operations are declared but no slot hosts the Custom FU kind.
    CustomOpsWithoutSlot,
    /// A custom operation's datapath needs a functional unit the machine
    /// does not have (e.g. a multiply node on a machine without a Mul slot),
    /// so its latency table would reference hardware that does not exist.
    CustomOpNeedsUnit {
        /// Name of the offending custom operation.
        op: String,
        /// The functional-unit kind its datapath requires.
        unit: FuKind,
    },
    /// A custom operation declares a latency of zero cycles.
    CustomOpZeroLatency {
        /// Name of the offending custom operation.
        op: String,
    },
    /// A scalar-target machine declared more than one register cluster.
    ScalarClustered(u8),
    /// A scalar-target machine declared more issue slots than the in-order
    /// pipeline model supports (1..=2).
    ScalarTooWide(usize),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoSlots => write!(f, "machine has no issue slots"),
            MachineError::BadCluster(c) => write!(f, "reference to nonexistent cluster {c}"),
            MachineError::TooFewRegisters(n) => {
                write!(
                    f,
                    "register file of {n} is below the toolchain minimum of 6"
                )
            }
            MachineError::MissingFu(k) => write!(f, "no issue slot hosts required unit kind {k}"),
            MachineError::MultipleBranchSlots => {
                write!(f, "more than one branch-capable slot in the bundle")
            }
            MachineError::ZeroLatency(what) => write!(f, "latency of {what} must be at least 1"),
            MachineError::CustomOpsWithoutSlot => {
                write!(
                    f,
                    "custom operations declared but no slot hosts the custom unit"
                )
            }
            MachineError::CustomOpNeedsUnit { op, unit } => {
                write!(
                    f,
                    "custom op {op:?} needs a {unit} unit the machine does not have"
                )
            }
            MachineError::CustomOpZeroLatency { op } => {
                write!(f, "custom op {op:?} declares a zero-cycle latency")
            }
            MachineError::ScalarClustered(c) => {
                write!(f, "scalar targets are unclustered, but {c} clusters given")
            }
            MachineError::ScalarTooWide(w) => {
                write!(
                    f,
                    "scalar in-order pipelines issue at most 2 per cycle, but {w} slots given"
                )
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// A complete description of one family member.
///
/// Construct with [`MachineDescription::builder`], one of the named presets,
/// or by parsing the text DSL via [`crate::desc::parse_machine`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineDescription {
    /// Human-readable model name (e.g. `ember4`).
    pub name: String,
    /// Execution paradigm: VLIW bundles or a scalar in-order pipeline.
    pub target: TargetKind,
    /// Number of register clusters (≥ 1).
    pub clusters: u8,
    /// General-purpose registers per cluster.
    pub regs_per_cluster: u16,
    /// Issue-slot layout per cluster; all clusters share one layout (the
    /// family is homogeneous-clustered, like the Multiflow TRACE).
    pub slots: Vec<Slot>,
    /// Latency, in cycles, of the multiplier.
    pub lat_mul: u32,
    /// Latency, in cycles, of the iterative divider.
    pub lat_div: u32,
    /// Load-use latency, in cycles.
    pub lat_mem: u32,
    /// Cycles lost on a taken branch.
    pub branch_penalty: u32,
    /// Whether results are forwarded (bypassed) to dependent operations.
    /// With forwarding a dependent operation issues `latency` cycles after
    /// its producer; without it, results take one extra cycle through the
    /// register file. Only the scalar pipeline model consults this — the
    /// VLIW members of the family always build the full bypass network
    /// (its cost shows up in [`crate::hwmodel::cycle_time`] instead).
    pub forwarding: bool,
    /// Latency of an inter-cluster copy.
    pub copy_latency: u32,
    /// Instruction-encoding scheme.
    pub encoding: Encoding,
    /// Instruction cache, if modelled.
    pub icache: Option<ICacheConfig>,
    /// Whether idle slots are clock-gated (paper §1.2 "saving power through
    /// visible control"): NOP slots then cost no dynamic energy.
    pub gate_idle_slots: bool,
    /// Application-specific operations this member implements.
    pub custom_ops: Vec<CustomOpDef>,
    /// Area charged for binary-compatibility control logic (rename, issue
    /// queue, reorder buffer). Zero for an exposed-pipeline VLIW; nonzero
    /// for the "mass-market compatible" comparison machines of §2.2.
    pub compat_control: bool,
    /// Data memory size in 32-bit words available to programs.
    pub dmem_words: u32,
}

impl MachineDescription {
    /// Start building a description with the given model name.
    pub fn builder(name: &str) -> MachineBuilder {
        MachineBuilder::new(name)
    }

    /// Total issue width per cycle (slots per cluster × clusters).
    pub fn issue_width(&self) -> usize {
        self.slots.len() * self.clusters as usize
    }

    /// Slots in one cluster's bundle.
    pub fn slots_per_cluster(&self) -> usize {
        self.slots.len()
    }

    /// Latency in cycles of `op` on this machine.
    pub fn latency(&self, op: Opcode) -> u32 {
        match op.lat_class() {
            LatClass::Alu => 1,
            LatClass::Mul => self.lat_mul,
            LatClass::Div => self.lat_div,
            LatClass::Mem => self.lat_mem,
            LatClass::Branch => 1,
            LatClass::Copy => self.copy_latency,
            LatClass::Custom => match op {
                Opcode::Custom(k) => self
                    .custom_ops
                    .get(k as usize)
                    .map(|d| d.latency)
                    .unwrap_or(1),
                _ => 1,
            },
        }
    }

    /// Whether any slot of a cluster hosts `kind`.
    pub fn has_fu(&self, kind: FuKind) -> bool {
        self.slots.iter().any(|s| s.hosts(kind))
    }

    /// Number of slots per cluster hosting `kind`.
    pub fn fu_count(&self, kind: FuKind) -> usize {
        self.slots.iter().filter(|s| s.hosts(kind)).count()
    }

    /// Look up a custom operation definition.
    pub fn custom_op(&self, id: u16) -> Option<&CustomOpDef> {
        self.custom_ops.get(id as usize)
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`MachineError`] found; a `Ok(())` result means the
    /// whole toolchain can target the machine.
    pub fn validate(&self) -> Result<(), MachineError> {
        if self.slots.is_empty() {
            return Err(MachineError::NoSlots);
        }
        if self.regs_per_cluster < 6 {
            return Err(MachineError::TooFewRegisters(self.regs_per_cluster));
        }
        for kind in [FuKind::Alu, FuKind::Mem, FuKind::Branch] {
            if !self.has_fu(kind) {
                return Err(MachineError::MissingFu(kind));
            }
        }
        if self.fu_count(FuKind::Branch) > 1 {
            return Err(MachineError::MultipleBranchSlots);
        }
        for (lat, what) in [
            (self.lat_mul, "mul"),
            (self.lat_div, "div"),
            (self.lat_mem, "mem"),
            (self.copy_latency, "copy"),
        ] {
            if lat == 0 {
                return Err(MachineError::ZeroLatency(what));
            }
        }
        if !self.custom_ops.is_empty() && !self.has_fu(FuKind::Custom) {
            return Err(MachineError::CustomOpsWithoutSlot);
        }
        // Every custom op's latency table must be realizable: a datapath
        // node that needs a unit kind the machine lacks (a multiply node on
        // a machine without a Mul slot) would reference nonexistent
        // hardware. Checked here, not just at schedule time.
        for def in &self.custom_ops {
            if def.latency == 0 {
                return Err(MachineError::CustomOpZeroLatency {
                    op: def.name.clone(),
                });
            }
            for node in &def.nodes {
                let unit = node.op.fu_kind();
                if unit != FuKind::Alu && !self.has_fu(unit) {
                    return Err(MachineError::CustomOpNeedsUnit {
                        op: def.name.clone(),
                        unit,
                    });
                }
            }
        }
        if self.target == TargetKind::Scalar {
            if self.clusters != 1 {
                return Err(MachineError::ScalarClustered(self.clusters));
            }
            if self.slots.len() > 2 {
                return Err(MachineError::ScalarTooWide(self.slots.len()));
            }
        }
        Ok(())
    }

    /// Derive a new member of the family with a different name and the given
    /// tweak applied — the `ISA drift` operation (§2.1) in its smallest form.
    pub fn derive<F: FnOnce(&mut MachineDescription)>(&self, name: &str, tweak: F) -> Self {
        let mut m = self.clone();
        m.name = name.to_string();
        tweak(&mut m);
        m
    }

    // ------------------------------------------------------------------
    // Named presets: the reference family used throughout the experiments.
    // ------------------------------------------------------------------

    /// `ember1`: single-issue RISC-like reference member (one slot hosting
    /// everything), 32 registers.
    pub fn ember1() -> Self {
        Self::builder("ember1")
            .registers(32)
            .slot(&[
                FuKind::Alu,
                FuKind::Mul,
                FuKind::Mem,
                FuKind::Branch,
                FuKind::Custom,
            ])
            .build()
            .expect("preset is valid")
    }

    /// `ember2`: 2-issue member.
    pub fn ember2() -> Self {
        Self::builder("ember2")
            .registers(32)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
            .slot(&[FuKind::Alu, FuKind::Mul, FuKind::Custom])
            .build()
            .expect("preset is valid")
    }

    /// `ember4`: the paper's "4-issue customized VLIW in about the chip area
    /// of a RISC" (§2.2). Two ALUs, a multiplier slot, a memory slot.
    pub fn ember4() -> Self {
        Self::builder("ember4")
            .registers(32)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
            .slot(&[FuKind::Alu, FuKind::Mul])
            .slot(&[FuKind::Alu, FuKind::Custom])
            .slot(&[FuKind::Alu, FuKind::Mul, FuKind::Mem])
            .build()
            .expect("preset is valid")
    }

    /// `ember8`: wide 8-issue member (ILP headroom probe).
    pub fn ember8() -> Self {
        Self::builder("ember8")
            .registers(64)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
            .slot(&[FuKind::Alu, FuKind::Mul])
            .slot(&[FuKind::Alu, FuKind::Custom])
            .slot(&[FuKind::Alu, FuKind::Mul, FuKind::Mem])
            .slot(&[FuKind::Alu])
            .slot(&[FuKind::Alu, FuKind::Mul])
            .slot(&[FuKind::Alu, FuKind::Mem])
            .slot(&[FuKind::Alu])
            .build()
            .expect("preset is valid")
    }

    /// `ember4x2`: two clusters of 2 slots each (same total width as
    /// `ember4`, shorter register-file/bypass critical path).
    pub fn ember4x2() -> Self {
        Self::builder("ember4x2")
            .clusters(2)
            .registers(16)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
            .slot(&[FuKind::Alu, FuKind::Mul, FuKind::Custom])
            .build()
            .expect("preset is valid")
    }

    /// `massmarket`: a binary-compatible superscalar stand-in — 2-issue with
    /// the compatibility-control area tax of §2.2 ("no area is used to
    /// maintain the compatibility that the run-time techniques maintain").
    pub fn massmarket() -> Self {
        Self::builder("massmarket")
            .registers(32)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
            .slot(&[FuKind::Alu, FuKind::Mul])
            .compat_control(true)
            .build()
            .expect("preset is valid")
    }

    /// `scalar1`: a binary-compatible single-issue 5-stage scalar RISC with
    /// full forwarding — the measured counterpart of the §2.2 "mass-market"
    /// baseline. Same register file, latencies and custom-op table as the
    /// VLIW members; only the code generator and pipeline model differ.
    pub fn scalar1() -> Self {
        Self::builder("scalar1")
            .target(TargetKind::Scalar)
            .registers(32)
            .slot(&[
                FuKind::Alu,
                FuKind::Mul,
                FuKind::Mem,
                FuKind::Branch,
                FuKind::Custom,
            ])
            .branch_penalty(2)
            .compat_control(true)
            .build()
            .expect("preset is valid")
    }

    /// `scalar2`: a dual-issue in-order superscalar — the measured
    /// replacement for the analytical [`MachineDescription::massmarket`]
    /// stand-in in the RISC-vs-VLIW comparison. The two slots describe the
    /// dynamic pairing rules (ALU/Mem/Branch beside ALU/Mul/Custom); the
    /// binary itself stays a scalar instruction stream.
    pub fn scalar2() -> Self {
        Self::builder("scalar2")
            .target(TargetKind::Scalar)
            .registers(32)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
            .slot(&[FuKind::Alu, FuKind::Mul, FuKind::Custom])
            .branch_penalty(2)
            .compat_control(true)
            .build()
            .expect("preset is valid")
    }

    /// All named VLIW presets.
    pub fn presets() -> Vec<MachineDescription> {
        vec![
            Self::ember1(),
            Self::ember2(),
            Self::ember4(),
            Self::ember8(),
            Self::ember4x2(),
            Self::massmarket(),
        ]
    }

    /// The scalar-target presets.
    pub fn scalar_presets() -> Vec<MachineDescription> {
        vec![Self::scalar1(), Self::scalar2()]
    }

    /// Every preset of both target kinds (the full N×M grid rows).
    pub fn all_presets() -> Vec<MachineDescription> {
        let mut v = Self::presets();
        v.extend(Self::scalar_presets());
        v
    }
}

/// Builder for [`MachineDescription`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    m: MachineDescription,
}

impl MachineBuilder {
    /// Start from the family defaults.
    pub fn new(name: &str) -> MachineBuilder {
        MachineBuilder {
            m: MachineDescription {
                name: name.to_string(),
                target: TargetKind::Vliw,
                clusters: 1,
                regs_per_cluster: 32,
                slots: Vec::new(),
                lat_mul: 2,
                lat_div: 8,
                lat_mem: 2,
                branch_penalty: 1,
                forwarding: true,
                copy_latency: 1,
                encoding: Encoding::StopBit,
                icache: Some(ICacheConfig::default()),
                gate_idle_slots: true,
                custom_ops: Vec::new(),
                compat_control: false,
                dmem_words: 1 << 20,
            },
        }
    }

    /// Select the execution paradigm (default [`TargetKind::Vliw`]).
    pub fn target(&mut self, t: TargetKind) -> &mut Self {
        self.m.target = t;
        self
    }

    /// Enable or disable result forwarding (default on; see
    /// [`MachineDescription::forwarding`]).
    pub fn forwarding(&mut self, on: bool) -> &mut Self {
        self.m.forwarding = on;
        self
    }

    /// Set the number of clusters.
    pub fn clusters(&mut self, n: u8) -> &mut Self {
        self.m.clusters = n.max(1);
        self
    }

    /// Set registers per cluster.
    pub fn registers(&mut self, n: u16) -> &mut Self {
        self.m.regs_per_cluster = n;
        self
    }

    /// Append an issue slot hosting the given unit kinds.
    pub fn slot(&mut self, kinds: &[FuKind]) -> &mut Self {
        self.m.slots.push(Slot::new(kinds));
        self
    }

    /// Set the multiplier latency.
    pub fn lat_mul(&mut self, n: u32) -> &mut Self {
        self.m.lat_mul = n;
        self
    }

    /// Set the divider latency.
    pub fn lat_div(&mut self, n: u32) -> &mut Self {
        self.m.lat_div = n;
        self
    }

    /// Set the load-use latency.
    pub fn lat_mem(&mut self, n: u32) -> &mut Self {
        self.m.lat_mem = n;
        self
    }

    /// Set the taken-branch penalty in cycles.
    pub fn branch_penalty(&mut self, n: u32) -> &mut Self {
        self.m.branch_penalty = n;
        self
    }

    /// Set the inter-cluster copy latency.
    pub fn copy_latency(&mut self, n: u32) -> &mut Self {
        self.m.copy_latency = n;
        self
    }

    /// Select the instruction encoding.
    pub fn encoding(&mut self, e: Encoding) -> &mut Self {
        self.m.encoding = e;
        self
    }

    /// Configure (or disable, with `None`) the instruction cache.
    pub fn icache(&mut self, cfg: Option<ICacheConfig>) -> &mut Self {
        self.m.icache = cfg;
        self
    }

    /// Enable or disable idle-slot clock gating.
    pub fn gate_idle_slots(&mut self, on: bool) -> &mut Self {
        self.m.gate_idle_slots = on;
        self
    }

    /// Add a custom operation to the member's repertoire; returns its id.
    pub fn custom_op(&mut self, def: CustomOpDef) -> &mut Self {
        self.m.custom_ops.push(def);
        self
    }

    /// Mark the machine as paying the binary-compatibility control-area tax.
    pub fn compat_control(&mut self, on: bool) -> &mut Self {
        self.m.compat_control = on;
        self
    }

    /// Set the simulated data-memory size in words.
    pub fn dmem_words(&mut self, n: u32) -> &mut Self {
        self.m.dmem_words = n;
        self
    }

    /// Validate and produce the description.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] reported by [`MachineDescription::validate`].
    pub fn build(&self) -> Result<MachineDescription, MachineError> {
        let m = self.m.clone();
        m.validate()?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for m in MachineDescription::all_presets() {
            assert_eq!(m.validate(), Ok(()), "{} must validate", m.name);
        }
    }

    #[test]
    fn scalar_presets_are_scalar_targets() {
        let s1 = MachineDescription::scalar1();
        let s2 = MachineDescription::scalar2();
        assert_eq!(s1.target, TargetKind::Scalar);
        assert_eq!(s1.issue_width(), 1);
        assert_eq!(s2.target, TargetKind::Scalar);
        assert_eq!(s2.issue_width(), 2);
        assert!(s1.forwarding && s2.forwarding);
        // VLIW presets keep the default target.
        assert!(MachineDescription::presets()
            .iter()
            .all(|m| m.target == TargetKind::Vliw));
    }

    #[test]
    fn scalar_shape_rules_enforced() {
        let e = MachineDescription::builder("x")
            .target(TargetKind::Scalar)
            .clusters(2)
            .registers(16)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
            .build()
            .unwrap_err();
        assert_eq!(e, MachineError::ScalarClustered(2));

        let e = MachineDescription::builder("x")
            .target(TargetKind::Scalar)
            .registers(16)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
            .slot(&[FuKind::Alu])
            .slot(&[FuKind::Alu])
            .build()
            .unwrap_err();
        assert_eq!(e, MachineError::ScalarTooWide(3));
    }

    #[test]
    fn custom_op_unit_requirements_validated() {
        // A MAC datapath contains a multiply node: a machine whose slots
        // host Custom but not Mul must be rejected at validation time, not
        // discovered at schedule time.
        let e = MachineDescription::builder("x")
            .registers(16)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch, FuKind::Custom])
            .custom_op(crate::custom::mac_op())
            .build()
            .unwrap_err();
        assert_eq!(
            e,
            MachineError::CustomOpNeedsUnit {
                op: "mac".into(),
                unit: FuKind::Mul,
            }
        );

        // The same machine with a Mul slot is fine.
        MachineDescription::builder("x")
            .registers(16)
            .slot(&[
                FuKind::Alu,
                FuKind::Mul,
                FuKind::Mem,
                FuKind::Branch,
                FuKind::Custom,
            ])
            .custom_op(crate::custom::mac_op())
            .build()
            .expect("mul-capable machine hosts a mac");

        // Pure-ALU datapaths never trip the unit check.
        MachineDescription::builder("x")
            .registers(16)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch, FuKind::Custom])
            .custom_op(crate::custom::sat_add16())
            .build()
            .expect("alu-only custom op needs no extra unit");
    }

    #[test]
    fn custom_op_zero_latency_rejected() {
        let mut def = crate::custom::sat_add16();
        def.latency = 0;
        let e = MachineDescription::builder("x")
            .registers(16)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch, FuKind::Custom])
            .custom_op(def)
            .build()
            .unwrap_err();
        assert_eq!(
            e,
            MachineError::CustomOpZeroLatency {
                op: "sadd16".into()
            }
        );
    }

    #[test]
    fn issue_width_counts_clusters() {
        assert_eq!(MachineDescription::ember4().issue_width(), 4);
        assert_eq!(MachineDescription::ember4x2().issue_width(), 4);
        assert_eq!(MachineDescription::ember4x2().slots_per_cluster(), 2);
    }

    #[test]
    fn latencies_follow_table() {
        let m = MachineDescription::builder("t")
            .registers(16)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch, FuKind::Mul])
            .lat_mul(3)
            .lat_mem(4)
            .lat_div(12)
            .build()
            .unwrap();
        assert_eq!(m.latency(Opcode::Add), 1);
        assert_eq!(m.latency(Opcode::Mul), 3);
        assert_eq!(m.latency(Opcode::Ldw), 4);
        assert_eq!(m.latency(Opcode::Div), 12);
    }

    #[test]
    fn validation_rejects_bad_machines() {
        let e = MachineDescription::builder("x").build().unwrap_err();
        assert_eq!(e, MachineError::NoSlots);

        let e = MachineDescription::builder("x")
            .registers(4)
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
            .build()
            .unwrap_err();
        assert_eq!(e, MachineError::TooFewRegisters(4));

        let e = MachineDescription::builder("x")
            .slot(&[FuKind::Alu])
            .build()
            .unwrap_err();
        assert_eq!(e, MachineError::MissingFu(FuKind::Mem));

        let e = MachineDescription::builder("x")
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
            .slot(&[FuKind::Branch])
            .build()
            .unwrap_err();
        assert_eq!(e, MachineError::MultipleBranchSlots);

        let e = MachineDescription::builder("x")
            .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
            .lat_mem(0)
            .build()
            .unwrap_err();
        assert_eq!(e, MachineError::ZeroLatency("mem"));
    }

    #[test]
    fn derive_produces_family_member() {
        let base = MachineDescription::ember4();
        let fast = base.derive("ember4-fastmul", |m| m.lat_mul = 1);
        assert_eq!(fast.name, "ember4-fastmul");
        assert_eq!(fast.lat_mul, 1);
        assert_eq!(base.lat_mul, 2, "original is untouched");
        assert_eq!(fast.slots, base.slots);
    }

    #[test]
    fn slot_dedups_kinds() {
        let s = Slot::new(&[FuKind::Alu, FuKind::Alu, FuKind::Mem]);
        assert_eq!(s.kinds().len(), 2);
        assert!(s.hosts(FuKind::Alu));
        assert!(!s.hosts(FuKind::Branch));
    }

    #[test]
    fn encoding_names_roundtrip() {
        for e in [
            Encoding::Uncompressed,
            Encoding::StopBit,
            Encoding::Compact16,
        ] {
            assert_eq!(Encoding::from_name(e.name()), Some(e));
        }
        assert_eq!(Encoding::from_name("zip"), None);
    }
}
