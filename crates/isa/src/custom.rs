//! Application-specific custom operations ("specialized ALUs … special ops",
//! paper §1.2).
//!
//! A custom operation is a small dataflow graph of base-ISA arithmetic nodes
//! collapsed into one issue slot. The definition below is *executable*: the
//! simulator interprets the stored graph, so any extension the ISE engine
//! selects runs without simulator changes — this is what keeps the toolchain
//! "mass customizable" end to end.

use crate::op::{EvalError, Opcode};
use std::fmt;

/// Reference to a value inside a custom-operation dataflow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatRef {
    /// The i-th external input of the operation.
    Input(u8),
    /// The result of an earlier node in the graph.
    Node(u16),
    /// A constant folded into the datapath.
    Const(i32),
}

impl fmt::Display for PatRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatRef::Input(i) => write!(f, "in{i}"),
            PatRef::Node(n) => write!(f, "t{n}"),
            PatRef::Const(c) => write!(f, "#{c}"),
        }
    }
}

/// One node of a custom datapath: a base arithmetic opcode applied to one or
/// two earlier values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatNode {
    /// Base-ISA opcode computed by this node (must be pure arithmetic).
    pub op: Opcode,
    /// First operand.
    pub a: PatRef,
    /// Second operand (ignored by unary opcodes).
    pub b: PatRef,
}

/// Errors from validating or evaluating a custom-operation definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CustomOpError {
    /// A node references a node at or after its own position (not topological).
    NotTopological(u16),
    /// A node references an input index ≥ `num_inputs`.
    BadInput(u8),
    /// An output references a nonexistent node.
    BadOutput(u16),
    /// The graph is empty or exceeds implementation limits.
    BadShape(String),
    /// A node's opcode is not pure arithmetic.
    NotArithmetic(Opcode),
    /// Arithmetic error during evaluation (division by zero).
    Eval(EvalError),
    /// Wrong number of argument values supplied to `eval`.
    WrongArity {
        /// Arguments the definition requires.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
}

impl fmt::Display for CustomOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CustomOpError::NotTopological(n) => {
                write!(f, "node {n} references a later or equal node")
            }
            CustomOpError::BadInput(i) => write!(f, "reference to nonexistent input {i}"),
            CustomOpError::BadOutput(n) => write!(f, "output references nonexistent node {n}"),
            CustomOpError::BadShape(s) => write!(f, "malformed custom op: {s}"),
            CustomOpError::NotArithmetic(op) => {
                write!(f, "opcode {op} is not allowed in a custom datapath")
            }
            CustomOpError::Eval(e) => write!(f, "evaluation failed: {e}"),
            CustomOpError::WrongArity { expected, got } => {
                write!(f, "expected {expected} arguments, got {got}")
            }
        }
    }
}

impl std::error::Error for CustomOpError {}

impl From<EvalError> for CustomOpError {
    fn from(e: EvalError) -> Self {
        CustomOpError::Eval(e)
    }
}

/// Maximum register-file read ports a custom operation may consume.
pub const MAX_CUSTOM_INPUTS: usize = 4;
/// Maximum register-file write ports a custom operation may consume.
pub const MAX_CUSTOM_OUTPUTS: usize = 2;

/// A complete, executable custom-operation definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomOpDef {
    /// Mnemonic suffix for listings, e.g. `sadd16`.
    pub name: String,
    /// Number of external register inputs (≤ [`MAX_CUSTOM_INPUTS`]).
    pub num_inputs: u8,
    /// Datapath nodes in topological order.
    pub nodes: Vec<PatNode>,
    /// Which values the operation writes back (≤ [`MAX_CUSTOM_OUTPUTS`]).
    pub outputs: Vec<PatRef>,
    /// Pipelined latency in cycles, as estimated by [`CustomOpDef::estimate`].
    pub latency: u32,
    /// Datapath area in adder-equivalents, as estimated by `estimate`.
    pub area: f64,
}

impl CustomOpDef {
    /// Build a definition, estimating latency and area from the graph.
    ///
    /// # Errors
    ///
    /// Any structural [`CustomOpError`]; see [`CustomOpDef::validate`].
    pub fn new(
        name: &str,
        num_inputs: u8,
        nodes: Vec<PatNode>,
        outputs: Vec<PatRef>,
    ) -> Result<CustomOpDef, CustomOpError> {
        let mut def = CustomOpDef {
            name: name.to_string(),
            num_inputs,
            nodes,
            outputs,
            latency: 1,
            area: 0.0,
        };
        def.validate()?;
        let (lat, area) = def.estimate();
        def.latency = lat;
        def.area = area;
        Ok(def)
    }

    /// Check structural invariants: topological node order, in-range
    /// references, arity limits, arithmetic-only opcodes.
    ///
    /// # Errors
    ///
    /// The first violated invariant as a [`CustomOpError`].
    pub fn validate(&self) -> Result<(), CustomOpError> {
        if self.nodes.is_empty() {
            return Err(CustomOpError::BadShape("no nodes".into()));
        }
        if self.nodes.len() > 64 {
            return Err(CustomOpError::BadShape("more than 64 nodes".into()));
        }
        if self.num_inputs as usize > MAX_CUSTOM_INPUTS {
            return Err(CustomOpError::BadShape(format!(
                "{} inputs exceeds the {MAX_CUSTOM_INPUTS}-port limit",
                self.num_inputs
            )));
        }
        if self.outputs.is_empty() || self.outputs.len() > MAX_CUSTOM_OUTPUTS {
            return Err(CustomOpError::BadShape(format!(
                "{} outputs (must be 1..={MAX_CUSTOM_OUTPUTS})",
                self.outputs.len()
            )));
        }
        let check_ref = |r: PatRef, pos: usize| -> Result<(), CustomOpError> {
            match r {
                PatRef::Input(i) if i >= self.num_inputs => Err(CustomOpError::BadInput(i)),
                PatRef::Node(n) if n as usize >= pos => Err(CustomOpError::NotTopological(n)),
                _ => Ok(()),
            }
        };
        for (i, node) in self.nodes.iter().enumerate() {
            let arity = node.op.num_srcs();
            if !(arity == 1 || arity == 2) {
                return Err(CustomOpError::NotArithmetic(node.op));
            }
            // Must be evaluable by eval1/eval2: probe classification.
            let pure = if arity == 1 {
                node.op.eval1(0).is_ok()
            } else {
                node.op.eval2(1, 1).is_ok()
            };
            if !pure {
                return Err(CustomOpError::NotArithmetic(node.op));
            }
            check_ref(node.a, i)?;
            if arity == 2 {
                check_ref(node.b, i)?;
            }
        }
        for &out in &self.outputs {
            match out {
                PatRef::Node(n) if (n as usize) < self.nodes.len() => {}
                PatRef::Node(n) => return Err(CustomOpError::BadOutput(n)),
                PatRef::Input(i) if i < self.num_inputs => {}
                PatRef::Input(i) => return Err(CustomOpError::BadInput(i)),
                PatRef::Const(_) => {}
            }
        }
        Ok(())
    }

    /// Estimate `(latency_cycles, area_adders)` from the datapath graph.
    ///
    /// Latency is the critical path through the nodes in ALU-delay units,
    /// rounded up to whole cycles (a chain worth ≤ 1 ALU delay fits in one
    /// cycle). Area is the sum of the node areas.
    pub fn estimate(&self) -> (u32, f64) {
        let mut depth = vec![0.0f64; self.nodes.len()];
        let mut area = 0.0;
        for (i, node) in self.nodes.iter().enumerate() {
            let din = |r: PatRef| -> f64 {
                match r {
                    PatRef::Node(n) => depth[n as usize],
                    _ => 0.0,
                }
            };
            let base = din(node.a).max(if node.op.num_srcs() == 2 {
                din(node.b)
            } else {
                0.0
            });
            depth[i] = base + node.op.datapath_delay();
            area += node.op.datapath_area();
        }
        let crit = depth.iter().cloned().fold(0.0, f64::max);
        let latency = (crit / 1.0).ceil().max(1.0) as u32;
        (latency, area)
    }

    /// Number of software operations the custom op replaces per use.
    pub fn ops_replaced(&self) -> usize {
        self.nodes.len()
    }

    /// Execute the datapath on concrete argument values.
    ///
    /// # Errors
    ///
    /// [`CustomOpError::WrongArity`] when `args.len() != num_inputs`;
    /// [`CustomOpError::Eval`] if a node divides by zero.
    pub fn eval(&self, args: &[i32]) -> Result<Vec<i32>, CustomOpError> {
        let mut vals = Vec::new();
        let mut outs = Vec::new();
        self.eval_into(args, &mut vals, &mut outs)?;
        Ok(outs)
    }

    /// Execute the datapath writing results into caller-owned buffers — the
    /// allocation-free variant of [`CustomOpDef::eval`] used by the
    /// pre-decoded simulator cycle loops. `vals` is node-value scratch and
    /// `outs` receives the outputs; both are cleared first, so buffers can
    /// be reused across calls.
    ///
    /// # Errors
    ///
    /// Exactly those of [`CustomOpDef::eval`].
    pub fn eval_into(
        &self,
        args: &[i32],
        vals: &mut Vec<i32>,
        outs: &mut Vec<i32>,
    ) -> Result<(), CustomOpError> {
        if args.len() != self.num_inputs as usize {
            return Err(CustomOpError::WrongArity {
                expected: self.num_inputs as usize,
                got: args.len(),
            });
        }
        vals.clear();
        vals.resize(self.nodes.len(), 0);
        outs.clear();
        let read = |r: PatRef, vals: &[i32]| -> i32 {
            match r {
                PatRef::Input(i) => args[i as usize],
                PatRef::Node(n) => vals[n as usize],
                PatRef::Const(c) => c,
            }
        };
        for (i, node) in self.nodes.iter().enumerate() {
            let a = read(node.a, vals);
            vals[i] = if node.op.num_srcs() == 1 {
                node.op.eval1(a)?
            } else {
                let b = read(node.b, vals);
                node.op.eval2(a, b)?
            };
        }
        outs.extend(self.outputs.iter().map(|&o| read(o, vals)));
        Ok(())
    }

    /// Render the datapath as a one-line expression listing for reports.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "{}(", self.name);
        for i in 0..self.num_inputs {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "in{i}");
        }
        s.push_str("): ");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push_str("; ");
            }
            if n.op.num_srcs() == 1 {
                let _ = write!(s, "t{i}={} {}", n.op, n.a);
            } else {
                let _ = write!(s, "t{i}={} {},{}", n.op, n.a, n.b);
            }
        }
        s.push_str(" -> ");
        for (i, o) in self.outputs.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{o}");
        }
        s
    }
}

impl fmt::Display for CustomOpDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A convenience constructor for hand-written custom ops in tests/examples:
/// multiply-accumulate `dst = a * b + c`.
pub fn mac_op() -> CustomOpDef {
    CustomOpDef::new(
        "mac",
        3,
        vec![
            PatNode {
                op: Opcode::Mul,
                a: PatRef::Input(0),
                b: PatRef::Input(1),
            },
            PatNode {
                op: Opcode::Add,
                a: PatRef::Node(0),
                b: PatRef::Input(2),
            },
        ],
        vec![PatRef::Node(1)],
    )
    .expect("mac is well formed")
}

/// Saturating 16-bit add `dst = clamp(a + b, -32768, 32767)` — the classic
/// DSP special op.
pub fn sat_add16() -> CustomOpDef {
    CustomOpDef::new(
        "sadd16",
        2,
        vec![
            PatNode {
                op: Opcode::Add,
                a: PatRef::Input(0),
                b: PatRef::Input(1),
            },
            PatNode {
                op: Opcode::Max,
                a: PatRef::Node(0),
                b: PatRef::Const(-32768),
            },
            PatNode {
                op: Opcode::Min,
                a: PatRef::Node(1),
                b: PatRef::Const(32767),
            },
        ],
        vec![PatRef::Node(2)],
    )
    .expect("sadd16 is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_evaluates() {
        let mac = mac_op();
        assert_eq!(mac.eval(&[3, 4, 10]).unwrap(), vec![22]);
        assert_eq!(mac.num_inputs, 3);
        assert_eq!(mac.ops_replaced(), 2);
    }

    #[test]
    fn sat_add_clamps() {
        let op = sat_add16();
        assert_eq!(op.eval(&[30000, 10000]).unwrap(), vec![32767]);
        assert_eq!(op.eval(&[-30000, -10000]).unwrap(), vec![-32768]);
        assert_eq!(op.eval(&[5, 6]).unwrap(), vec![11]);
    }

    #[test]
    fn estimate_latency_grows_with_depth() {
        let (lat_mac, area_mac) = mac_op().estimate();
        assert!(lat_mac >= 2, "mul+add chain needs > 1 ALU delay");
        assert!(area_mac > 9.0, "contains a multiplier");
        let (lat_sat, _) = sat_add16().estimate();
        assert!(lat_sat <= lat_mac);
    }

    #[test]
    fn validation_catches_cycles_and_ranges() {
        // Node referencing itself.
        let bad = CustomOpDef {
            name: "bad".into(),
            num_inputs: 1,
            nodes: vec![PatNode {
                op: Opcode::Add,
                a: PatRef::Node(0),
                b: PatRef::Input(0),
            }],
            outputs: vec![PatRef::Node(0)],
            latency: 1,
            area: 1.0,
        };
        assert_eq!(bad.validate(), Err(CustomOpError::NotTopological(0)));

        // Input out of range.
        let bad = CustomOpDef {
            name: "bad".into(),
            num_inputs: 1,
            nodes: vec![PatNode {
                op: Opcode::Add,
                a: PatRef::Input(2),
                b: PatRef::Input(0),
            }],
            outputs: vec![PatRef::Node(0)],
            latency: 1,
            area: 1.0,
        };
        assert_eq!(bad.validate(), Err(CustomOpError::BadInput(2)));

        // Output out of range.
        let bad = CustomOpDef {
            name: "bad".into(),
            num_inputs: 1,
            nodes: vec![PatNode {
                op: Opcode::Abs,
                a: PatRef::Input(0),
                b: PatRef::Input(0),
            }],
            outputs: vec![PatRef::Node(7)],
            latency: 1,
            area: 1.0,
        };
        assert_eq!(bad.validate(), Err(CustomOpError::BadOutput(7)));
    }

    #[test]
    fn validation_rejects_non_arithmetic_nodes() {
        let bad = CustomOpDef::new(
            "bad",
            1,
            vec![PatNode {
                op: Opcode::Ldw,
                a: PatRef::Input(0),
                b: PatRef::Input(0),
            }],
            vec![PatRef::Node(0)],
        );
        assert!(matches!(
            bad,
            Err(CustomOpError::NotArithmetic(Opcode::Ldw))
        ));
    }

    #[test]
    fn eval_arity_checked() {
        let mac = mac_op();
        assert!(matches!(
            mac.eval(&[1, 2]),
            Err(CustomOpError::WrongArity {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn eval_propagates_divide_by_zero() {
        let divop = CustomOpDef::new(
            "d",
            2,
            vec![PatNode {
                op: Opcode::Div,
                a: PatRef::Input(0),
                b: PatRef::Input(1),
            }],
            vec![PatRef::Node(0)],
        )
        .unwrap();
        assert!(matches!(divop.eval(&[1, 0]), Err(CustomOpError::Eval(_))));
        assert_eq!(divop.eval(&[9, 3]).unwrap(), vec![3]);
    }

    #[test]
    fn describe_is_readable() {
        let s = mac_op().describe();
        assert!(s.contains("mac(in0, in1, in2)"));
        assert!(s.contains("mul"));
        assert!(s.contains("-> t1"));
    }

    #[test]
    fn two_output_op_supported() {
        // divmod: returns both quotient and remainder.
        let op = CustomOpDef::new(
            "divmod",
            2,
            vec![
                PatNode {
                    op: Opcode::Div,
                    a: PatRef::Input(0),
                    b: PatRef::Input(1),
                },
                PatNode {
                    op: Opcode::Rem,
                    a: PatRef::Input(0),
                    b: PatRef::Input(1),
                },
            ],
            vec![PatRef::Node(0), PatRef::Node(1)],
        )
        .unwrap();
        assert_eq!(op.eval(&[17, 5]).unwrap(), vec![3, 2]);
    }
}
