//! The machine-description language: a tiny text DSL so architecture tables
//! can live in files, diffs and reports — the literal "table-driven
//! architectural description" of paper §3.1.
//!
//! ```text
//! machine "ember4" {
//!   clusters 1
//!   registers 32
//!   slot { alu mem branch }
//!   slot { alu mul }
//!   slot { alu custom }
//!   slot { alu mul mem }
//!   latency mul 2
//!   latency div 8
//!   latency mem 2
//!   branch_penalty 1
//!   copy_latency 1
//!   encoding stopbit
//!   icache 8192 32 2 10
//!   gate_idle_slots on
//! }
//! ```

use crate::machine::{Encoding, ICacheConfig, MachineDescription, MachineError, TargetKind};
use crate::op::FuKind;
use std::fmt;

/// Error from parsing a machine description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine description line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<MachineError> for ParseError {
    fn from(e: MachineError) -> Self {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
    Num(i64),
    LBrace,
    RBrace,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut toks = Vec::new();
    for (ln, raw) in src.lines().enumerate() {
        let line = ln + 1;
        let text = raw.split('#').next().unwrap_or("");
        let mut chars = text.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
            } else if c == '{' {
                chars.next();
                toks.push((Tok::LBrace, line));
            } else if c == '}' {
                chars.next();
                toks.push((Tok::RBrace, line));
            } else if c == '"' {
                chars.next();
                let start = i + 1;
                let mut end = start;
                let mut closed = false;
                for (j, d) in chars.by_ref() {
                    if d == '"' {
                        end = j;
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err(ParseError {
                        line,
                        message: "unterminated string".into(),
                    });
                }
                toks.push((Tok::Str(text[start..end].to_string()), line));
            } else if c.is_ascii_digit() || c == '-' {
                let start = i;
                let mut end = i + c.len_utf8();
                chars.next();
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_ascii_digit() {
                        end = j + 1;
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: i64 = text[start..end].parse().map_err(|_| ParseError {
                    line,
                    message: format!("bad number {:?}", &text[start..end]),
                })?;
                toks.push((Tok::Num(v), line));
            } else if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                let mut end = i + 1;
                chars.next();
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        end = j + 1;
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Word(text[start..end].to_string()), line));
            } else {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character {c:?}"),
                });
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&(Tok, usize)> {
        self.toks.get(self.pos)
    }

    fn line(&self) -> usize {
        self.peek()
            .map(|t| t.1)
            .unwrap_or_else(|| self.toks.last().map(|t| t.1).unwrap_or(0))
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self.toks.get(self.pos).cloned().ok_or_else(|| ParseError {
            line: self.toks.last().map(|t| t.1).unwrap_or(0),
            message: "unexpected end of input".into(),
        })?;
        self.pos += 1;
        Ok(t.0)
    }

    fn expect_word(&mut self, w: &str) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Word(s) if s == w => Ok(()),
            other => Err(self.err(format!("expected {w:?}, found {other:?}"))),
        }
    }

    fn num(&mut self) -> Result<i64, ParseError> {
        match self.next()? {
            Tok::Num(v) => Ok(v),
            other => Err(self.err(format!("expected a number, found {other:?}"))),
        }
    }

    fn unsigned(&mut self, what: &str) -> Result<u32, ParseError> {
        let v = self.num()?;
        u32::try_from(v).map_err(|_| self.err(format!("{what} must be non-negative")))
    }
}

/// Parse one `machine "name" { ... }` block.
///
/// # Errors
///
/// [`ParseError`] on syntax errors, unknown keys, or a description that
/// fails [`MachineDescription::validate`].
pub fn parse_machine(src: &str) -> Result<MachineDescription, ParseError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    p.expect_word("machine")?;
    let name = match p.next()? {
        Tok::Str(s) | Tok::Word(s) => s,
        other => return Err(p.err(format!("expected machine name, found {other:?}"))),
    };
    match p.next()? {
        Tok::LBrace => {}
        other => return Err(p.err(format!("expected '{{', found {other:?}"))),
    }

    let mut b = MachineDescription::builder(&name);
    b.icache(None);
    loop {
        match p.next()? {
            Tok::RBrace => break,
            Tok::Word(key) => match key.as_str() {
                "clusters" => {
                    let v = p.unsigned("clusters")?;
                    b.clusters(u8::try_from(v).map_err(|_| p.err("too many clusters"))?);
                }
                "registers" => {
                    let v = p.unsigned("registers")?;
                    b.registers(u16::try_from(v).map_err(|_| p.err("too many registers"))?);
                }
                "slot" => {
                    match p.next()? {
                        Tok::LBrace => {}
                        other => return Err(p.err(format!("expected '{{', found {other:?}"))),
                    }
                    let mut kinds = Vec::new();
                    loop {
                        match p.next()? {
                            Tok::RBrace => break,
                            Tok::Word(w) => {
                                let k = FuKind::from_name(&w)
                                    .ok_or_else(|| p.err(format!("unknown unit kind {w:?}")))?;
                                kinds.push(k);
                            }
                            other => {
                                return Err(p.err(format!("expected unit kind, found {other:?}")))
                            }
                        }
                    }
                    b.slot(&kinds);
                }
                "latency" => {
                    let which = match p.next()? {
                        Tok::Word(w) => w,
                        other => return Err(p.err(format!("expected unit name, found {other:?}"))),
                    };
                    let v = p.unsigned("latency")?;
                    match which.as_str() {
                        "mul" => b.lat_mul(v),
                        "div" => b.lat_div(v),
                        "mem" => b.lat_mem(v),
                        other => return Err(p.err(format!("unknown latency class {other:?}"))),
                    };
                }
                "branch_penalty" => {
                    let v = p.unsigned("branch_penalty")?;
                    b.branch_penalty(v);
                }
                "copy_latency" => {
                    let v = p.unsigned("copy_latency")?;
                    b.copy_latency(v);
                }
                "encoding" => {
                    let w = match p.next()? {
                        Tok::Word(w) => w,
                        other => return Err(p.err(format!("expected encoding, found {other:?}"))),
                    };
                    let e = Encoding::from_name(&w)
                        .ok_or_else(|| p.err(format!("unknown encoding {w:?}")))?;
                    b.encoding(e);
                }
                "target" => {
                    let w = match p.next()? {
                        Tok::Word(w) => w,
                        other => return Err(p.err(format!("expected target, found {other:?}"))),
                    };
                    let t = TargetKind::from_name(&w)
                        .ok_or_else(|| p.err(format!("unknown target {w:?}")))?;
                    b.target(t);
                }
                "forwarding" => {
                    let w = match p.next()? {
                        Tok::Word(w) => w,
                        other => return Err(p.err(format!("expected on/off, found {other:?}"))),
                    };
                    match w.as_str() {
                        "on" => b.forwarding(true),
                        "off" => b.forwarding(false),
                        other => return Err(p.err(format!("expected on/off, found {other:?}"))),
                    };
                }
                "icache" => {
                    let size = p.unsigned("icache size")?;
                    let line = p.unsigned("icache line")?;
                    let ways = p.unsigned("icache ways")?;
                    let pen = p.unsigned("icache miss penalty")?;
                    b.icache(Some(ICacheConfig {
                        size_bytes: size,
                        line_bytes: line,
                        ways,
                        miss_penalty: pen,
                    }));
                }
                "gate_idle_slots" => {
                    let w = match p.next()? {
                        Tok::Word(w) => w,
                        other => return Err(p.err(format!("expected on/off, found {other:?}"))),
                    };
                    match w.as_str() {
                        "on" => b.gate_idle_slots(true),
                        "off" => b.gate_idle_slots(false),
                        other => return Err(p.err(format!("expected on/off, found {other:?}"))),
                    };
                }
                "compat_control" => {
                    let w = match p.next()? {
                        Tok::Word(w) => w,
                        other => return Err(p.err(format!("expected on/off, found {other:?}"))),
                    };
                    match w.as_str() {
                        "on" => b.compat_control(true),
                        "off" => b.compat_control(false),
                        other => return Err(p.err(format!("expected on/off, found {other:?}"))),
                    };
                }
                "dmem_words" => {
                    let v = p.unsigned("dmem_words")?;
                    b.dmem_words(v);
                }
                other => return Err(p.err(format!("unknown key {other:?}"))),
            },
            other => return Err(p.err(format!("expected key or '}}', found {other:?}"))),
        }
    }
    if p.peek().is_some() {
        return Err(p.err("trailing tokens after machine block"));
    }
    Ok(b.build()?)
}

/// Render a description back into the DSL (inverse of [`parse_machine`] up
/// to formatting; custom operations are not serialized — they are selected
/// per application, not written by hand).
pub fn print_machine(m: &MachineDescription) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "machine \"{}\" {{", m.name);
    let _ = writeln!(s, "  target {}", m.target);
    let _ = writeln!(s, "  clusters {}", m.clusters);
    let _ = writeln!(s, "  registers {}", m.regs_per_cluster);
    for slot in &m.slots {
        let kinds: Vec<String> = slot.kinds().iter().map(|k| k.to_string()).collect();
        let _ = writeln!(s, "  slot {{ {} }}", kinds.join(" "));
    }
    let _ = writeln!(s, "  latency mul {}", m.lat_mul);
    let _ = writeln!(s, "  latency div {}", m.lat_div);
    let _ = writeln!(s, "  latency mem {}", m.lat_mem);
    let _ = writeln!(s, "  branch_penalty {}", m.branch_penalty);
    let _ = writeln!(
        s,
        "  forwarding {}",
        if m.forwarding { "on" } else { "off" }
    );
    let _ = writeln!(s, "  copy_latency {}", m.copy_latency);
    let _ = writeln!(s, "  encoding {}", m.encoding);
    if let Some(c) = m.icache {
        let _ = writeln!(
            s,
            "  icache {} {} {} {}",
            c.size_bytes, c.line_bytes, c.ways, c.miss_penalty
        );
    }
    let _ = writeln!(
        s,
        "  gate_idle_slots {}",
        if m.gate_idle_slots { "on" } else { "off" }
    );
    let _ = writeln!(
        s,
        "  compat_control {}",
        if m.compat_control { "on" } else { "off" }
    );
    let _ = writeln!(s, "  dmem_words {}", m.dmem_words);
    s.push_str("}\n");
    s
}

/// Compare two machine descriptions field by field, ignoring name and custom
/// ops — used by round-trip tests and the drift reports.
pub fn same_architecture(a: &MachineDescription, b: &MachineDescription) -> bool {
    a.target == b.target
        && a.forwarding == b.forwarding
        && a.clusters == b.clusters
        && a.regs_per_cluster == b.regs_per_cluster
        && a.slots == b.slots
        && a.lat_mul == b.lat_mul
        && a.lat_div == b.lat_div
        && a.lat_mem == b.lat_mem
        && a.branch_penalty == b.branch_penalty
        && a.copy_latency == b.copy_latency
        && a.encoding == b.encoding
        && a.icache == b.icache
        && a.gate_idle_slots == b.gate_idle_slots
        && a.compat_control == b.compat_control
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let m = parse_machine(
            r#"machine "t" {
                 registers 16
                 slot { alu mem branch }
               }"#,
        )
        .unwrap();
        assert_eq!(m.name, "t");
        assert_eq!(m.regs_per_cluster, 16);
        assert_eq!(m.issue_width(), 1);
        assert_eq!(m.icache, None);
    }

    #[test]
    fn parse_full_example() {
        let m = parse_machine(
            r#"# a four-issue clustered member
               machine "demo" {
                 clusters 2
                 registers 16
                 slot { alu mem branch }
                 slot { alu mul custom }
                 latency mul 3
                 latency div 10
                 latency mem 2
                 branch_penalty 2
                 copy_latency 2
                 encoding compact16
                 icache 4096 16 1 8
                 gate_idle_slots off
                 compat_control off
                 dmem_words 65536
               }"#,
        )
        .unwrap();
        assert_eq!(m.clusters, 2);
        assert_eq!(m.issue_width(), 4);
        assert_eq!(m.lat_mul, 3);
        assert_eq!(m.encoding, Encoding::Compact16);
        assert_eq!(m.icache.unwrap().size_bytes, 4096);
        assert!(!m.gate_idle_slots);
        assert_eq!(m.dmem_words, 65536);
    }

    #[test]
    fn scalar_target_and_forwarding_parse() {
        let m = parse_machine(
            r#"machine "s" {
                 target scalar
                 registers 16
                 slot { alu mem branch mul }
                 forwarding off
               }"#,
        )
        .unwrap();
        assert_eq!(m.target, TargetKind::Scalar);
        assert!(!m.forwarding);
        let e = parse_machine("machine \"s\" { target dataflow }").unwrap_err();
        assert!(e.message.contains("dataflow"));
    }

    #[test]
    fn print_parse_roundtrip_for_presets() {
        for m in MachineDescription::all_presets() {
            let text = print_machine(&m);
            let back = parse_machine(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", m.name));
            assert!(
                same_architecture(&m, &back),
                "{} did not round-trip:\n{text}",
                m.name
            );
            assert_eq!(m.name, back.name);
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_machine("machine \"x\" {\n  registers 16\n  bogus 3\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unterminated_string_rejected() {
        let e = parse_machine("machine \"x {").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn unknown_unit_kind_rejected() {
        let e = parse_machine("machine \"x\" { slot { alu fpu } }").unwrap_err();
        assert!(e.message.contains("fpu"));
    }

    #[test]
    fn invalid_machine_rejected_at_build() {
        // Parses fine but has no mem/branch slot → MachineError via build.
        let e = parse_machine("machine \"x\" { registers 16 slot { alu } }").unwrap_err();
        assert!(e.message.contains("mem"));
    }

    #[test]
    fn comments_and_negatives() {
        let e =
            parse_machine("machine \"x\" { registers -4 slot { alu mem branch } }").unwrap_err();
        assert!(e.message.contains("non-negative"));
    }
}
