//! Hand-rolled binary codec for cacheable toolchain artifacts.
//!
//! The persistent artifact cache (`asip_core::cache`) needs to serialize
//! every cached artifact kind — IR modules, profiles, VLIW and scalar
//! programs — and the build environment has no registry access, so there is
//! no `serde`. This module is the self-contained replacement: a tiny
//! little-endian [`Writer`]/[`Reader`] pair, a [`Codec`] trait, and
//! mechanical implementations for every ISA container type. The IR and
//! backend crates implement [`Codec`] for their own types on top of these
//! primitives.
//!
//! # Format discipline
//!
//! * Fixed-width little-endian integers; `f64` as IEEE-754 bits (exact).
//! * Collections as a `u32` count followed by the elements.
//! * Enums as a `u8` tag followed by the variant payload. Tags are part of
//!   the on-disk format: **never renumber an existing tag** — add new ones
//!   and bump `asip_core::cache::FORMAT_VERSION` instead.
//! * Decoding is total: any malformed input yields a [`CodecError`], never
//!   a panic, so a corrupt cache entry degrades to a recompute.
//! * `decode(encode(x)) == x` for every implementation — pinned by the
//!   workspace round-trip property tests.

use crate::code::{Bundle, FuncSym, GlobalSym, MachineOp, VliwProgram};
use crate::custom::{CustomOpDef, PatNode, PatRef};
use crate::hwmodel::ActivityCounts;
use crate::machine::{Encoding, ICacheConfig, MachineDescription, Slot, TargetKind};
use crate::op::{FuKind, Opcode};
use crate::reg::{Operand, Reg};
use crate::scalar::ScalarProgram;
use std::fmt;

/// Decoding failure. Encoding is infallible; decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    Truncated,
    /// An enum tag byte had no matching variant.
    BadTag {
        /// Type being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u32,
    },
    /// A collection length exceeds the remaining input (corrupt count).
    BadLen {
        /// The declared element count.
        len: u32,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A string payload was not valid UTF-8.
    Utf8,
    /// Input continued past the end of the decoded value.
    Trailing {
        /// Unconsumed byte count.
        extra: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("input truncated"),
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            CodecError::BadLen { len, remaining } => {
                write!(f, "length {len} exceeds {remaining} remaining bytes")
            }
            CodecError::Utf8 => f.write_str("invalid UTF-8 in string"),
            CodecError::Trailing { extra } => write!(f, "{extra} trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write raw bytes with a length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// Cursor over encoded bytes; every getter checks bounds.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail with [`CodecError::Trailing`] unless the input is exhausted.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Trailing {
                extra: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i32`.
    pub fn get_i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `bool` (any nonzero byte is `true`).
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.get_u8()? != 0)
    }

    /// Read a collection count, rejecting counts that cannot possibly fit
    /// in the remaining input (each element occupies at least one byte).
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let len = self.get_u32()?;
        if len as usize > self.remaining() {
            return Err(CodecError::BadLen {
                len,
                remaining: self.remaining(),
            });
        }
        Ok(len as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Utf8)
    }

    /// Read length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.get_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read exactly `n` raw bytes (no length prefix) — for fixed-size
    /// fields like magic numbers.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }
}

/// Binary encode/decode for one artifact (or artifact component) type.
///
/// `decode(encode(x)) == x` is the contract; the workspace round-trip
/// property tests pin it for every implementation.
pub trait Codec: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decode one value from `r`, leaving the cursor after it.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encode to a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decode a value that must consume `bytes` exactly.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`], including [`CodecError::Trailing`] when input
    /// remains after the value.
    fn decode_all(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

macro_rules! impl_codec_prim {
    ($($t:ty => $put:ident / $get:ident),* $(,)?) => {$(
        impl Codec for $t {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                r.$get()
            }
        }
    )*};
}

impl_codec_prim!(
    u8 => put_u8 / get_u8,
    u16 => put_u16 / get_u16,
    u32 => put_u32 / get_u32,
    u64 => put_u64 / get_u64,
    i32 => put_i32 / get_i32,
    f64 => put_f64 / get_f64,
    bool => put_bool / get_bool,
);

impl Codec for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.get_str()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::BadTag {
                what: "Option",
                tag: tag.into(),
            }),
        }
    }
}

/// Field-by-field encoding of the simulator's dynamic activity counters
/// (consumed by the memoized Simulate stage's `SimResult` codec).
impl Codec for ActivityCounts {
    fn encode(&self, w: &mut Writer) {
        for v in [
            self.alu_ops,
            self.mul_ops,
            self.div_ops,
            self.mem_ops,
            self.branch_ops,
            self.copy_ops,
            self.custom_ops,
            self.custom_area_executed,
            self.bundles,
            self.fetch_bytes,
            self.idle_slots,
            self.cycles,
        ] {
            w.put_u64(v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ActivityCounts {
            alu_ops: r.get_u64()?,
            mul_ops: r.get_u64()?,
            div_ops: r.get_u64()?,
            mem_ops: r.get_u64()?,
            branch_ops: r.get_u64()?,
            copy_ops: r.get_u64()?,
            custom_ops: r.get_u64()?,
            custom_area_executed: r.get_u64()?,
            bundles: r.get_u64()?,
            fetch_bytes: r.get_u64()?,
            idle_slots: r.get_u64()?,
            cycles: r.get_u64()?,
        })
    }
}

/// Stable wire tag of an opcode. Custom ops carry their id as a payload.
fn opcode_tag(op: Opcode) -> u8 {
    use Opcode::*;
    match op {
        Add => 0,
        Sub => 1,
        And => 2,
        Or => 3,
        Xor => 4,
        Shl => 5,
        Shr => 6,
        Sra => 7,
        Min => 8,
        Max => 9,
        Abs => 10,
        Sxtb => 11,
        Sxth => 12,
        CmpEq => 13,
        CmpNe => 14,
        CmpLt => 15,
        CmpLe => 16,
        CmpGt => 17,
        CmpGe => 18,
        CmpLtu => 19,
        CmpGeu => 20,
        Select => 21,
        Mov => 22,
        Mul => 23,
        MulH => 24,
        Div => 25,
        Rem => 26,
        Ldw => 27,
        Stw => 28,
        Br => 29,
        BrT => 30,
        BrF => 31,
        Call => 32,
        Ret => 33,
        Halt => 34,
        MovFromSp => 35,
        AddSp => 36,
        MovFromLr => 37,
        MovToLr => 38,
        Emit => 39,
        CopyX => 40,
        Nop => 41,
        Custom(_) => 42,
    }
}

impl Codec for Opcode {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(opcode_tag(*self));
        if let Opcode::Custom(id) = self {
            w.put_u16(*id);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        use Opcode::*;
        Ok(match r.get_u8()? {
            0 => Add,
            1 => Sub,
            2 => And,
            3 => Or,
            4 => Xor,
            5 => Shl,
            6 => Shr,
            7 => Sra,
            8 => Min,
            9 => Max,
            10 => Abs,
            11 => Sxtb,
            12 => Sxth,
            13 => CmpEq,
            14 => CmpNe,
            15 => CmpLt,
            16 => CmpLe,
            17 => CmpGt,
            18 => CmpGe,
            19 => CmpLtu,
            20 => CmpGeu,
            21 => Select,
            22 => Mov,
            23 => Mul,
            24 => MulH,
            25 => Div,
            26 => Rem,
            27 => Ldw,
            28 => Stw,
            29 => Br,
            30 => BrT,
            31 => BrF,
            32 => Call,
            33 => Ret,
            34 => Halt,
            35 => MovFromSp,
            36 => AddSp,
            37 => MovFromLr,
            38 => MovToLr,
            39 => Emit,
            40 => CopyX,
            41 => Nop,
            42 => Custom(r.get_u16()?),
            tag => {
                return Err(CodecError::BadTag {
                    what: "Opcode",
                    tag: tag.into(),
                })
            }
        })
    }
}

impl Codec for Reg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.cluster);
        w.put_u16(self.index);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Reg {
            cluster: r.get_u8()?,
            index: r.get_u16()?,
        })
    }
}

impl Codec for Operand {
    fn encode(&self, w: &mut Writer) {
        match self {
            Operand::Reg(reg) => {
                w.put_u8(0);
                reg.encode(w);
            }
            Operand::Imm(v) => {
                w.put_u8(1);
                w.put_i32(*v);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Operand::Reg(Reg::decode(r)?)),
            1 => Ok(Operand::Imm(r.get_i32()?)),
            tag => Err(CodecError::BadTag {
                what: "Operand",
                tag: tag.into(),
            }),
        }
    }
}

impl Codec for MachineOp {
    fn encode(&self, w: &mut Writer) {
        self.opcode.encode(w);
        self.dsts.encode(w);
        self.srcs.encode(w);
        w.put_i32(self.imm);
        w.put_u32(self.target);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MachineOp {
            opcode: Opcode::decode(r)?,
            dsts: Vec::decode(r)?,
            srcs: Vec::decode(r)?,
            imm: r.get_i32()?,
            target: r.get_u32()?,
        })
    }
}

impl Codec for Bundle {
    fn encode(&self, w: &mut Writer) {
        self.slots.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Bundle {
            slots: Vec::decode(r)?,
        })
    }
}

impl Codec for FuncSym {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_u32(self.entry);
        w.put_u32(self.frame_words);
        w.put_u32(self.num_args);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(FuncSym {
            name: r.get_str()?,
            entry: r.get_u32()?,
            frame_words: r.get_u32()?,
            num_args: r.get_u32()?,
        })
    }
}

impl Codec for GlobalSym {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_u32(self.addr);
        w.put_u32(self.words);
        self.init.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(GlobalSym {
            name: r.get_str()?,
            addr: r.get_u32()?,
            words: r.get_u32()?,
            init: Vec::decode(r)?,
        })
    }
}

impl Codec for PatRef {
    fn encode(&self, w: &mut Writer) {
        match self {
            PatRef::Input(i) => {
                w.put_u8(0);
                w.put_u8(*i);
            }
            PatRef::Node(n) => {
                w.put_u8(1);
                w.put_u16(*n);
            }
            PatRef::Const(c) => {
                w.put_u8(2);
                w.put_i32(*c);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(PatRef::Input(r.get_u8()?)),
            1 => Ok(PatRef::Node(r.get_u16()?)),
            2 => Ok(PatRef::Const(r.get_i32()?)),
            tag => Err(CodecError::BadTag {
                what: "PatRef",
                tag: tag.into(),
            }),
        }
    }
}

impl Codec for PatNode {
    fn encode(&self, w: &mut Writer) {
        self.op.encode(w);
        self.a.encode(w);
        self.b.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PatNode {
            op: Opcode::decode(r)?,
            a: PatRef::decode(r)?,
            b: PatRef::decode(r)?,
        })
    }
}

impl Codec for CustomOpDef {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_u8(self.num_inputs);
        self.nodes.encode(w);
        self.outputs.encode(w);
        w.put_u32(self.latency);
        w.put_f64(self.area);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CustomOpDef {
            name: r.get_str()?,
            num_inputs: r.get_u8()?,
            nodes: Vec::decode(r)?,
            outputs: Vec::decode(r)?,
            latency: r.get_u32()?,
            area: r.get_f64()?,
        })
    }
}

impl Codec for FuKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            FuKind::Alu => 0,
            FuKind::Mul => 1,
            FuKind::Mem => 2,
            FuKind::Branch => 3,
            FuKind::Custom => 4,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => FuKind::Alu,
            1 => FuKind::Mul,
            2 => FuKind::Mem,
            3 => FuKind::Branch,
            4 => FuKind::Custom,
            tag => {
                return Err(CodecError::BadTag {
                    what: "FuKind",
                    tag: tag.into(),
                })
            }
        })
    }
}

impl Codec for TargetKind {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            TargetKind::Vliw => 0,
            TargetKind::Scalar => 1,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => TargetKind::Vliw,
            1 => TargetKind::Scalar,
            tag => {
                return Err(CodecError::BadTag {
                    what: "TargetKind",
                    tag: tag.into(),
                })
            }
        })
    }
}

impl Codec for Encoding {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Encoding::Uncompressed => 0,
            Encoding::StopBit => 1,
            Encoding::Compact16 => 2,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => Encoding::Uncompressed,
            1 => Encoding::StopBit,
            2 => Encoding::Compact16,
            tag => {
                return Err(CodecError::BadTag {
                    what: "Encoding",
                    tag: tag.into(),
                })
            }
        })
    }
}

/// Slots travel as their functional-unit kind list; decoding rebuilds the
/// slot through [`Slot::new`], whose sort + dedup is idempotent on the
/// already-canonical encoded list, so round-trips are exact.
impl Codec for Slot {
    fn encode(&self, w: &mut Writer) {
        self.kinds().to_vec().encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let kinds: Vec<FuKind> = Vec::decode(r)?;
        Ok(Slot::new(&kinds))
    }
}

impl Codec for ICacheConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.size_bytes);
        w.put_u32(self.line_bytes);
        w.put_u32(self.ways);
        w.put_u32(self.miss_penalty);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ICacheConfig {
            size_bytes: r.get_u32()?,
            line_bytes: r.get_u32()?,
            ways: r.get_u32()?,
            miss_penalty: r.get_u32()?,
        })
    }
}

/// The complete machine table, custom operations included — unlike the
/// description DSL ([`crate::desc::print_machine`]), which deliberately
/// omits selected custom ops, this encoding is lossless: it is what lets
/// an evaluation request (and an ISE-extended machine inside an outcome)
/// cross a process boundary byte-exactly.
impl Codec for MachineDescription {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        self.target.encode(w);
        w.put_u8(self.clusters);
        w.put_u16(self.regs_per_cluster);
        self.slots.encode(w);
        w.put_u32(self.lat_mul);
        w.put_u32(self.lat_div);
        w.put_u32(self.lat_mem);
        w.put_u32(self.branch_penalty);
        w.put_bool(self.forwarding);
        w.put_u32(self.copy_latency);
        self.encoding.encode(w);
        self.icache.encode(w);
        w.put_bool(self.gate_idle_slots);
        self.custom_ops.encode(w);
        w.put_bool(self.compat_control);
        w.put_u32(self.dmem_words);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MachineDescription {
            name: r.get_str()?,
            target: TargetKind::decode(r)?,
            clusters: r.get_u8()?,
            regs_per_cluster: r.get_u16()?,
            slots: Vec::decode(r)?,
            lat_mul: r.get_u32()?,
            lat_div: r.get_u32()?,
            lat_mem: r.get_u32()?,
            branch_penalty: r.get_u32()?,
            forwarding: r.get_bool()?,
            copy_latency: r.get_u32()?,
            encoding: Encoding::decode(r)?,
            icache: Option::decode(r)?,
            gate_idle_slots: r.get_bool()?,
            custom_ops: Vec::decode(r)?,
            compat_control: r.get_bool()?,
            dmem_words: r.get_u32()?,
        })
    }
}

impl Codec for VliwProgram {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.machine);
        self.bundles.encode(w);
        self.functions.encode(w);
        self.globals.encode(w);
        self.custom_ops.encode(w);
        w.put_u32(self.entry_func);
        w.put_u32(self.data_words);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(VliwProgram {
            machine: r.get_str()?,
            bundles: Vec::decode(r)?,
            functions: Vec::decode(r)?,
            globals: Vec::decode(r)?,
            custom_ops: Vec::decode(r)?,
            entry_func: r.get_u32()?,
            data_words: r.get_u32()?,
        })
    }
}

impl Codec for ScalarProgram {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.machine);
        self.insts.encode(w);
        self.functions.encode(w);
        self.globals.encode(w);
        self.custom_ops.encode(w);
        w.put_u32(self.entry_func);
        w.put_u32(self.data_words);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ScalarProgram {
            machine: r.get_str()?,
            insts: Vec::decode(r)?,
            functions: Vec::decode(r)?,
            globals: Vec::decode(r)?,
            custom_ops: Vec::decode(r)?,
            entry_func: r.get_u32()?,
            data_words: r.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::custom::{mac_op, sat_add16};

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.encode_to_vec();
        let back = T::decode_all(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u16::MAX);
        roundtrip(&0xdead_beefu32);
        roundtrip(&u64::MAX);
        roundtrip(&i32::MIN);
        roundtrip(&(-0.0f64));
        roundtrip(&f64::MAX);
        roundtrip(&true);
        roundtrip(&String::from("héllo"));
        roundtrip(&vec![1i32, -2, 3]);
        roundtrip(&Some(vec![String::from("x")]));
        roundtrip(&Option::<u32>::None);
    }

    #[test]
    fn every_opcode_roundtrips() {
        for tag in 0..=42u8 {
            let mut w = Writer::new();
            w.put_u8(tag);
            if tag == 42 {
                w.put_u16(7);
            }
            let bytes = w.into_bytes();
            let op = Opcode::decode_all(&bytes).expect("valid tag");
            assert_eq!(op.encode_to_vec(), bytes, "{op} must re-encode identically");
        }
        assert!(matches!(
            Opcode::decode_all(&[43]),
            Err(CodecError::BadTag { what: "Opcode", .. })
        ));
    }

    #[test]
    fn machine_op_and_bundle_roundtrip() {
        let op = MachineOp {
            opcode: Opcode::Ldw,
            dsts: vec![Reg::new(1, 7)],
            srcs: vec![Operand::Reg(Reg::ZERO), Operand::Imm(-3)],
            imm: 42,
            target: 9,
        };
        roundtrip(&op);
        roundtrip(&Bundle {
            slots: vec![None, Some(op), None],
        });
    }

    #[test]
    fn custom_op_defs_roundtrip() {
        roundtrip(&mac_op());
        roundtrip(&sat_add16());
    }

    #[test]
    fn programs_roundtrip() {
        let p = VliwProgram {
            machine: "demo".into(),
            bundles: vec![Bundle::empty(2)],
            functions: vec![FuncSym {
                name: "main".into(),
                entry: 0,
                frame_words: 4,
                num_args: 1,
            }],
            globals: vec![GlobalSym {
                name: "g".into(),
                addr: 16,
                words: 3,
                init: vec![1, 2],
            }],
            custom_ops: vec![mac_op()],
            entry_func: 0,
            data_words: 19,
        };
        roundtrip(&p);
        let s = ScalarProgram {
            machine: "demo".into(),
            insts: vec![MachineOp::nop()],
            functions: p.functions.clone(),
            globals: p.globals.clone(),
            custom_ops: vec![sat_add16()],
            entry_func: 0,
            data_words: 19,
        };
        roundtrip(&s);
    }

    #[test]
    fn machine_descriptions_roundtrip_custom_ops_included() {
        for mut m in MachineDescription::all_presets() {
            roundtrip(&m);
            // Unlike the DSL, selected custom ops survive the encoding.
            m.custom_ops.push(mac_op());
            roundtrip(&m);
        }
        assert!(MachineDescription::decode_all(&[0xff; 3]).is_err());
    }

    #[test]
    fn malformed_input_is_an_error_never_a_panic() {
        assert_eq!(u32::decode_all(&[1, 2]), Err(CodecError::Truncated));
        assert_eq!(
            u8::decode_all(&[1, 2]),
            Err(CodecError::Trailing { extra: 1 })
        );
        // A huge collection count cannot allocate: rejected up front.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        assert!(matches!(
            Vec::<u64>::decode_all(&w.into_bytes()),
            Err(CodecError::BadLen { .. })
        ));
        // Invalid UTF-8.
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        assert_eq!(String::decode_all(&w.into_bytes()), Err(CodecError::Utf8));
    }
}
