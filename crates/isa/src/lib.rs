//! # asip-isa — table-driven machine descriptions for customized embedded CPUs
//!
//! This crate is the foundation of an ASIP (application-specific
//! instruction-set processor) toolchain reproducing *"Customized
//! Instruction-Sets for Embedded Processors"* (J. A. Fisher, DAC 1999). It
//! defines:
//!
//! * the **base operation repertoire** shared by a whole architecture family
//!   and its exact arithmetic semantics ([`op`]);
//! * **machine descriptions** — one table per family member, covering every
//!   customization axis the paper lists in §1.2: issue slots and functional
//!   units, register-file size, clusters, latencies, custom operations,
//!   idle-slot gating, and instruction encoding ([`machine`], [`desc`]);
//! * **executable custom operations** — dataflow graphs of base ops collapsed
//!   into single instructions, evaluable by any simulator ([`custom`]);
//! * **machine code** containers with static validation ([`code`]);
//! * **encoding** models and a lossless bitstream codec ([`encoding`]);
//! * first-order **hardware models** for area, cycle time and energy
//!   ([`hwmodel`]).
//!
//! Everything downstream — compiler backend, simulator, custom-instruction
//! selection, design-space exploration, binary translation — is written
//! against these tables and nothing else, which is precisely the "mass
//! customization of toolchains" discipline the paper prescribes (§3.1).
//!
//! ## Example
//!
//! ```
//! use asip_isa::{FuKind, MachineDescription, Opcode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Describe a 3-issue family member with a slow multiplier.
//! let m = MachineDescription::builder("demo3")
//!     .registers(24)
//!     .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
//!     .slot(&[FuKind::Alu, FuKind::Mul])
//!     .slot(&[FuKind::Alu])
//!     .lat_mul(3)
//!     .build()?;
//! assert_eq!(m.issue_width(), 3);
//! assert_eq!(m.latency(Opcode::Mul), 3);
//!
//! // The description round-trips through the text DSL.
//! let text = asip_isa::desc::print_machine(&m);
//! let back = asip_isa::desc::parse_machine(&text)?;
//! assert!(asip_isa::desc::same_architecture(&m, &back));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod code;
pub mod codec;
pub mod custom;
pub mod desc;
pub mod encoding;
pub mod hwmodel;
pub mod machine;
pub mod op;
pub mod reg;
pub mod scalar;

pub use code::{Bundle, CodeError, FuncSym, GlobalSym, MachineOp, VliwProgram};
pub use codec::{Codec, CodecError, Reader, Writer};
pub use custom::{CustomOpDef, CustomOpError, PatNode, PatRef};
pub use hwmodel::{ActivityCounts, AreaBreakdown, CycleTime, EnergyBreakdown};
pub use machine::{Encoding, ICacheConfig, MachineDescription, MachineError, Slot, TargetKind};
pub use op::{EvalError, FuKind, LatClass, Opcode};
pub use reg::{Operand, Reg};
pub use scalar::{ScalarLayout, ScalarProgram};
