//! The operation repertoire shared by every member of an architecture family.
//!
//! A customized-ISA family (in the sense of Fisher's DAC-99 paper) shares one
//! *base* operation set; family members differ in how many of each functional
//! unit they expose, their latencies, register files, clusters, encodings and
//! in which *custom* operations (selected per application) they add. This
//! module defines that base repertoire together with its exact arithmetic
//! semantics, which are reused verbatim by the IR constant folder, the
//! custom-operation datapath evaluator and the cycle-level simulator — so the
//! three can never disagree about what an operation computes.

use std::fmt;

/// A machine-level operation of the base ISA (plus the `Custom` escape).
///
/// Arithmetic is 32-bit two's complement with wrapping overflow, matching the
/// embedded cores of the paper's era. Shift counts are taken modulo 32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    // --- integer ALU (1-cycle class) ---
    /// `dst = a + b` (wrapping).
    Add,
    /// `dst = a - b` (wrapping).
    Sub,
    /// `dst = a & b`.
    And,
    /// `dst = a | b`.
    Or,
    /// `dst = a ^ b`.
    Xor,
    /// `dst = a << (b & 31)`.
    Shl,
    /// `dst = (a as u32) >> (b & 31)` — logical right shift.
    Shr,
    /// `dst = a >> (b & 31)` — arithmetic right shift.
    Sra,
    /// `dst = min(a, b)` signed.
    Min,
    /// `dst = max(a, b)` signed.
    Max,
    /// `dst = |a|` (wrapping; `|i32::MIN| == i32::MIN`).
    Abs,
    /// Sign-extend the low 8 bits of `a`.
    Sxtb,
    /// Sign-extend the low 16 bits of `a`.
    Sxth,
    /// `dst = (a == b) as i32`.
    CmpEq,
    /// `dst = (a != b) as i32`.
    CmpNe,
    /// `dst = (a < b) as i32` signed.
    CmpLt,
    /// `dst = (a <= b) as i32` signed.
    CmpLe,
    /// `dst = (a > b) as i32` signed.
    CmpGt,
    /// `dst = (a >= b) as i32` signed.
    CmpGe,
    /// `dst = ((a as u32) < (b as u32)) as i32`.
    CmpLtu,
    /// `dst = ((a as u32) >= (b as u32)) as i32`.
    CmpGeu,
    /// `dst = if c != 0 { a } else { b }` — the if-conversion workhorse.
    Select,
    /// `dst = a` (register move or immediate load).
    Mov,

    // --- multiplier unit (pipelined, configurable latency) ---
    /// `dst = a * b` (wrapping, low 32 bits).
    Mul,
    /// `dst = high 32 bits of (a as i64 * b as i64)`.
    MulH,

    // --- divide unit (iterative, long latency; hosted on the Mul FU) ---
    /// `dst = a / b` truncating like C99. Division by zero traps the machine.
    Div,
    /// `dst = a % b` truncating like C99. Division by zero traps the machine.
    Rem,

    // --- memory unit (word-addressed; one word = one i32) ---
    /// `dst = mem[a + off]`.
    Ldw,
    /// `mem[b + off] = a`.
    Stw,

    // --- branch unit ---
    /// Unconditional jump to bundle `target`.
    Br,
    /// Jump to `target` when `a != 0`.
    BrT,
    /// Jump to `target` when `a == 0`.
    BrF,
    /// Call function `target` (by function id): `LR <- return bundle`.
    Call,
    /// Return: jump to `LR`.
    Ret,
    /// Stop the machine; simulation ends successfully.
    Halt,

    // --- special registers & I/O ---
    /// `dst = SP` (read the stack pointer into a GPR).
    MovFromSp,
    /// `SP += imm` (frame push/pop).
    AddSp,
    /// `dst = LR` (spill the link register around nested calls).
    MovFromLr,
    /// `LR = a` (restore the link register).
    MovToLr,
    /// Append `a` to the simulator's output stream (the TinyC `emit` builtin).
    Emit,

    // --- inter-cluster transfer ---
    /// Copy a register from another cluster into this one.
    CopyX,

    /// An application-specific operation selected by the ISE engine; the
    /// payload indexes the program's custom-operation library.
    Custom(u16),

    /// Empty issue slot.
    Nop,
}

/// Functional-unit kinds a slot can host.
///
/// The slot layout of a [`crate::MachineDescription`] maps each issue slot to
/// a set of these; an operation may only be scheduled on a slot hosting its
/// [`Opcode::fu_kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Simple integer ALU (also executes compares, selects, moves and the
    /// special-register transfers).
    Alu,
    /// Pipelined multiplier; also hosts the iterative divider.
    Mul,
    /// Load/store unit.
    Mem,
    /// Branch/call/return unit (also `Emit` and `Halt`).
    Branch,
    /// Application-specific custom datapath(s).
    Custom,
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::Alu => "alu",
            FuKind::Mul => "mul",
            FuKind::Mem => "mem",
            FuKind::Branch => "branch",
            FuKind::Custom => "custom",
        };
        f.write_str(s)
    }
}

impl FuKind {
    /// All functional-unit kinds, in display order.
    pub const ALL: [FuKind; 5] = [
        FuKind::Alu,
        FuKind::Mul,
        FuKind::Mem,
        FuKind::Branch,
        FuKind::Custom,
    ];

    /// Parse the lowercase name used by the machine-description DSL.
    pub fn from_name(s: &str) -> Option<FuKind> {
        Some(match s {
            "alu" => FuKind::Alu,
            "mul" => FuKind::Mul,
            "mem" => FuKind::Mem,
            "branch" => FuKind::Branch,
            "custom" => FuKind::Custom,
            _ => return None,
        })
    }
}

/// Latency classes used by the per-machine latency table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatClass {
    /// One-cycle ALU class.
    Alu,
    /// Multiplier class.
    Mul,
    /// Divider class.
    Div,
    /// Load class (stores complete in one cycle into the store buffer).
    Mem,
    /// Branch class.
    Branch,
    /// Inter-cluster copy class.
    Copy,
    /// Custom operation — latency comes from the custom-op definition.
    Custom,
}

/// Error produced when evaluating an operation's arithmetic semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// Integer division or remainder by zero.
    DivideByZero,
    /// The opcode has no pure arithmetic semantics (memory, control, ...).
    NotArithmetic,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::DivideByZero => f.write_str("integer division by zero"),
            EvalError::NotArithmetic => f.write_str("opcode has no arithmetic semantics"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Opcode {
    /// The functional-unit kind required to execute this operation.
    pub fn fu_kind(self) -> FuKind {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Shl | Shr | Sra | Min | Max | Abs | Sxtb | Sxth
            | CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe | CmpLtu | CmpGeu | Select | Mov
            | MovFromSp | AddSp | MovFromLr | MovToLr | CopyX | Nop => FuKind::Alu,
            Mul | MulH | Div | Rem => FuKind::Mul,
            Ldw | Stw => FuKind::Mem,
            Br | BrT | BrF | Call | Ret | Halt | Emit => FuKind::Branch,
            Custom(_) => FuKind::Custom,
        }
    }

    /// The latency class looked up in a machine's latency table.
    pub fn lat_class(self) -> LatClass {
        use Opcode::*;
        match self {
            Mul | MulH => LatClass::Mul,
            Div | Rem => LatClass::Div,
            Ldw | Stw => LatClass::Mem,
            Br | BrT | BrF | Call | Ret | Halt => LatClass::Branch,
            CopyX => LatClass::Copy,
            Custom(_) => LatClass::Custom,
            _ => LatClass::Alu,
        }
    }

    /// Number of register/immediate value operands the opcode consumes
    /// (excluding branch targets and memory offsets, which are immediates
    /// attached to the machine operation itself).
    pub fn num_srcs(self) -> usize {
        use Opcode::*;
        match self {
            Nop | Br | Call | Ret | Halt | AddSp | MovFromSp | MovFromLr => 0,
            Abs | Sxtb | Sxth | Mov | BrT | BrF | Emit | MovToLr | CopyX | Ldw => 1,
            Select => 3,
            Stw => 2,                // value, base
            Custom(_) => usize::MAX, // variable; checked against the definition
            _ => 2,
        }
    }

    /// Whether the opcode writes a general-purpose destination register.
    pub fn has_dst(self) -> bool {
        use Opcode::*;
        !matches!(
            self,
            Stw | Br | BrT | BrF | Call | Ret | Halt | Emit | AddSp | MovToLr | Nop
        ) || matches!(self, Custom(_))
    }

    /// Whether the two source operands may be swapped without changing the
    /// result — used by canonicalization and value numbering.
    pub fn is_commutative(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Add | And | Or | Xor | Min | Max | Mul | MulH | CmpEq | CmpNe
        )
    }

    /// Whether the operation is free of side effects and traps, and may
    /// therefore be executed speculatively (moved above a branch).
    pub fn is_speculable(self) -> bool {
        use Opcode::*;
        match self {
            Div | Rem => false, // may trap on zero
            Ldw => false,       // may fault on a wild address
            Stw | Br | BrT | BrF | Call | Ret | Halt | Emit | AddSp | MovToLr | CopyX => false,
            Custom(_) => false, // conservatively: may contain div
            _ => true,
        }
    }

    /// Whether this is a control-transfer operation (at most one per bundle,
    /// always terminating the bundle's semantic effect).
    pub fn is_control(self) -> bool {
        use Opcode::*;
        matches!(self, Br | BrT | BrF | Call | Ret | Halt)
    }

    /// Whether the machine operation carries a branch-target field.
    pub fn has_target(self) -> bool {
        use Opcode::*;
        matches!(self, Br | BrT | BrF | Call)
    }

    /// Whether the machine operation carries an immediate field (memory
    /// offset, SP adjustment, or immediate operand for `Mov`).
    pub fn has_imm_field(self) -> bool {
        use Opcode::*;
        matches!(self, Ldw | Stw | AddSp)
    }

    /// Mnemonic used in assembly listings and the description DSL.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Sra => "sra",
            Min => "min",
            Max => "max",
            Abs => "abs",
            Sxtb => "sxtb",
            Sxth => "sxth",
            CmpEq => "cmpeq",
            CmpNe => "cmpne",
            CmpLt => "cmplt",
            CmpLe => "cmple",
            CmpGt => "cmpgt",
            CmpGe => "cmpge",
            CmpLtu => "cmpltu",
            CmpGeu => "cmpgeu",
            Select => "slct",
            Mov => "mov",
            Mul => "mul",
            MulH => "mulh",
            Div => "div",
            Rem => "rem",
            Ldw => "ldw",
            Stw => "stw",
            Br => "br",
            BrT => "brt",
            BrF => "brf",
            Call => "call",
            Ret => "ret",
            Halt => "halt",
            MovFromSp => "rdsp",
            AddSp => "addsp",
            MovFromLr => "rdlr",
            MovToLr => "wrlr",
            Emit => "emit",
            CopyX => "copyx",
            Custom(_) => "cust",
            Nop => "nop",
        }
    }

    /// The pure binary ALU/MUL/DIV opcodes — the candidate node set for
    /// custom-instruction pattern enumeration.
    pub const BINARY_ARITH: [Opcode; 22] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Sra,
        Opcode::Min,
        Opcode::Max,
        Opcode::CmpEq,
        Opcode::CmpNe,
        Opcode::CmpLt,
        Opcode::CmpLe,
        Opcode::CmpGt,
        Opcode::CmpGe,
        Opcode::CmpLtu,
        Opcode::CmpGeu,
        Opcode::Mul,
        Opcode::MulH,
        Opcode::Div,
        Opcode::Rem,
    ];

    /// Evaluate a two-operand arithmetic opcode on concrete values.
    ///
    /// This is the single source of truth for operation semantics: the IR
    /// constant folder, the custom-datapath evaluator and the simulator all
    /// call it.
    ///
    /// # Errors
    ///
    /// [`EvalError::DivideByZero`] for `Div`/`Rem` with `b == 0`;
    /// [`EvalError::NotArithmetic`] if the opcode is not a two-operand
    /// arithmetic operation.
    pub fn eval2(self, a: i32, b: i32) -> Result<i32, EvalError> {
        use Opcode::*;
        Ok(match self {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            And => a & b,
            Or => a | b,
            Xor => a ^ b,
            Shl => a.wrapping_shl(b as u32 & 31),
            Shr => ((a as u32).wrapping_shr(b as u32 & 31)) as i32,
            Sra => a.wrapping_shr(b as u32 & 31),
            Min => a.min(b),
            Max => a.max(b),
            CmpEq => (a == b) as i32,
            CmpNe => (a != b) as i32,
            CmpLt => (a < b) as i32,
            CmpLe => (a <= b) as i32,
            CmpGt => (a > b) as i32,
            CmpGe => (a >= b) as i32,
            CmpLtu => ((a as u32) < (b as u32)) as i32,
            CmpGeu => ((a as u32) >= (b as u32)) as i32,
            Mul => a.wrapping_mul(b),
            MulH => ((a as i64).wrapping_mul(b as i64) >> 32) as i32,
            Div => {
                if b == 0 {
                    return Err(EvalError::DivideByZero);
                }
                a.wrapping_div(b)
            }
            Rem => {
                if b == 0 {
                    return Err(EvalError::DivideByZero);
                }
                a.wrapping_rem(b)
            }
            _ => return Err(EvalError::NotArithmetic),
        })
    }

    /// Evaluate a one-operand arithmetic opcode.
    ///
    /// # Errors
    ///
    /// [`EvalError::NotArithmetic`] if the opcode is not a unary operation.
    pub fn eval1(self, a: i32) -> Result<i32, EvalError> {
        use Opcode::*;
        Ok(match self {
            Abs => a.wrapping_abs(),
            Sxtb => a as i8 as i32,
            Sxth => a as i16 as i32,
            Mov => a,
            _ => return Err(EvalError::NotArithmetic),
        })
    }

    /// Hardware latency of this operation *as a custom-datapath node*, in
    /// sub-cycle delay units (1.0 = one ALU delay). Used to estimate the
    /// pipelined latency and the area of a selected custom operation.
    pub fn datapath_delay(self) -> f64 {
        use Opcode::*;
        match self {
            And | Or | Xor | Sxtb | Sxth | Mov | Select => 0.35,
            Add | Sub | Min | Max | Abs | CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe
            | CmpLtu | CmpGeu => 1.0,
            Shl | Shr | Sra => 0.6,
            Mul | MulH => 1.9,
            Div | Rem => 10.0,
            _ => 1.0,
        }
    }

    /// Relative silicon area of this operation as a custom-datapath node
    /// (1.0 = one 32-bit adder).
    pub fn datapath_area(self) -> f64 {
        use Opcode::*;
        match self {
            And | Or | Xor | Sxtb | Sxth | Mov => 0.15,
            Select => 0.25,
            Add | Sub | Abs => 1.0,
            Min | Max => 1.3,
            CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe | CmpLtu | CmpGeu => 0.7,
            Shl | Shr | Sra => 1.6,
            Mul | MulH => 9.0,
            Div | Rem => 12.0,
            _ => 1.0,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Opcode::Custom(k) = self {
            write!(f, "cust{k}")
        } else {
            f.write_str(self.mnemonic())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval2_basic_arithmetic() {
        assert_eq!(Opcode::Add.eval2(2, 3), Ok(5));
        assert_eq!(Opcode::Sub.eval2(2, 3), Ok(-1));
        assert_eq!(Opcode::Mul.eval2(-4, 3), Ok(-12));
        assert_eq!(Opcode::Add.eval2(i32::MAX, 1), Ok(i32::MIN));
    }

    #[test]
    fn eval2_shifts_mask_count() {
        assert_eq!(Opcode::Shl.eval2(1, 33), Ok(2));
        assert_eq!(Opcode::Shr.eval2(-1, 28), Ok(0xF));
        assert_eq!(Opcode::Sra.eval2(-8, 2), Ok(-2));
    }

    #[test]
    fn eval2_unsigned_compares() {
        assert_eq!(Opcode::CmpLtu.eval2(-1, 1), Ok(0)); // 0xFFFF_FFFF < 1 is false
        assert_eq!(Opcode::CmpGeu.eval2(-1, 1), Ok(1));
        assert_eq!(Opcode::CmpLt.eval2(-1, 1), Ok(1));
    }

    #[test]
    fn eval2_division_semantics() {
        assert_eq!(Opcode::Div.eval2(7, 2), Ok(3));
        assert_eq!(Opcode::Div.eval2(-7, 2), Ok(-3)); // C99 truncation
        assert_eq!(Opcode::Rem.eval2(-7, 2), Ok(-1));
        assert_eq!(Opcode::Div.eval2(1, 0), Err(EvalError::DivideByZero));
        assert_eq!(Opcode::Rem.eval2(1, 0), Err(EvalError::DivideByZero));
        // i32::MIN / -1 must not panic.
        assert_eq!(Opcode::Div.eval2(i32::MIN, -1), Ok(i32::MIN));
    }

    #[test]
    fn eval2_mulh() {
        assert_eq!(Opcode::MulH.eval2(1 << 20, 1 << 20), Ok(1 << 8));
        assert_eq!(Opcode::MulH.eval2(-1, -1), Ok(0));
    }

    #[test]
    fn eval1_unary() {
        assert_eq!(Opcode::Abs.eval1(-5), Ok(5));
        assert_eq!(Opcode::Abs.eval1(i32::MIN), Ok(i32::MIN));
        assert_eq!(Opcode::Sxtb.eval1(0x1FF), Ok(-1));
        assert_eq!(Opcode::Sxth.eval1(0x1_FFFF), Ok(-1));
        assert_eq!(Opcode::Mov.eval1(42), Ok(42));
        assert_eq!(Opcode::Add.eval1(1), Err(EvalError::NotArithmetic));
    }

    #[test]
    fn commutativity_is_sound() {
        for op in Opcode::BINARY_ARITH {
            if op.is_commutative() {
                for (a, b) in [(3, 5), (-7, 2), (i32::MIN, -1), (0, 9)] {
                    assert_eq!(op.eval2(a, b), op.eval2(b, a), "{op} not commutative");
                }
            }
        }
    }

    #[test]
    fn fu_kind_classification() {
        assert_eq!(Opcode::Add.fu_kind(), FuKind::Alu);
        assert_eq!(Opcode::Mul.fu_kind(), FuKind::Mul);
        assert_eq!(Opcode::Div.fu_kind(), FuKind::Mul);
        assert_eq!(Opcode::Ldw.fu_kind(), FuKind::Mem);
        assert_eq!(Opcode::Br.fu_kind(), FuKind::Branch);
        assert_eq!(Opcode::Custom(3).fu_kind(), FuKind::Custom);
    }

    #[test]
    fn speculability_excludes_side_effects() {
        assert!(Opcode::Add.is_speculable());
        assert!(Opcode::Select.is_speculable());
        assert!(!Opcode::Div.is_speculable());
        assert!(!Opcode::Ldw.is_speculable());
        assert!(!Opcode::Stw.is_speculable());
        assert!(!Opcode::Emit.is_speculable());
    }

    #[test]
    fn dst_and_src_arity() {
        assert!(Opcode::Add.has_dst());
        assert!(!Opcode::Stw.has_dst());
        assert!(!Opcode::Br.has_dst());
        assert!(Opcode::Custom(0).has_dst());
        assert_eq!(Opcode::Select.num_srcs(), 3);
        assert_eq!(Opcode::Stw.num_srcs(), 2);
        assert_eq!(Opcode::Ldw.num_srcs(), 1);
    }

    #[test]
    fn fukind_name_roundtrip() {
        for k in FuKind::ALL {
            assert_eq!(FuKind::from_name(&k.to_string()), Some(k));
        }
        assert_eq!(FuKind::from_name("bogus"), None);
    }
}
