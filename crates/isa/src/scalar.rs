//! Machine-code container for scalar ([`TargetKind::Scalar`]) targets.
//!
//! A scalar binary is a *linear* instruction stream: one [`MachineOp`] per
//! program point, no issue bundles, no encoded width. This is exactly the
//! paper's §2.2 "binary-compatible" property — the same stream runs on the
//! 1-issue `scalar1` and the 2-issue `scalar2`, because pairing happens in
//! the hardware, not in the encoding. Branch targets are instruction
//! indices; calls carry function ids, like
//! [`VliwProgram`](crate::code::VliwProgram).

use crate::code::{CodeError, FuncSym, GlobalSym, MachineOp};
use crate::custom::CustomOpDef;
use crate::encoding::compact_eligible;
use crate::machine::{Encoding, MachineDescription, TargetKind};
use crate::op::Opcode;

/// Encoded size in bytes of one scalar instruction under `enc`.
///
/// Scalar code has no bundle structure, so [`Encoding::Uncompressed`] and
/// [`Encoding::StopBit`] both cost one 32-bit word per instruction;
/// [`Encoding::Compact16`] halves eligible instructions (Thumb/RVC style).
pub fn scalar_inst_bytes(op: &MachineOp, enc: Encoding) -> u32 {
    match enc {
        Encoding::Uncompressed | Encoding::StopBit => 4,
        Encoding::Compact16 => {
            if compact_eligible(op) {
                2
            } else {
                4
            }
        }
    }
}

/// Byte layout of a scalar program in instruction memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarLayout {
    /// Byte address of each instruction, in program order.
    pub inst_addr: Vec<u32>,
    /// Total code bytes.
    pub total_bytes: u32,
}

/// A complete linked scalar executable for one machine description.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScalarProgram {
    /// Name of the machine description this program was compiled for.
    pub machine: String,
    /// The linear instruction stream (branch targets index into it).
    pub insts: Vec<MachineOp>,
    /// Function directory (calls use indices into this table).
    pub functions: Vec<FuncSym>,
    /// Global data directory.
    pub globals: Vec<GlobalSym>,
    /// Custom operations referenced by `Opcode::Custom` ids in the code.
    pub custom_ops: Vec<CustomOpDef>,
    /// Index into `functions` of the entry function (`main`).
    pub entry_func: u32,
    /// Total words of static data (globals are below this watermark).
    pub data_words: u32,
}

impl ScalarProgram {
    /// Number of instructions (NOP fillers included).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Executable (non-NOP) instruction count.
    pub fn total_ops(&self) -> usize {
        self.insts
            .iter()
            .filter(|op| op.opcode != Opcode::Nop)
            .count()
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&FuncSym> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalSym> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Compute the byte layout under `enc`.
    pub fn layout(&self, enc: Encoding) -> ScalarLayout {
        let mut addr = 0u32;
        let mut inst_addr = Vec::with_capacity(self.insts.len());
        for op in &self.insts {
            inst_addr.push(addr);
            addr += scalar_inst_bytes(op, enc);
        }
        ScalarLayout {
            inst_addr,
            total_bytes: addr,
        }
    }

    /// Code size in bytes under a specific encoding scheme.
    pub fn code_bytes(&self, enc: Encoding) -> u32 {
        self.layout(enc).total_bytes
    }

    /// Statically verify the program against a machine description.
    ///
    /// Mirrors [`VliwProgram::validate`]: the toolchain's final safety net
    /// before simulation. Scalar code additionally requires a single-cluster
    /// register file and a machine whose units cover every opcode used.
    ///
    /// # Errors
    ///
    /// The first [`CodeError`] encountered.
    ///
    /// [`VliwProgram::validate`]: crate::code::VliwProgram::validate
    pub fn validate(&self, m: &MachineDescription) -> Result<(), CodeError> {
        if self.entry_func as usize >= self.functions.len() {
            return Err(CodeError::BadEntry);
        }
        for (fi, func) in self.functions.iter().enumerate() {
            if func.entry as usize >= self.insts.len() {
                return Err(CodeError::BadFuncEntry {
                    func: fi,
                    entry: func.entry,
                });
            }
        }
        for (i, op) in self.insts.iter().enumerate() {
            if !m.has_fu(op.opcode.fu_kind()) {
                return Err(CodeError::BadSlot {
                    bundle: i,
                    slot: 0,
                    opcode: op.opcode.to_string(),
                });
            }
            if let Opcode::Custom(id) = op.opcode {
                if self.custom_ops.get(id as usize).is_none() {
                    return Err(CodeError::BadCustomId { bundle: i, id });
                }
            }
            for r in op.reads().chain(op.dsts.iter().copied()) {
                if r.cluster != 0 || r.index >= m.regs_per_cluster {
                    return Err(CodeError::BadReg { bundle: i, reg: r });
                }
            }
            match op.opcode {
                Opcode::Br | Opcode::BrT | Opcode::BrF
                    if op.target as usize >= self.insts.len() =>
                {
                    return Err(CodeError::BadTarget {
                        bundle: i,
                        target: op.target,
                    });
                }
                Opcode::Call if op.target as usize >= self.functions.len() => {
                    return Err(CodeError::BadCallee {
                        bundle: i,
                        target: op.target,
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Produce a human-readable assembly listing.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (fi, func) in self.functions.iter().enumerate() {
            let _ = writeln!(
                s,
                "; fn {} (id {fi}) entry @{} frame {} args {}",
                func.name, func.entry, func.frame_words, func.num_args
            );
        }
        for (i, op) in self.insts.iter().enumerate() {
            if let Some(func) = self.functions.iter().find(|f| f.entry as usize == i) {
                let _ = writeln!(s, "{}:", func.name);
            }
            let _ = writeln!(s, "{i:5}: {op}");
        }
        s
    }
}

/// Flatten a width-1 [`VliwProgram`] into a [`ScalarProgram`].
///
/// The scalar backend schedules against a 1-slot view of the machine, so
/// every bundle carries at most one operation and bundle indices equal
/// instruction indices — branch targets transfer unchanged. Empty bundles
/// (block-alignment padding) become explicit NOPs so every block keeps an
/// address.
///
/// [`VliwProgram`]: crate::code::VliwProgram
pub fn from_width1(prog: &crate::code::VliwProgram, target: &MachineDescription) -> ScalarProgram {
    debug_assert_eq!(target.target, TargetKind::Scalar);
    let insts = prog
        .bundles
        .iter()
        .map(|b| {
            debug_assert!(b.occupancy() <= 1, "width-1 schedule has one op per bundle");
            b.ops()
                .next()
                .map(|(_, op)| op.clone())
                .unwrap_or_else(MachineOp::nop)
        })
        .collect();
    ScalarProgram {
        machine: target.name.clone(),
        insts,
        functions: prog.functions.clone(),
        globals: prog.globals.clone(),
        custom_ops: prog.custom_ops.clone(),
        entry_func: prog.entry_func,
        data_words: prog.data_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Operand, Reg};

    fn tiny_prog() -> ScalarProgram {
        let mut add = MachineOp::new(
            Opcode::Add,
            vec![Reg::new(0, 1)],
            vec![Operand::Imm(2), Operand::Imm(3)],
        );
        add.imm = 0;
        ScalarProgram {
            machine: "scalar1".into(),
            insts: vec![add, MachineOp::new(Opcode::Halt, vec![], vec![])],
            functions: vec![FuncSym {
                name: "main".into(),
                entry: 0,
                frame_words: 0,
                num_args: 0,
            }],
            globals: vec![],
            custom_ops: vec![],
            entry_func: 0,
            data_words: 0,
        }
    }

    #[test]
    fn valid_program_passes() {
        let m = MachineDescription::scalar1();
        let p = tiny_prog();
        assert_eq!(p.validate(&m), Ok(()));
        assert_eq!(p.total_ops(), 2);
        assert!(p.listing().contains("main:"));
    }

    #[test]
    fn missing_unit_detected() {
        // scalar2's first slot has no Mul — but the machine as a whole does;
        // strip it to provoke the error.
        let m = MachineDescription::scalar1().derive("nomul", |m| {
            m.target = TargetKind::Scalar;
            m.slots = vec![crate::machine::Slot::new(&[
                crate::op::FuKind::Alu,
                crate::op::FuKind::Mem,
                crate::op::FuKind::Branch,
            ])];
        });
        let mut p = tiny_prog();
        p.insts[0] = MachineOp::new(
            Opcode::Mul,
            vec![Reg::new(0, 1)],
            vec![Operand::Imm(2), Operand::Imm(3)],
        );
        assert!(matches!(p.validate(&m), Err(CodeError::BadSlot { .. })));
    }

    #[test]
    fn clustered_registers_rejected() {
        let m = MachineDescription::scalar1();
        let mut p = tiny_prog();
        p.insts[0].dsts[0] = Reg::new(1, 1);
        assert!(matches!(p.validate(&m), Err(CodeError::BadReg { .. })));
        p.insts[0].dsts[0] = Reg::new(0, 999);
        assert!(matches!(p.validate(&m), Err(CodeError::BadReg { .. })));
    }

    #[test]
    fn function_entry_range_checked() {
        let m = MachineDescription::scalar1();
        let mut p = tiny_prog();
        p.functions[0].entry = 99;
        assert_eq!(
            p.validate(&m),
            Err(CodeError::BadFuncEntry { func: 0, entry: 99 })
        );
    }

    #[test]
    fn branch_targets_checked() {
        let m = MachineDescription::scalar1();
        let mut p = tiny_prog();
        let mut br = MachineOp::new(Opcode::Br, vec![], vec![]);
        br.target = 99;
        p.insts[0] = br;
        assert!(matches!(
            p.validate(&m),
            Err(CodeError::BadTarget { target: 99, .. })
        ));
    }

    #[test]
    fn code_bytes_follow_encoding() {
        let p = tiny_prog();
        assert_eq!(p.code_bytes(Encoding::Uncompressed), 8);
        assert_eq!(p.code_bytes(Encoding::StopBit), 8);
        // Both the add (low regs, small imms) and the bare halt fit the
        // 16-bit compact form.
        assert_eq!(p.code_bytes(Encoding::Compact16), 4);
        let l = p.layout(Encoding::Compact16);
        assert_eq!(l.inst_addr, vec![0, 2]);
    }
}
