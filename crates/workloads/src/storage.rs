//! Storage/network-controller kernels: CRC-32, Fletcher-32, bit
//! manipulation (population count / bit reversal).

use crate::{AppArea, Gen, Workload};

/// All storage-area workloads.
pub fn all() -> Vec<Workload> {
    vec![crc32(), fletcher(), bits()]
}

const CRC_N: usize = 128;

/// Bitwise (reflected) CRC-32 over a byte buffer.
pub fn crc32() -> Workload {
    let mut g = Gen::new(0xC4C3_000D);
    let data = g.vec(CRC_N, 0, 256);

    // Golden model: reflected CRC-32, polynomial 0xEDB88320.
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in &data {
        crc ^= b as u32 & 0xFF;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xEDB8_8320;
            } else {
                crc >>= 1;
            }
        }
    }
    crc ^= 0xFFFF_FFFF;
    let expected = vec![crc as i32];

    let source = format!(
        r#"
int data[{n}];
void main(int n) {{
    int crc = 0xFFFFFFFF;
    int i;
    int k;
    for (i = 0; i < n; i++) {{
        crc = crc ^ (data[i] & 0xFF);
        for (k = 0; k < 8; k++) {{
            int bit = crc & 1;
            crc = lsr(crc, 1);
            if (bit) crc = crc ^ 0xEDB88320;
        }}
    }}
    emit(crc ^ 0xFFFFFFFF);
}}
"#,
        n = CRC_N
    );

    Workload {
        name: "crc32".into(),
        area: AppArea::Storage,
        description: "bitwise reflected CRC-32 over 128 bytes".into(),
        source,
        args: vec![CRC_N as i32],
        inputs: vec![("data".into(), data)],
        expected,
    }
}

const FLETCHER_N: usize = 256;

/// Fletcher-32 checksum over a 16-bit word stream.
pub fn fletcher() -> Workload {
    let mut g = Gen::new(0xF1E7_000E);
    let data = g.vec(FLETCHER_N, 0, 65536);

    let mut s1: i32 = 0;
    let mut s2: i32 = 0;
    for &w in &data {
        s1 = (s1 + w) % 65535;
        s2 = (s2 + s1) % 65535;
    }
    let expected = vec![s2.wrapping_mul(65536).wrapping_add(s1), s1, s2];

    let source = format!(
        r#"
int data[{n}];
void main(int n) {{
    int s1 = 0;
    int s2 = 0;
    int i;
    for (i = 0; i < n; i++) {{
        s1 = (s1 + data[i]) % 65535;
        s2 = (s2 + s1) % 65535;
    }}
    emit(s2 * 65536 + s1);
    emit(s1);
    emit(s2);
}}
"#,
        n = FLETCHER_N
    );

    Workload {
        name: "fletcher".into(),
        area: AppArea::Storage,
        description: "Fletcher-32 checksum over 256 words (modulo-bound)".into(),
        source,
        args: vec![FLETCHER_N as i32],
        inputs: vec![("data".into(), data)],
        expected,
    }
}

const BITS_N: usize = 128;

/// Population count and bit reversal over a word stream — the canonical
/// "special op" targets of §1.2.
pub fn bits() -> Workload {
    let mut g = Gen::new(0xB175_000F);
    let data: Vec<i32> = (0..BITS_N).map(|_| g.next_u32() as i32).collect();

    let mut pop_total: i32 = 0;
    let mut rev_cks: i32 = 0;
    for &w in &data {
        let x = w as u32;
        pop_total = pop_total.wrapping_add(x.count_ones() as i32);
        let r = x.reverse_bits();
        rev_cks = rev_cks.wrapping_mul(3).wrapping_add(r as i32);
    }
    let expected = vec![pop_total, rev_cks];

    let source = format!(
        r#"
int data[{n}];
void main(int n) {{
    int pop = 0;
    int revcks = 0;
    int i;
    for (i = 0; i < n; i++) {{
        int x = data[i];
        // SWAR popcount.
        int p = x - (lsr(x, 1) & 0x55555555);
        p = (p & 0x33333333) + (lsr(p, 2) & 0x33333333);
        p = (p + lsr(p, 4)) & 0x0F0F0F0F;
        p = lsr(p * 0x01010101, 24);
        pop += p;
        // Bit reversal by shuffle.
        int r = x;
        r = (lsr(r, 1) & 0x55555555) | ((r & 0x55555555) << 1);
        r = (lsr(r, 2) & 0x33333333) | ((r & 0x33333333) << 2);
        r = (lsr(r, 4) & 0x0F0F0F0F) | ((r & 0x0F0F0F0F) << 4);
        r = (lsr(r, 8) & 0x00FF00FF) | ((r & 0x00FF00FF) << 8);
        r = lsr(r, 16) | (r << 16);
        revcks = revcks * 3 + r;
    }}
    emit(pop);
    emit(revcks);
}}
"#,
        n = BITS_N
    );

    Workload {
        name: "bits".into(),
        area: AppArea::Storage,
        description: "SWAR popcount and bit reversal over 128 words".into(),
        source,
        args: vec![BITS_N as i32],
        inputs: vec![("data".into(), data)],
        expected,
    }
}

#[cfg(test)]
mod tests {

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" must be 0xCBF43926.
        let data: Vec<i32> = b"123456789".iter().map(|&b| b as i32).collect();
        let mut crc: u32 = 0xFFFF_FFFF;
        for &b in &data {
            crc ^= b as u32 & 0xFF;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
        }
        assert_eq!(crc ^ 0xFFFF_FFFF, 0xCBF4_3926);
    }

    #[test]
    fn fletcher_zero_stream() {
        let mut s1 = 0i32;
        let mut s2 = 0i32;
        for _ in 0..10 {
            s1 %= 65535;
            s2 = (s2 + s1) % 65535;
        }
        assert_eq!((s1, s2), (0, 0));
    }

    #[test]
    fn swar_popcount_matches_native() {
        for x in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001] {
            let mut p = (x as i64 - ((x >> 1) & 0x5555_5555) as i64) as u32;
            p = (p & 0x3333_3333) + ((p >> 2) & 0x3333_3333);
            p = (p.wrapping_add(p >> 4)) & 0x0F0F_0F0F;
            p = p.wrapping_mul(0x0101_0101) >> 24;
            assert_eq!(p, x.count_ones(), "x={x:#x}");
        }
    }
}
