//! # asip-workloads — embedded benchmark kernels with golden models
//!
//! The application domains the paper names in §1.3 — *"cellphones, video,
//! disk controllers, medical devices, network devices, digital cameras &
//! scanners, printers"* — rendered as seventeen TinyC kernels, grouped into
//! application **areas** (the unit of customization §6.1 argues for:
//! *"tailor to an application area, not an application"*).
//!
//! Every workload carries:
//!
//! * TinyC source (compiled by the toolchain for any family member),
//! * deterministic input data (fixed-seed PRNG),
//! * the expected `emit` stream, computed by an independent **golden Rust
//!   model** — so a workload run is self-checking end to end.

#![warn(missing_docs)]

mod codec;
pub mod control;
pub mod dsp;
pub mod printer;
pub mod storage;
pub mod video;

use std::fmt;

/// Application area of a workload (the customization unit of paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppArea {
    /// Baseband/speech processing: FIR, IIR, Viterbi, autocorrelation, ADPCM.
    Cellphone,
    /// Imaging/video: DCT, quantization, Sobel, median filter, YUV→RGB.
    Video,
    /// Printer pipeline: error-diffusion dithering, run-length encoding.
    Printer,
    /// Storage/network controllers: CRC-32, Fletcher-32, bit manipulation.
    Storage,
    /// Control-flow-heavy integer code: sorting, matrices, integer sqrt.
    Control,
}

impl AppArea {
    /// All areas, in display order.
    pub const ALL: [AppArea; 5] = [
        AppArea::Cellphone,
        AppArea::Video,
        AppArea::Printer,
        AppArea::Storage,
        AppArea::Control,
    ];
}

impl fmt::Display for AppArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AppArea::Cellphone => "cellphone",
            AppArea::Video => "video",
            AppArea::Printer => "printer",
            AppArea::Storage => "storage",
            AppArea::Control => "control",
        };
        f.write_str(s)
    }
}

/// A self-checking benchmark kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Short unique name (e.g. `fir`).
    pub name: String,
    /// Application area.
    pub area: AppArea,
    /// One-line description.
    pub description: String,
    /// TinyC source.
    pub source: String,
    /// Arguments passed to `main`.
    pub args: Vec<i32>,
    /// Global arrays to initialize before the run (name, contents).
    pub inputs: Vec<(String, Vec<i32>)>,
    /// Expected `emit` stream (golden Rust model output).
    pub expected: Vec<i32>,
}

/// All workloads, in a stable order.
pub fn all() -> Vec<Workload> {
    let mut v = Vec::new();
    v.extend(dsp::all());
    v.extend(video::all());
    v.extend(printer::all());
    v.extend(storage::all());
    v.extend(control::all());
    v
}

/// Look a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// All workloads of one application area.
pub fn by_area(area: AppArea) -> Vec<Workload> {
    all().into_iter().filter(|w| w.area == area).collect()
}

/// A deterministic PRNG for input generation (xorshift32; independent of
/// external crates so input streams are stable forever).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u32,
}

impl Gen {
    /// Seeded generator; a zero seed is replaced by a fixed constant.
    pub fn new(seed: u32) -> Gen {
        Gen {
            state: if seed == 0 { 0x9E37_79B9 } else { seed },
        }
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Uniform value in `lo..hi` (exclusive `hi`).
    pub fn range(&mut self, lo: i32, hi: i32) -> i32 {
        let span = (hi - lo) as u32;
        lo + (self.next_u32() % span) as i32
    }

    /// A vector of `n` values in `lo..hi`.
    pub fn vec(&mut self, n: usize, lo: i32, hi: i32) -> Vec<i32> {
        (0..n).map(|_| self.range(lo, hi)).collect()
    }

    /// A vector of `n` bits (0/1).
    pub fn bits(&mut self, n: usize) -> Vec<i32> {
        (0..n).map(|_| (self.next_u32() & 1) as i32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_names_unique_and_nonempty() {
        let ws = all();
        assert!(ws.len() >= 15, "expected a full suite, got {}", ws.len());
        let mut names: Vec<&str> = ws.iter().map(|w| w.name.as_str()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate workload names");
    }

    #[test]
    fn every_area_is_represented() {
        for area in AppArea::ALL {
            assert!(!by_area(area).is_empty(), "area {area} has no workloads");
        }
    }

    #[test]
    fn expected_streams_nonempty() {
        for w in all() {
            assert!(
                !w.expected.is_empty(),
                "{} has an empty golden stream",
                w.name
            );
        }
    }

    #[test]
    fn golden_models_are_deterministic() {
        let a = all();
        let b = all();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.expected, y.expected, "{} not deterministic", x.name);
            assert_eq!(x.inputs, y.inputs);
        }
    }

    #[test]
    fn by_name_finds_workloads() {
        assert!(by_name("fir").is_some());
        assert!(by_name("crc32").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn gen_is_deterministic_and_in_range() {
        let mut g1 = Gen::new(42);
        let mut g2 = Gen::new(42);
        for _ in 0..100 {
            let v = g1.range(-50, 50);
            assert_eq!(v, g2.range(-50, 50));
            assert!((-50..50).contains(&v));
        }
        let bits = Gen::new(7).bits(64);
        assert!(bits.iter().all(|&b| b == 0 || b == 1));
    }

    #[test]
    fn sources_have_balanced_braces_and_main() {
        for w in all() {
            let opens = w.source.matches('{').count();
            let closes = w.source.matches('}').count();
            assert_eq!(opens, closes, "{}: unbalanced braces", w.name);
            assert!(w.source.contains("void main"), "{}: no main", w.name);
        }
    }
}
