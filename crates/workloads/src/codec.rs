//! [`Codec`] implementations for [`Workload`] and [`AppArea`], so whole
//! evaluation requests (which embed the workload, not just its name) can
//! travel over the wire and hash into cache keys byte-for-byte.
//!
//! Follows the `asip_isa::codec` conventions: little-endian scalars,
//! u32-prefixed collections, u8 enum tags that are **never renumbered**.

use crate::{AppArea, Workload};
use asip_isa::codec::{Codec, CodecError, Reader, Writer};

/// Stable wire tags: 0 = `Cellphone`, 1 = `Video`, 2 = `Printer`,
/// 3 = `Storage`, 4 = `Control`. Never renumber.
impl Codec for AppArea {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            AppArea::Cellphone => 0,
            AppArea::Video => 1,
            AppArea::Printer => 2,
            AppArea::Storage => 3,
            AppArea::Control => 4,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => AppArea::Cellphone,
            1 => AppArea::Video,
            2 => AppArea::Printer,
            3 => AppArea::Storage,
            4 => AppArea::Control,
            tag => {
                return Err(CodecError::BadTag {
                    what: "AppArea",
                    tag: tag.into(),
                })
            }
        })
    }
}

impl Codec for Workload {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        self.area.encode(w);
        w.put_str(&self.description);
        w.put_str(&self.source);
        self.args.encode(w);
        w.put_u32(self.inputs.len() as u32);
        for (name, data) in &self.inputs {
            w.put_str(name);
            data.encode(w);
        }
        self.expected.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let name = r.get_str()?;
        let area = AppArea::decode(r)?;
        let description = r.get_str()?;
        let source = r.get_str()?;
        let args = Vec::decode(r)?;
        let n = r.get_len()?;
        let mut inputs = Vec::with_capacity(n);
        for _ in 0..n {
            let input_name = r.get_str()?;
            inputs.push((input_name, Vec::decode(r)?));
        }
        let expected = Vec::decode(r)?;
        Ok(Workload {
            name,
            area,
            description,
            source,
            args,
            inputs,
            expected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_roundtrips() {
        for wl in crate::all() {
            let bytes = wl.encode_to_vec();
            let back = Workload::decode_all(&bytes).expect("decode");
            assert_eq!(wl, back);
            assert_eq!(bytes, back.encode_to_vec());
        }
    }

    #[test]
    fn areas_roundtrip_and_bad_tag_errors() {
        for area in AppArea::ALL {
            assert_eq!(area, AppArea::decode_all(&area.encode_to_vec()).unwrap());
        }
        assert!(matches!(
            AppArea::decode_all(&[9]),
            Err(CodecError::BadTag {
                what: "AppArea",
                ..
            })
        ));
    }
}
