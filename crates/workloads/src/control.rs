//! Control-area kernels: insertion sort, 8×8 matrix multiply, integer
//! square root.

use crate::{AppArea, Gen, Workload};

/// All control-area workloads.
pub fn all() -> Vec<Workload> {
    vec![sort(), matmul(), isqrt()]
}

const SORT_N: usize = 48;

/// Insertion sort (branchy, data-dependent control flow).
pub fn sort() -> Workload {
    let mut g = Gen::new(0x5047_0010);
    let data = g.vec(SORT_N, -500, 500);

    let mut v = data.clone();
    for i in 1..v.len() {
        let key = v[i];
        let mut j = i as i32 - 1;
        while j >= 0 && v[j as usize] > key {
            v[(j + 1) as usize] = v[j as usize];
            j -= 1;
        }
        v[(j + 1) as usize] = key;
    }
    let mut cks: i32 = 0;
    for (i, &x) in v.iter().enumerate() {
        cks = cks.wrapping_mul(13).wrapping_add(x ^ i as i32);
    }
    let expected = vec![v[0], v[SORT_N / 2], v[SORT_N - 1], cks];

    let source = format!(
        r#"
int a[{n}];
void main(int n) {{
    int i;
    for (i = 1; i < n; i++) {{
        int key = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > key) {{
            a[j + 1] = a[j];
            j--;
        }}
        a[j + 1] = key;
    }}
    emit(a[0]);
    emit(a[n / 2]);
    emit(a[n - 1]);
    int cks = 0;
    for (i = 0; i < n; i++) cks = cks * 13 + (a[i] ^ i);
    emit(cks);
}}
"#,
        n = SORT_N
    );

    Workload {
        name: "sort".into(),
        area: AppArea::Control,
        description: "insertion sort of 48 elements (data-dependent branches)".into(),
        source,
        args: vec![SORT_N as i32],
        inputs: vec![("a".into(), data)],
        expected,
    }
}

const MM_N: usize = 8;

/// Dense 8×8 integer matrix multiply.
pub fn matmul() -> Workload {
    let mut g = Gen::new(0x3A73_0011);
    let a = g.vec(MM_N * MM_N, -50, 50);
    let b = g.vec(MM_N * MM_N, -50, 50);

    let mut c = vec![0i32; MM_N * MM_N];
    for i in 0..MM_N {
        for j in 0..MM_N {
            let mut acc: i32 = 0;
            for k in 0..MM_N {
                acc = acc.wrapping_add(a[i * MM_N + k].wrapping_mul(b[k * MM_N + j]));
            }
            c[i * MM_N + j] = acc;
        }
    }
    let mut trace: i32 = 0;
    let mut cks: i32 = 0;
    for i in 0..MM_N {
        trace = trace.wrapping_add(c[i * MM_N + i]);
    }
    for (i, &x) in c.iter().enumerate() {
        cks = cks.wrapping_mul(7).wrapping_add(x.wrapping_add(i as i32));
    }
    let expected = vec![trace, cks, c[0], c[MM_N * MM_N - 1]];

    let source = format!(
        r#"
int a[{nn}];
int b[{nn}];
int c[{nn}];
void main(int n) {{
    int i; int j; int k;
    for (i = 0; i < n; i++) {{
        for (j = 0; j < n; j++) {{
            int acc = 0;
            for (k = 0; k < n; k++) acc += a[i * n + k] * b[k * n + j];
            c[i * n + j] = acc;
        }}
    }}
    int trace = 0;
    for (i = 0; i < n; i++) trace += c[i * n + i];
    emit(trace);
    int cks = 0;
    for (i = 0; i < n * n; i++) cks = cks * 7 + (c[i] + i);
    emit(cks);
    emit(c[0]);
    emit(c[n * n - 1]);
}}
"#,
        nn = MM_N * MM_N
    );

    Workload {
        name: "matmul".into(),
        area: AppArea::Control,
        description: "8x8 integer matrix multiply".into(),
        source,
        args: vec![MM_N as i32],
        inputs: vec![("a".into(), a), ("b".into(), b)],
        expected,
    }
}

const ISQRT_N: usize = 64;

/// Integer square root by binary search (division-free but branch-heavy).
fn isqrt_one(x: i32) -> i32 {
    if x < 0 {
        return 0;
    }
    let mut lo: i64 = 0;
    let mut hi: i64 = 46341; // ceil(sqrt(i32::MAX)) + 1
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if mid * mid <= i64::from(x) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as i32
}

/// Integer square roots of a value stream.
pub fn isqrt() -> Workload {
    let mut g = Gen::new(0x1547_0012);
    let data: Vec<i32> = (0..ISQRT_N).map(|_| g.range(0, i32::MAX)).collect();

    let mut cks: i32 = 0;
    for &x in &data {
        let r = isqrt_one(x);
        cks = cks.wrapping_mul(11).wrapping_add(r);
    }
    let expected = vec![cks, isqrt_one(data[0]), isqrt_one(data[ISQRT_N - 1])];

    // The TinyC version must avoid 64-bit: compare mid <= x / mid instead of
    // mid*mid <= x (valid for mid > 0 and exact for truncating division).
    let source = format!(
        r#"
int data[{n}];
int root(int x) {{
    if (x < 2) return x;
    int lo = 1;
    int hi = 46341;
    while (lo + 1 < hi) {{
        int mid = (lo + hi) / 2;
        if (mid <= x / mid) lo = mid;
        else hi = mid;
    }}
    return lo;
}}
void main(int n) {{
    int cks = 0;
    int i;
    for (i = 0; i < n; i++) cks = cks * 11 + root(data[i]);
    emit(cks);
    emit(root(data[0]));
    emit(root(data[n - 1]));
}}
"#,
        n = ISQRT_N
    );

    Workload {
        name: "isqrt".into(),
        area: AppArea::Control,
        description: "integer square root by binary search (divider + calls)".into(),
        source,
        args: vec![ISQRT_N as i32],
        inputs: vec![("data".into(), data)],
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_exact_values() {
        assert_eq!(isqrt_one(0), 0);
        assert_eq!(isqrt_one(1), 1);
        assert_eq!(isqrt_one(3), 1);
        assert_eq!(isqrt_one(4), 2);
        assert_eq!(isqrt_one(99), 9);
        assert_eq!(isqrt_one(100), 10);
        assert_eq!(isqrt_one(i32::MAX), 46340);
    }

    #[test]
    fn isqrt_div_form_equivalent() {
        // mid <= x/mid  <=>  mid*mid <= x for truncating division, mid > 0.
        let mut g = Gen::new(5);
        for _ in 0..200 {
            let x = g.range(2, i32::MAX);
            let r = isqrt_one(x);
            assert!(r as i64 * r as i64 <= x as i64);
            assert!((r as i64 + 1) * (r as i64 + 1) > x as i64);
        }
    }

    #[test]
    fn sort_golden_is_sorted() {
        let w = sort();
        assert!(w.expected[0] <= w.expected[1] && w.expected[1] <= w.expected[2]);
    }

    #[test]
    fn matmul_identity_sanity() {
        // c[0] for the generated data must match the naive recomputation.
        let w = matmul();
        let a = &w.inputs[0].1;
        let b = &w.inputs[1].1;
        let mut acc = 0i32;
        for k in 0..MM_N {
            acc = acc.wrapping_add(a[k].wrapping_mul(b[k * MM_N]));
        }
        assert_eq!(w.expected[2], acc);
    }
}
