//! Printer-area kernels: Floyd–Steinberg error diffusion and run-length
//! encoding.

use crate::{AppArea, Gen, Workload};

/// All printer-area workloads.
pub fn all() -> Vec<Workload> {
    vec![dither(), rle()]
}

const DITHER_W: usize = 16;
const DITHER_H: usize = 16;

/// Floyd–Steinberg error-diffusion dithering of a 16×16 greyscale tile.
pub fn dither() -> Workload {
    let mut g = Gen::new(0xD17E_000B);
    let img = g.vec(DITHER_W * DITHER_H, 0, 256);

    // Golden model: in-place error diffusion, serpentine disabled.
    let w = DITHER_W as i32;
    let h = DITHER_H as i32;
    let mut work = img.clone();
    let mut ones = 0i32;
    let mut cks: i32 = 0;
    for y in 0..h {
        for x in 0..w {
            let idx = (y * w + x) as usize;
            let old = work[idx];
            let newv = if old > 127 { 255 } else { 0 };
            let err = old - newv;
            work[idx] = newv;
            if newv != 0 {
                ones += 1;
            }
            cks = cks
                .wrapping_mul(2)
                .wrapping_add(if newv != 0 { 1 } else { 0 })
                ^ (x + y);
            if x + 1 < w {
                work[idx + 1] += err * 7 / 16;
            }
            if y + 1 < h {
                if x > 0 {
                    work[idx + DITHER_W - 1] += err * 3 / 16;
                }
                work[idx + DITHER_W] += err * 5 / 16;
                if x + 1 < w {
                    work[idx + DITHER_W + 1] += err / 16;
                }
            }
        }
    }
    let expected = vec![ones, cks];

    let source = format!(
        r#"
int img[{npix}];
void main(int w) {{
    int h = {h};
    int ones = 0;
    int cks = 0;
    int x; int y;
    for (y = 0; y < h; y++) {{
        for (x = 0; x < w; x++) {{
            int idx = y * w + x;
            int old = img[idx];
            int newv = 0;
            if (old > 127) newv = 255;
            int err = old - newv;
            img[idx] = newv;
            if (newv != 0) ones++;
            int bit = 0;
            if (newv != 0) bit = 1;
            cks = (cks * 2 + bit) ^ (x + y);
            if (x + 1 < w) img[idx + 1] += err * 7 / 16;
            if (y + 1 < h) {{
                if (x > 0) img[idx + w - 1] += err * 3 / 16;
                img[idx + w] += err * 5 / 16;
                if (x + 1 < w) img[idx + w + 1] += err / 16;
            }}
        }}
    }}
    emit(ones);
    emit(cks);
}}
"#,
        npix = DITHER_W * DITHER_H,
        h = DITHER_H
    );

    Workload {
        name: "dither".into(),
        area: AppArea::Printer,
        description: "Floyd-Steinberg error diffusion on a 16x16 tile".into(),
        source,
        args: vec![DITHER_W as i32],
        inputs: vec![("img".into(), img)],
        expected,
    }
}

const RLE_N: usize = 256;

/// Run-length encode a bi-level scanline buffer.
pub fn rle() -> Workload {
    let mut g = Gen::new(0x41E0_000C);
    // Generate correlated bits so runs exist: random walk thresholding.
    let mut level = 0i32;
    let mut bits = Vec::with_capacity(RLE_N);
    for _ in 0..RLE_N {
        level += g.range(-3, 4);
        bits.push(if level > 0 { 1 } else { 0 });
    }

    // Golden model: (value, run) pairs, checksum + count.
    let mut runs = 0i32;
    let mut cks: i32 = 0;
    let mut i = 0usize;
    while i < RLE_N {
        let v: i32 = bits[i];
        let mut len = 1i32;
        while i + (len as usize) < RLE_N && bits[i + len as usize] == v {
            len += 1;
        }
        runs += 1;
        cks = cks
            .wrapping_mul(5)
            .wrapping_add(v.wrapping_mul(1000).wrapping_add(len));
        i += len as usize;
    }
    let expected = vec![runs, cks];

    let source = format!(
        r#"
int bits[{n}];
void main(int n) {{
    int runs = 0;
    int cks = 0;
    int i = 0;
    while (i < n) {{
        int v = bits[i];
        int len = 1;
        while (i + len < n && bits[i + len] == v) len++;
        runs++;
        cks = cks * 5 + (v * 1000 + len);
        i += len;
    }}
    emit(runs);
    emit(cks);
}}
"#,
        n = RLE_N
    );

    Workload {
        name: "rle".into(),
        area: AppArea::Printer,
        description: "run-length encoding of a 256-pixel bi-level scanline".into(),
        source,
        args: vec![RLE_N as i32],
        inputs: vec![("bits".into(), bits)],
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dither_preserves_mean_roughly() {
        let w = dither();
        let total: i64 = w.inputs[0].1.iter().map(|&v| v as i64).sum();
        let mean = total / (DITHER_W * DITHER_H) as i64;
        let ones = w.expected[0] as i64;
        let expected_ones = mean * (DITHER_W * DITHER_H) as i64 / 255;
        assert!(
            (ones - expected_ones).abs() < 40,
            "ones {ones} vs expected {expected_ones}"
        );
    }

    #[test]
    fn rle_runs_cover_input() {
        let w = rle();
        assert!(w.expected[0] > 1, "input should have multiple runs");
        assert!(w.expected[0] <= RLE_N as i32);
    }
}
