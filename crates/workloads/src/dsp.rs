//! Cellphone-area kernels: FIR, IIR biquad cascade, Viterbi decoding,
//! autocorrelation, IMA ADPCM encoding.

use crate::{AppArea, Gen, Workload};

/// All cellphone-area workloads.
pub fn all() -> Vec<Workload> {
    vec![fir(), iir(), viterbi(), autocorr(), adpcm()]
}

// ---------------------------------------------------------------------------
// FIR
// ---------------------------------------------------------------------------

const FIR_TAPS: usize = 32;
const FIR_N: usize = 192;

/// 32-tap FIR filter over a sample block.
pub fn fir() -> Workload {
    let mut g = Gen::new(0xF1F1_0001);
    let x = g.vec(FIR_N + FIR_TAPS, -1000, 1000);
    let h = g.vec(FIR_TAPS, -128, 128);

    // Golden model.
    let mut y = vec![0i32; FIR_N];
    for i in 0..FIR_N {
        let mut acc: i32 = 0;
        for j in 0..FIR_TAPS {
            acc = acc.wrapping_add(x[i + j].wrapping_mul(h[j]));
        }
        y[i] = acc >> 8;
    }
    let mut s: i32 = 0;
    for v in &y {
        s = s.wrapping_add(*v);
    }
    let expected = vec![s, y[0], y[FIR_N / 2], y[FIR_N - 1]];

    let source = format!(
        r#"
int x[{xn}];
int h[{taps}];
int y[{n}];
void main(int n) {{
    int i;
    int j;
    for (i = 0; i < n; i++) {{
        int acc = 0;
        for (j = 0; j < {taps}; j++) acc += x[i + j] * h[j];
        y[i] = acc >> 8;
    }}
    int s = 0;
    for (i = 0; i < n; i++) s += y[i];
    emit(s);
    emit(y[0]);
    emit(y[n / 2]);
    emit(y[n - 1]);
}}
"#,
        xn = FIR_N + FIR_TAPS,
        taps = FIR_TAPS,
        n = FIR_N
    );

    Workload {
        name: "fir".into(),
        area: AppArea::Cellphone,
        description: "32-tap FIR filter over 192 samples (multiply-accumulate)".into(),
        source,
        args: vec![FIR_N as i32],
        inputs: vec![("x".into(), x), ("h".into(), h)],
        expected,
    }
}

// ---------------------------------------------------------------------------
// IIR biquad cascade
// ---------------------------------------------------------------------------

const IIR_N: usize = 192;

/// Two-stage direct-form-II biquad cascade, Q12 coefficients.
pub fn iir() -> Workload {
    let mut g = Gen::new(0x11B2_0002);
    let x = g.vec(IIR_N, -4096, 4096);
    // Mild, stable-ish Q12 coefficients.
    let c: Vec<i32> = vec![
        1024, 512, 256, -512, 128, // stage 0: b0 b1 b2 a1 a2
        2048, -1024, 512, 256, -64, // stage 1
    ];

    // Golden model.
    let mut y = vec![0i32; IIR_N];
    for s in 0..2usize {
        let (b0, b1, b2, a1, a2) = (
            c[s * 5],
            c[s * 5 + 1],
            c[s * 5 + 2],
            c[s * 5 + 3],
            c[s * 5 + 4],
        );
        let mut w1: i32 = 0;
        let mut w2: i32 = 0;
        for i in 0..IIR_N {
            let inp = if s == 0 { x[i] } else { y[i] };
            let w0 = inp
                .wrapping_sub(a1.wrapping_mul(w1) >> 12)
                .wrapping_sub(a2.wrapping_mul(w2) >> 12);
            let out = (b0.wrapping_mul(w0) >> 12)
                .wrapping_add(b1.wrapping_mul(w1) >> 12)
                .wrapping_add(b2.wrapping_mul(w2) >> 12);
            y[i] = out;
            w2 = w1;
            w1 = w0;
        }
    }
    let mut acc: i32 = 0;
    for (i, v) in y.iter().enumerate() {
        acc ^= v.wrapping_add(i as i32);
    }
    let expected = vec![acc, y[0], y[IIR_N - 1]];

    let source = format!(
        r#"
int x[{n}];
int y[{n}];
int c[10];
void main(int n) {{
    int s;
    int i;
    for (s = 0; s < 2; s++) {{
        int b0 = c[s * 5];
        int b1 = c[s * 5 + 1];
        int b2 = c[s * 5 + 2];
        int a1 = c[s * 5 + 3];
        int a2 = c[s * 5 + 4];
        int w1 = 0;
        int w2 = 0;
        for (i = 0; i < n; i++) {{
            int inp = s == 0 ? x[i] : y[i];
            int w0 = inp - ((a1 * w1) >> 12) - ((a2 * w2) >> 12);
            int outv = ((b0 * w0) >> 12) + ((b1 * w1) >> 12) + ((b2 * w2) >> 12);
            y[i] = outv;
            w2 = w1;
            w1 = w0;
        }}
    }}
    int acc = 0;
    for (i = 0; i < n; i++) acc = acc ^ (y[i] + i);
    emit(acc);
    emit(y[0]);
    emit(y[n - 1]);
}}
"#,
        n = IIR_N
    );

    Workload {
        name: "iir".into(),
        area: AppArea::Cellphone,
        description: "two-stage Q12 biquad cascade (recurrence-limited MAC)".into(),
        source,
        args: vec![IIR_N as i32],
        inputs: vec![("x".into(), x), ("c".into(), c)],
        expected,
    }
}

// ---------------------------------------------------------------------------
// Viterbi (K=3, rate 1/2, G0=7, G1=5)
// ---------------------------------------------------------------------------

const VIT_N: usize = 64;

fn vit_encode(bits: &[i32]) -> Vec<i32> {
    // State = (b1 << 1) | b0 where b0 is the previous input bit.
    let mut state = 0i32;
    let mut out = Vec::with_capacity(bits.len());
    for &u in bits {
        let b0 = state & 1;
        let b1 = (state >> 1) & 1;
        let o0 = u ^ b0 ^ b1;
        let o1 = u ^ b1;
        out.push(o0 | (o1 << 1));
        state = ((b0 << 1) | u) & 3;
    }
    out
}

fn vit_decode(rx: &[i32]) -> Vec<i32> {
    let n = rx.len();
    let mut metrics = [0i32, 1000, 1000, 1000];
    let mut decisions = vec![0i32; n * 4];
    for (t, &sym) in rx.iter().enumerate() {
        let r0 = sym & 1;
        let r1 = (sym >> 1) & 1;
        let mut newmet = [0i32; 4];
        for ns in 0..4i32 {
            let u = ns & 1;
            let b0p = (ns >> 1) & 1;
            let mut best = i32::MAX;
            let mut bestb1 = 0;
            for b1p in 0..2i32 {
                let p = ((b1p << 1) | b0p) as usize;
                let e0 = u ^ b0p ^ b1p;
                let e1 = u ^ b1p;
                let bm = ((e0 != r0) as i32) + ((e1 != r1) as i32);
                let m = metrics[p].wrapping_add(bm);
                if m < best {
                    best = m;
                    bestb1 = b1p;
                }
            }
            newmet[ns as usize] = best;
            decisions[t * 4 + ns as usize] = bestb1;
        }
        metrics = newmet;
    }
    // Traceback from the best final state.
    let mut cur = 0usize;
    for s in 1..4 {
        if metrics[s] < metrics[cur] {
            cur = s;
        }
    }
    let mut out = vec![0i32; n];
    for t in (0..n).rev() {
        let u = (cur & 1) as i32;
        let b0p = (cur >> 1) & 1;
        let b1p = decisions[t * 4 + cur] as usize;
        out[t] = u;
        cur = (b1p << 1) | b0p;
    }
    out
}

/// Hard-decision Viterbi decoder for the K=3 rate-1/2 code.
pub fn viterbi() -> Workload {
    let mut g = Gen::new(0x5E1E_0003);
    let msg = g.bits(VIT_N);
    let rx = vit_encode(&msg);
    let decoded = vit_decode(&rx);
    // With a noiseless channel the decode recovers the message; the golden
    // stream is the decoder's own output, so the check stays valid even if
    // the tail bits differ from the message.
    let mut checksum: i32 = 0;
    for &b in &decoded {
        checksum = checksum.wrapping_mul(2).wrapping_add(b) ^ 0x55;
    }
    let mut expected = decoded.clone();
    expected.push(checksum);

    let source = format!(
        r#"
int rx[{n}];
int decisions[{dn}];
int metrics[4];
int newmet[4];
int outbits[{n}];
void main(int n) {{
    int t;
    int s;
    metrics[0] = 0;
    for (s = 1; s < 4; s++) metrics[s] = 1000;
    for (t = 0; t < n; t++) {{
        int sym = rx[t];
        int r0 = sym & 1;
        int r1 = (sym >> 1) & 1;
        int ns;
        for (ns = 0; ns < 4; ns++) {{
            int u = ns & 1;
            int b0p = (ns >> 1) & 1;
            int best = 0x7FFFFFFF;
            int bestb1 = 0;
            int b1p;
            for (b1p = 0; b1p < 2; b1p++) {{
                int p = (b1p << 1) | b0p;
                int e0 = (u ^ b0p) ^ b1p;
                int e1 = u ^ b1p;
                int bm = (e0 != r0) + (e1 != r1);
                int m = metrics[p] + bm;
                if (m < best) {{ best = m; bestb1 = b1p; }}
            }}
            newmet[ns] = best;
            decisions[t * 4 + ns] = bestb1;
        }}
        for (ns = 0; ns < 4; ns++) metrics[ns] = newmet[ns];
    }}
    int cur = 0;
    for (s = 1; s < 4; s++) if (metrics[s] < metrics[cur]) cur = s;
    for (t = n - 1; t >= 0; t--) {{
        int u = cur & 1;
        int b0p = (cur >> 1) & 1;
        int b1p = decisions[t * 4 + cur];
        outbits[t] = u;
        cur = (b1p << 1) | b0p;
    }}
    int checksum = 0;
    for (t = 0; t < n; t++) {{
        emit(outbits[t]);
        checksum = (checksum * 2 + outbits[t]) ^ 0x55;
    }}
    emit(checksum);
}}
"#,
        n = VIT_N,
        dn = VIT_N * 4
    );

    Workload {
        name: "viterbi".into(),
        area: AppArea::Cellphone,
        description: "K=3 rate-1/2 Viterbi decoder (add-compare-select)".into(),
        source,
        args: vec![VIT_N as i32],
        inputs: vec![("rx".into(), rx)],
        expected,
    }
}

// ---------------------------------------------------------------------------
// Autocorrelation
// ---------------------------------------------------------------------------

const AC_N: usize = 128;
const AC_LAGS: usize = 8;

/// Autocorrelation lags 0..8 of a speech-like frame.
pub fn autocorr() -> Workload {
    let mut g = Gen::new(0xAC04_0004);
    let x = g.vec(AC_N, -2048, 2048);
    let mut expected = Vec::with_capacity(AC_LAGS);
    for lag in 0..AC_LAGS {
        let mut acc: i32 = 0;
        for i in 0..(AC_N - lag) {
            acc = acc.wrapping_add(x[i].wrapping_mul(x[i + lag]) >> 6);
        }
        expected.push(acc);
    }

    let source = format!(
        r#"
int x[{n}];
void main(int n) {{
    int lag;
    for (lag = 0; lag < {lags}; lag++) {{
        int acc = 0;
        int i;
        for (i = 0; i < n - lag; i++) acc += (x[i] * x[i + lag]) >> 6;
        emit(acc);
    }}
}}
"#,
        n = AC_N,
        lags = AC_LAGS
    );

    Workload {
        name: "autocorr".into(),
        area: AppArea::Cellphone,
        description: "autocorrelation lags 0..8 of a 128-sample frame".into(),
        source,
        args: vec![AC_N as i32],
        inputs: vec![("x".into(), x)],
        expected,
    }
}

// ---------------------------------------------------------------------------
// IMA ADPCM encoder
// ---------------------------------------------------------------------------

const ADPCM_N: usize = 128;

const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

const INDEX_TABLE: [i32; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

fn adpcm_encode(x: &[i32]) -> (Vec<i32>, i32, i32) {
    let mut pred: i32 = 0;
    let mut index: i32 = 0;
    let mut codes = Vec::with_capacity(x.len());
    for &sample in x {
        let step = STEP_TABLE[index as usize];
        let mut diff = sample.wrapping_sub(pred);
        let sign = if diff < 0 { 8 } else { 0 };
        if diff < 0 {
            diff = -diff;
        }
        let mut code = 0i32;
        let mut tmp = step;
        if diff >= tmp {
            code |= 4;
            diff -= tmp;
        }
        tmp >>= 1;
        if diff >= tmp {
            code |= 2;
            diff -= tmp;
        }
        tmp >>= 1;
        if diff >= tmp {
            code |= 1;
        }
        // Reconstruct.
        let mut delta = step >> 3;
        if code & 4 != 0 {
            delta += step;
        }
        if code & 2 != 0 {
            delta += step >> 1;
        }
        if code & 1 != 0 {
            delta += step >> 2;
        }
        if sign != 0 {
            pred = pred.wrapping_sub(delta);
        } else {
            pred = pred.wrapping_add(delta);
        }
        pred = pred.clamp(-32768, 32767);
        index += INDEX_TABLE[(code & 7) as usize];
        index = index.clamp(0, 88);
        codes.push(code | sign);
    }
    (codes, pred, index)
}

/// IMA ADPCM speech encoder.
pub fn adpcm() -> Workload {
    let mut g = Gen::new(0xADBC_0005);
    let x = g.vec(ADPCM_N, -16000, 16000);
    let (codes, pred, index) = adpcm_encode(&x);
    let mut checksum: i32 = 0;
    for &c in &codes {
        checksum = checksum.wrapping_mul(17).wrapping_add(c);
    }
    let expected = vec![checksum, pred, index];

    let step_init = STEP_TABLE.map(|v| v.to_string()).join(", ");
    let idx_init = INDEX_TABLE.map(|v| v.to_string()).join(", ");

    let source = format!(
        r#"
int x[{n}];
int steptab[89] = {{{step_init}}};
int idxtab[8] = {{{idx_init}}};
void main(int n) {{
    int pred = 0;
    int index = 0;
    int checksum = 0;
    int i;
    for (i = 0; i < n; i++) {{
        int step = steptab[index];
        int diff = x[i] - pred;
        int sign = 0;
        if (diff < 0) {{ sign = 8; diff = -diff; }}
        int code = 0;
        int tmp = step;
        if (diff >= tmp) {{ code |= 4; diff -= tmp; }}
        tmp = tmp >> 1;
        if (diff >= tmp) {{ code |= 2; diff -= tmp; }}
        tmp = tmp >> 1;
        if (diff >= tmp) code |= 1;
        int delta = step >> 3;
        if (code & 4) delta += step;
        if (code & 2) delta += step >> 1;
        if (code & 1) delta += step >> 2;
        if (sign) pred -= delta;
        else pred += delta;
        pred = min(max(pred, -32768), 32767);
        index += idxtab[code & 7];
        index = min(max(index, 0), 88);
        checksum = checksum * 17 + (code | sign);
    }}
    emit(checksum);
    emit(pred);
    emit(index);
}}
"#,
        n = ADPCM_N
    );

    Workload {
        name: "adpcm".into(),
        area: AppArea::Cellphone,
        description: "IMA ADPCM speech encoder (table lookups, clamps)".into(),
        source,
        args: vec![ADPCM_N as i32],
        inputs: vec![("x".into(), x)],
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viterbi_recovers_noiseless_message() {
        let mut g = Gen::new(0x1234);
        let msg = g.bits(48);
        let rx = vit_encode(&msg);
        let dec = vit_decode(&rx);
        // All but the last K-1 = 2 bits must match (tail ambiguity).
        assert_eq!(&dec[..46], &msg[..46]);
    }

    #[test]
    fn adpcm_tracks_signal() {
        // Encoding a constant signal should drive the predictor toward it.
        let x = vec![1000i32; 64];
        let (_codes, pred, _idx) = adpcm_encode(&x);
        assert!((pred - 1000).abs() < 200, "pred {pred}");
    }

    #[test]
    fn fir_expected_matches_manual_small_case() {
        // Verify the golden FIR arithmetic on a trivial case.
        let w = fir();
        assert_eq!(w.expected.len(), 4);
        assert_eq!(w.inputs[0].1.len(), FIR_N + FIR_TAPS);
        assert_eq!(w.inputs[1].1.len(), FIR_TAPS);
    }

    #[test]
    fn workload_shapes() {
        for w in all() {
            assert_eq!(w.area, AppArea::Cellphone);
            assert!(!w.inputs.is_empty());
        }
    }
}
