//! Video/imaging-area kernels: integer 8×8 DCT, quantization with zigzag,
//! Sobel edge detection, 3×3 median filtering, YUV→RGB conversion.

use crate::{AppArea, Gen, Workload};

/// All video-area workloads.
pub fn all() -> Vec<Workload> {
    vec![dct8x8(), quantize(), sobel(), median(), yuv2rgb()]
}

// ---------------------------------------------------------------------------
// 8x8 integer DCT
// ---------------------------------------------------------------------------

/// Cosine table `round(cos((2x+1)·u·π/16) · 1024)`, computed once so the
/// golden model and the TinyC kernel use identical integers.
fn cos_table() -> Vec<i32> {
    let mut t = vec![0i32; 64];
    for u in 0..8 {
        for x in 0..8 {
            let v = ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos();
            t[u * 8 + x] = (v * 1024.0).round() as i32;
        }
    }
    t
}

fn dct_golden(blk: &[i32], ctab: &[i32]) -> (Vec<i32>, i32) {
    let mut tmp = vec![0i32; 64];
    // Rows.
    for y in 0..8 {
        for u in 0..8 {
            let mut acc: i32 = 0;
            for x in 0..8 {
                acc = acc.wrapping_add(blk[y * 8 + x].wrapping_mul(ctab[u * 8 + x]));
            }
            tmp[y * 8 + u] = acc >> 10;
        }
    }
    // Columns.
    let mut out = vec![0i32; 64];
    for u in 0..8 {
        for v in 0..8 {
            let mut acc: i32 = 0;
            for y in 0..8 {
                acc = acc.wrapping_add(tmp[y * 8 + u].wrapping_mul(ctab[v * 8 + y]));
            }
            out[v * 8 + u] = acc >> 10;
        }
    }
    let mut cks: i32 = 0;
    for (i, &c) in out.iter().enumerate() {
        cks = cks.wrapping_add(c.wrapping_mul(i as i32 + 1));
    }
    (out, cks)
}

/// Naive (row-column) integer 8×8 DCT of one block.
pub fn dct8x8() -> Workload {
    let mut g = Gen::new(0xDC18_0006);
    let blk = g.vec(64, -128, 128);
    let ctab = cos_table();
    let (out, cks) = dct_golden(&blk, &ctab);
    let expected = vec![cks, out[0], out[1], out[8], out[63]];

    let source = r#"
int blk[64];
int ctab[64];
int tmp[64];
int outc[64];
void main(int z) {
    int y; int u; int v; int x;
    for (y = 0; y < 8; y++) {
        for (u = 0; u < 8; u++) {
            int acc = 0;
            for (x = 0; x < 8; x++) acc += blk[y * 8 + x] * ctab[u * 8 + x];
            tmp[y * 8 + u] = acc >> 10;
        }
    }
    for (u = 0; u < 8; u++) {
        for (v = 0; v < 8; v++) {
            int acc = 0;
            for (y = 0; y < 8; y++) acc += tmp[y * 8 + u] * ctab[v * 8 + y];
            outc[v * 8 + u] = acc >> 10;
        }
    }
    int cks = 0;
    int i;
    for (i = 0; i < 64; i++) cks += outc[i] * (i + 1);
    emit(cks + z * 0);
    emit(outc[0]);
    emit(outc[1]);
    emit(outc[8]);
    emit(outc[63]);
}
"#
    .to_string();

    Workload {
        name: "dct8x8".into(),
        area: AppArea::Video,
        description: "integer 8x8 DCT, row-column decomposition".into(),
        source,
        args: vec![0],
        inputs: vec![("blk".into(), blk), ("ctab".into(), ctab)],
        expected,
    }
}

// ---------------------------------------------------------------------------
// Quantization + zigzag (JPEG-style)
// ---------------------------------------------------------------------------

const ZIGZAG: [i32; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Quantize a coefficient block and walk it in zigzag order.
pub fn quantize() -> Workload {
    let mut g = Gen::new(0x9A27_0007);
    let coef = g.vec(64, -2000, 2000);
    let q: Vec<i32> = (0..64).map(|i| 8 + i * 2).collect();

    let mut nz = 0i32;
    let mut cks: i32 = 0;
    let mut last_nz = -1i32;
    for (k, &zz) in ZIGZAG.iter().enumerate() {
        let c = coef[zz as usize];
        let d = q[zz as usize];
        // Symmetric rounding like typical integer JPEG encoders.
        let qq = if c >= 0 {
            (c + d / 2) / d
        } else {
            -((-c + d / 2) / d)
        };
        if qq != 0 {
            nz += 1;
            last_nz = k as i32;
        }
        cks = cks.wrapping_mul(3).wrapping_add(qq);
    }
    let expected = vec![cks, nz, last_nz];

    let zz_init = ZIGZAG.map(|v| v.to_string()).join(", ");
    let source = format!(
        r#"
int coef[64];
int q[64];
int zz[64] = {{{zz_init}}};
void main(int z) {{
    int nzcount = 0;
    int cks = 0;
    int lastnz = -1;
    int k;
    for (k = 0; k < 64; k++) {{
        int idx = zz[k];
        int c = coef[idx];
        int d = q[idx];
        int qq;
        if (c >= 0) qq = (c + d / 2) / d;
        else qq = -((-c + d / 2) / d);
        if (qq != 0) {{ nzcount++; lastnz = k; }}
        cks = cks * 3 + qq;
    }}
    emit(cks);
    emit(nzcount);
    emit(lastnz);
}}
"#
    );

    Workload {
        name: "quantize".into(),
        area: AppArea::Video,
        description: "JPEG-style quantization with zigzag scan (divider-bound)".into(),
        source,
        args: vec![0],
        inputs: vec![("coef".into(), coef), ("q".into(), q)],
        expected,
    }
}

// ---------------------------------------------------------------------------
// Sobel 3x3 on a 16x16 tile
// ---------------------------------------------------------------------------

const SOBEL_W: usize = 16;

/// Sobel gradient magnitude over a 16×16 tile.
pub fn sobel() -> Workload {
    let mut g = Gen::new(0x50BE_0008);
    let img = g.vec(SOBEL_W * SOBEL_W, 0, 256);

    let w = SOBEL_W as i32;
    let px = |x: i32, y: i32| img[(y * w + x) as usize];
    let mut total: i32 = 0;
    let mut edges = 0i32;
    for y in 1..w - 1 {
        for x in 1..w - 1 {
            let gx = px(x + 1, y - 1) + 2 * px(x + 1, y) + px(x + 1, y + 1)
                - px(x - 1, y - 1)
                - 2 * px(x - 1, y)
                - px(x - 1, y + 1);
            let gy = px(x - 1, y + 1) + 2 * px(x, y + 1) + px(x + 1, y + 1)
                - px(x - 1, y - 1)
                - 2 * px(x, y - 1)
                - px(x + 1, y - 1);
            let mag = gx.abs() + gy.abs();
            total = total.wrapping_add(mag);
            if mag > 200 {
                edges += 1;
            }
        }
    }
    let expected = vec![total, edges];

    let source = format!(
        r#"
int img[{npix}];
void main(int w) {{
    int total = 0;
    int edges = 0;
    int x; int y;
    for (y = 1; y < w - 1; y++) {{
        for (x = 1; x < w - 1; x++) {{
            int gx = img[(y - 1) * w + x + 1] + 2 * img[y * w + x + 1] + img[(y + 1) * w + x + 1]
                   - img[(y - 1) * w + x - 1] - 2 * img[y * w + x - 1] - img[(y + 1) * w + x - 1];
            int gy = img[(y + 1) * w + x - 1] + 2 * img[(y + 1) * w + x] + img[(y + 1) * w + x + 1]
                   - img[(y - 1) * w + x - 1] - 2 * img[(y - 1) * w + x] - img[(y - 1) * w + x + 1];
            int mag = abs(gx) + abs(gy);
            total += mag;
            if (mag > 200) edges++;
        }}
    }}
    emit(total);
    emit(edges);
}}
"#,
        npix = SOBEL_W * SOBEL_W
    );

    Workload {
        name: "sobel".into(),
        area: AppArea::Video,
        description: "Sobel 3x3 edge detection on a 16x16 tile".into(),
        source,
        args: vec![SOBEL_W as i32],
        inputs: vec![("img".into(), img)],
        expected,
    }
}

// ---------------------------------------------------------------------------
// 3x3 median filter (min/max sorting network)
// ---------------------------------------------------------------------------

const MED_W: usize = 12;

fn median9(mut v: [i32; 9]) -> i32 {
    // Classic 19-comparator median-of-9 exchange network (Paeth).
    let sort2 = |a: usize, b: usize, v: &mut [i32; 9]| {
        let lo = v[a].min(v[b]);
        let hi = v[a].max(v[b]);
        v[a] = lo;
        v[b] = hi;
    };
    let pairs = [
        (1, 2),
        (4, 5),
        (7, 8),
        (0, 1),
        (3, 4),
        (6, 7),
        (1, 2),
        (4, 5),
        (7, 8),
        (0, 3),
        (5, 8),
        (4, 7),
        (3, 6),
        (1, 4),
        (2, 5),
        (4, 7),
        (4, 2),
        (6, 4),
        (4, 2),
    ];
    for (a, b) in pairs {
        sort2(a, b, &mut v);
    }
    v[4]
}

/// 3×3 median filter over a 12×12 tile using a min/max exchange network —
/// a showcase target for custom min/max-rich instructions.
pub fn median() -> Workload {
    let mut g = Gen::new(0x3ED1_0009);
    let img = g.vec(MED_W * MED_W, 0, 256);

    let w = MED_W as i32;
    let px = |x: i32, y: i32| img[(y * w + x) as usize];
    let mut cks: i32 = 0;
    for y in 1..w - 1 {
        for x in 1..w - 1 {
            let v = [
                px(x - 1, y - 1),
                px(x, y - 1),
                px(x + 1, y - 1),
                px(x - 1, y),
                px(x, y),
                px(x + 1, y),
                px(x - 1, y + 1),
                px(x, y + 1),
                px(x + 1, y + 1),
            ];
            let m = median9(v);
            cks = cks.wrapping_mul(31).wrapping_add(m);
        }
    }
    let expected = vec![cks];

    let source = format!(
        r#"
int img[{npix}];
int v[9];
void main(int w) {{
    int cks = 0;
    int x; int y;
    for (y = 1; y < w - 1; y++) {{
        for (x = 1; x < w - 1; x++) {{
            v[0] = img[(y - 1) * w + x - 1];
            v[1] = img[(y - 1) * w + x];
            v[2] = img[(y - 1) * w + x + 1];
            v[3] = img[y * w + x - 1];
            v[4] = img[y * w + x];
            v[5] = img[y * w + x + 1];
            v[6] = img[(y + 1) * w + x - 1];
            v[7] = img[(y + 1) * w + x];
            v[8] = img[(y + 1) * w + x + 1];
            int lo;
            lo = min(v[1], v[2]); v[2] = max(v[1], v[2]); v[1] = lo;
            lo = min(v[4], v[5]); v[5] = max(v[4], v[5]); v[4] = lo;
            lo = min(v[7], v[8]); v[8] = max(v[7], v[8]); v[7] = lo;
            lo = min(v[0], v[1]); v[1] = max(v[0], v[1]); v[0] = lo;
            lo = min(v[3], v[4]); v[4] = max(v[3], v[4]); v[3] = lo;
            lo = min(v[6], v[7]); v[7] = max(v[6], v[7]); v[6] = lo;
            lo = min(v[1], v[2]); v[2] = max(v[1], v[2]); v[1] = lo;
            lo = min(v[4], v[5]); v[5] = max(v[4], v[5]); v[4] = lo;
            lo = min(v[7], v[8]); v[8] = max(v[7], v[8]); v[7] = lo;
            lo = min(v[0], v[3]); v[3] = max(v[0], v[3]); v[0] = lo;
            lo = min(v[5], v[8]); v[8] = max(v[5], v[8]); v[5] = lo;
            lo = min(v[4], v[7]); v[7] = max(v[4], v[7]); v[4] = lo;
            lo = min(v[3], v[6]); v[6] = max(v[3], v[6]); v[3] = lo;
            lo = min(v[1], v[4]); v[4] = max(v[1], v[4]); v[1] = lo;
            lo = min(v[2], v[5]); v[5] = max(v[2], v[5]); v[2] = lo;
            lo = min(v[4], v[7]); v[7] = max(v[4], v[7]); v[4] = lo;
            lo = min(v[4], v[2]); v[2] = max(v[4], v[2]); v[4] = lo;
            lo = min(v[6], v[4]); v[4] = max(v[6], v[4]); v[6] = lo;
            lo = min(v[4], v[2]); v[2] = max(v[4], v[2]); v[4] = lo;
            cks = cks * 31 + v[4];
        }}
    }}
    emit(cks);
}}
"#,
        npix = MED_W * MED_W
    );

    Workload {
        name: "median".into(),
        area: AppArea::Video,
        description: "3x3 median filter via min/max exchange network".into(),
        source,
        args: vec![MED_W as i32],
        inputs: vec![("img".into(), img)],
        expected,
    }
}

// ---------------------------------------------------------------------------
// YUV -> RGB conversion
// ---------------------------------------------------------------------------

const YUV_N: usize = 64;

fn clamp255(v: i32) -> i32 {
    v.clamp(0, 255)
}

/// ITU-R BT.601 integer YUV→RGB of 64 pixels.
pub fn yuv2rgb() -> Workload {
    let mut g = Gen::new(0x10B6_000A);
    let yy = g.vec(YUV_N, 16, 236);
    let uu = g.vec(YUV_N, 16, 240);
    let vv = g.vec(YUV_N, 16, 240);

    let mut cks_r: i32 = 0;
    let mut cks_g: i32 = 0;
    let mut cks_b: i32 = 0;
    for i in 0..YUV_N {
        let c = yy[i] - 16;
        let d = uu[i] - 128;
        let e = vv[i] - 128;
        let r = clamp255((298 * c + 409 * e + 128) >> 8);
        let gg = clamp255((298 * c - 100 * d - 208 * e + 128) >> 8);
        let b = clamp255((298 * c + 516 * d + 128) >> 8);
        cks_r = cks_r.wrapping_mul(7).wrapping_add(r);
        cks_g = cks_g.wrapping_mul(7).wrapping_add(gg);
        cks_b = cks_b.wrapping_mul(7).wrapping_add(b);
    }
    let expected = vec![cks_r, cks_g, cks_b];

    let source = format!(
        r#"
int yy[{n}];
int uu[{n}];
int vv[{n}];
void main(int n) {{
    int cr = 0; int cg = 0; int cb = 0;
    int i;
    for (i = 0; i < n; i++) {{
        int c = yy[i] - 16;
        int d = uu[i] - 128;
        int e = vv[i] - 128;
        int r = (298 * c + 409 * e + 128) >> 8;
        int g = (298 * c - 100 * d - 208 * e + 128) >> 8;
        int b = (298 * c + 516 * d + 128) >> 8;
        r = min(max(r, 0), 255);
        g = min(max(g, 0), 255);
        b = min(max(b, 0), 255);
        cr = cr * 7 + r;
        cg = cg * 7 + g;
        cb = cb * 7 + b;
    }}
    emit(cr);
    emit(cg);
    emit(cb);
}}
"#,
        n = YUV_N
    );

    Workload {
        name: "yuv2rgb".into(),
        area: AppArea::Video,
        description: "BT.601 integer YUV to RGB with clamping".into(),
        source,
        args: vec![YUV_N as i32],
        inputs: vec![("yy".into(), yy), ("uu".into(), uu), ("vv".into(), vv)],
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median9_is_a_median() {
        assert_eq!(median9([5, 1, 9, 3, 7, 2, 8, 4, 6]), 5);
        assert_eq!(median9([1, 1, 1, 1, 9, 9, 9, 9, 5]), 5);
        assert_eq!(median9([0, 0, 0, 0, 0, 0, 0, 0, 0]), 0);
        // Brute-force comparison on a few random sets.
        let mut g = Gen::new(99);
        for _ in 0..50 {
            let mut v = [0i32; 9];
            for x in v.iter_mut() {
                *x = g.range(0, 100);
            }
            let mut s = v;
            s.sort_unstable();
            assert_eq!(median9(v), s[4], "failed on {v:?}");
        }
    }

    #[test]
    fn dct_of_zero_block_is_zero() {
        let ctab = cos_table();
        let (out, cks) = dct_golden(&[0; 64], &ctab);
        assert!(out.iter().all(|&v| v == 0));
        assert_eq!(cks, 0);
    }

    #[test]
    fn dct_dc_coefficient_tracks_mean() {
        let ctab = cos_table();
        let blk = [100i32; 64];
        let (out, _) = dct_golden(&blk, &ctab);
        // DC after two 1024-scaled passes: 100*8*1024>>10 = 800 per row pass,
        // then 800*8*1024>>10 = 6400.
        assert_eq!(out[0], 6400);
    }

    #[test]
    fn yuv_grey_is_grey() {
        let c = 128 - 16;
        let r = clamp255((298 * c + 128) >> 8);
        assert!((r - 130).abs() <= 1);
    }

    #[test]
    fn all_are_video() {
        for w in all() {
            assert_eq!(w.area, AppArea::Video);
        }
    }
}
