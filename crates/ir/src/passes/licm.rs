//! Loop-invariant code motion.
//!
//! Hoists pure, speculable instructions whose operands are not redefined
//! inside the loop into a preheader block. Because hoisted instructions are
//! trap-free and side-effect-free, executing them when the loop body would
//! not have run is harmless; the remaining conditions guarantee the hoisted
//! value equals the in-loop value on every iteration:
//!
//! * every source register has **no definitions inside the loop**;
//! * the destination has **exactly one definition inside the loop** (the
//!   candidate itself);
//! * the destination is **not live into the loop header** (so the preheader
//!   definition cannot clobber a value the first iterations read from
//!   outside).

use crate::cfg::{natural_loops, predecessors, NaturalLoop};
use crate::func::{Block, Function};
use crate::inst::{BlockId, Inst, Terminator, VReg};
use crate::liveness::liveness;
use std::collections::{BTreeMap, BTreeSet};

/// Run LICM on every natural loop. Returns whether anything moved.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    // Loops are recomputed after each transformation because block ids shift
    // when preheaders are inserted.
    loop {
        let loops = natural_loops(f);
        let mut moved_any = false;
        for l in loops {
            if hoist_one_loop(f, &l) {
                moved_any = true;
                changed = true;
                break; // recompute analyses
            }
        }
        if !moved_any {
            break;
        }
    }
    changed
}

fn hoist_one_loop(f: &mut Function, l: &NaturalLoop) -> bool {
    let live = liveness(f);
    let in_loop: BTreeSet<BlockId> = l.blocks.iter().copied().collect();

    // Count definitions of every register inside the loop.
    let mut def_count: BTreeMap<VReg, u32> = BTreeMap::new();
    for &b in &in_loop {
        for inst in &f.block(b).insts {
            for d in inst.defs() {
                *def_count.entry(d).or_insert(0) += 1;
            }
        }
    }

    // Candidates: pure insts, invariant sources, single def, not live into
    // the header.
    let mut to_hoist: Vec<(BlockId, usize)> = Vec::new();
    let mut hoisted_defs: BTreeSet<VReg> = BTreeSet::new();
    for &b in &l.blocks {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if !inst.is_pure() {
                continue;
            }
            let srcs_invariant = inst
                .uses()
                .iter()
                .all(|u| !def_count.contains_key(u) || hoisted_defs.contains(u));
            let defs = inst.defs();
            let single_def = defs.iter().all(|d| def_count.get(d) == Some(&1));
            let not_live_in_header = defs
                .iter()
                .all(|d| !live.live_in[l.header.0 as usize].contains(d));
            if srcs_invariant && single_def && not_live_in_header {
                to_hoist.push((b, i));
                hoisted_defs.extend(defs);
            }
        }
    }
    if to_hoist.is_empty() {
        return false;
    }

    // Build (or reuse) a preheader: a fresh block between all non-loop
    // predecessors of the header and the header.
    let preds = predecessors(f);
    let outside_preds: Vec<BlockId> = preds[l.header.0 as usize]
        .iter()
        .copied()
        .filter(|p| !in_loop.contains(p))
        .collect();
    if outside_preds.is_empty() {
        return false; // unreachable loop
    }
    let pre = BlockId(f.blocks.len() as u32);
    f.blocks.push(Block {
        insts: Vec::new(),
        term: Terminator::Jump(l.header),
    });
    for p in outside_preds {
        let header = l.header;
        f.block_mut(p)
            .term
            .map_blocks(|b| if b == header { pre } else { b });
    }

    // Move the instructions, preserving their relative order. Indices are
    // collected per block so removal works back-to-front.
    let mut moved: Vec<Inst> = Vec::new();
    let mut by_block: BTreeMap<BlockId, Vec<usize>> = BTreeMap::new();
    for (b, i) in to_hoist {
        by_block.entry(b).or_default().push(i);
    }
    // Collect in loop-block order to keep dependency order among hoisted ops.
    for (&b, idxs) in &by_block {
        for &i in idxs.iter() {
            moved.push(f.block(b).insts[i].clone());
        }
    }
    for (&b, idxs) in &by_block {
        for &i in idxs.iter().rev() {
            f.block_mut(b).insts.remove(i);
        }
    }
    // Order hoisted instructions topologically by def-use among themselves.
    let mut ordered: Vec<Inst> = Vec::new();
    let mut placed: BTreeSet<VReg> = BTreeSet::new();
    let mut pending = moved;
    while !pending.is_empty() {
        let before = pending.len();
        let mut rest = Vec::new();
        for inst in pending {
            let ready = inst
                .uses()
                .iter()
                .all(|u| !hoisted_defs.contains(u) || placed.contains(u));
            if ready {
                placed.extend(inst.defs());
                ordered.push(inst);
            } else {
                rest.push(inst);
            }
        }
        pending = rest;
        if pending.len() == before {
            // Cycle between hoisted ops cannot happen (each has a single
            // def and invariant sources), but guard against it.
            ordered.extend(pending);
            break;
        }
    }
    f.block_mut(pre).insts = ordered;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Val};
    use crate::interp::run_module;
    use asip_isa::Opcode;

    /// while (i < n) { t = n * 3 (invariant); s += t; i += 1 } emit s
    fn loop_with_invariant() -> Function {
        let mut f = Function::new("main", 1, false);
        let s = f.new_vreg();
        let i = f.new_vreg();
        let c = f.new_vreg();
        let t = f.new_vreg();
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.blocks[0].insts.extend([
            Inst::Un {
                op: Opcode::Mov,
                dst: s,
                a: Val::Imm(0),
            },
            Inst::Un {
                op: Opcode::Mov,
                dst: i,
                a: Val::Imm(0),
            },
        ]);
        f.blocks[0].term = Terminator::Jump(header);
        f.block_mut(header).insts.push(Inst::Bin {
            op: Opcode::CmpLt,
            dst: c,
            a: Val::Reg(i),
            b: Val::Reg(VReg(0)),
        });
        f.block_mut(header).term = Terminator::Branch {
            c: Val::Reg(c),
            t: body,
            f: exit,
        };
        f.block_mut(body).insts.extend([
            Inst::Bin {
                op: Opcode::Mul,
                dst: t,
                a: Val::Reg(VReg(0)),
                b: Val::Imm(3),
            },
            Inst::Bin {
                op: Opcode::Add,
                dst: s,
                a: Val::Reg(s),
                b: Val::Reg(t),
            },
            Inst::Bin {
                op: Opcode::Add,
                dst: i,
                a: Val::Reg(i),
                b: Val::Imm(1),
            },
        ]);
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit)
            .insts
            .push(Inst::Emit { val: Val::Reg(s) });
        f.block_mut(exit).term = Terminator::Ret(None);
        f
    }

    #[test]
    fn hoists_invariant_multiply() {
        let mut f = loop_with_invariant();
        let body_muls_before = count_muls_in_loop(&f);
        assert_eq!(body_muls_before, 1);
        assert!(run(&mut f));
        // The multiply left the loop body.
        assert_eq!(count_muls_in_loop(&f), 0);
    }

    fn count_muls_in_loop(f: &Function) -> usize {
        let loops = natural_loops(f);
        loops
            .iter()
            .flat_map(|l| l.blocks.iter())
            .map(|&b| {
                f.block(b)
                    .insts
                    .iter()
                    .filter(|i| {
                        matches!(
                            i,
                            Inst::Bin {
                                op: Opcode::Mul,
                                ..
                            }
                        )
                    })
                    .count()
            })
            .sum()
    }

    #[test]
    fn semantics_preserved() {
        let f0 = loop_with_invariant();
        let mut f1 = f0.clone();
        run(&mut f1);
        let m0 = crate::func::Module {
            funcs: vec![f0],
            globals: vec![],
            custom_ops: vec![],
        };
        let m1 = crate::func::Module {
            funcs: vec![f1],
            globals: vec![],
            custom_ops: vec![],
        };
        for n in [0, 1, 7] {
            let r0 = run_module(&m0, "main", &[n]).unwrap();
            let r1 = run_module(&m1, "main", &[n]).unwrap();
            assert_eq!(r0.output, r1.output, "n={n}");
        }
    }

    #[test]
    fn does_not_hoist_variant_values() {
        // s += i is variant: must stay.
        let mut f = loop_with_invariant();
        run(&mut f);
        let loops = natural_loops(&f);
        let l = &loops[0];
        let adds: usize = l
            .blocks
            .iter()
            .map(|&b| {
                f.block(b)
                    .insts
                    .iter()
                    .filter(|i| {
                        matches!(
                            i,
                            Inst::Bin {
                                op: Opcode::Add,
                                ..
                            }
                        )
                    })
                    .count()
            })
            .sum();
        assert!(adds >= 2, "accumulation and induction stay inside");
    }

    #[test]
    fn does_not_hoist_loads_or_stores() {
        let mut f = loop_with_invariant();
        // Replace the invariant multiply with an (invariant-looking) load.
        let body = BlockId(2);
        f.block_mut(body).insts[0] = Inst::Load {
            dst: VReg(4),
            addr: crate::inst::Addr::reg(VReg(0)),
        };
        let before = f.clone();
        run(&mut f);
        // The load must still be in the body block (loads are not pure).
        let still_there = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .count();
        assert_eq!(still_there, 1);
        let loops = natural_loops(&f);
        assert!(loops[0].blocks.iter().any(|&b| f
            .block(b)
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Load { .. }))));
        let _ = before;
    }
}
