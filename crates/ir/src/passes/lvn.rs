//! Local value numbering with integrated copy/constant propagation.
//!
//! Works block-locally on the non-SSA IR by versioning virtual registers:
//! a table entry is invalidated the moment any register it mentions is
//! redefined.

use crate::func::Function;
use crate::inst::{Inst, Val};
use asip_isa::Opcode;
use std::collections::HashMap;

/// Operand key: immediates by value, registers by (name, version).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Key {
    Imm(i32),
    Reg(u32, u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(Opcode, Key, Key),
    Un(Opcode, Key),
    Select(Key, Key, Key),
}

/// Run LVN + copy propagation over every block. Returns whether anything
/// changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    let nv = f.num_vregs as usize;
    for block in &mut f.blocks {
        let mut version = vec![0u32; nv];
        // copies[r] = (value r currently equals, src version at record time)
        let mut copies: HashMap<u32, (Val, u32)> = HashMap::new();
        let mut exprs: HashMap<ExprKey, (u32, u32)> = HashMap::new(); // -> (vreg, version)

        let key_of = |v: Val, version: &[u32]| -> Key {
            match v {
                Val::Imm(k) => Key::Imm(k),
                Val::Reg(r) => Key::Reg(r.0, version[r.0 as usize]),
            }
        };

        for inst in &mut block.insts {
            // 1. Copy/constant propagate into operands.
            let before = inst.clone();
            inst.map_uses(|r| {
                if let Some(&(val, ver)) = copies.get(&r.0) {
                    let ok = match val {
                        Val::Imm(_) => true,
                        Val::Reg(src) => version[src.0 as usize] == ver,
                    };
                    if ok {
                        return val;
                    }
                }
                Val::Reg(r)
            });
            if *inst != before {
                changed = true;
            }

            // 2. Value-number pure expressions.
            let pure = inst.is_pure();
            let expr = match inst {
                Inst::Bin { op, a, b, .. } if pure => {
                    let (mut ka, mut kb) = (key_of(*a, &version), key_of(*b, &version));
                    if op.is_commutative() && kb < ka {
                        std::mem::swap(&mut ka, &mut kb);
                    }
                    Some(ExprKey::Bin(*op, ka, kb))
                }
                Inst::Un { op, a, .. } if *op != Opcode::Mov => {
                    Some(ExprKey::Un(*op, key_of(*a, &version)))
                }
                Inst::Select { c, a, b, .. } => Some(ExprKey::Select(
                    key_of(*c, &version),
                    key_of(*a, &version),
                    key_of(*b, &version),
                )),
                _ => None,
            };

            let mut replaced = false;
            if let Some(e) = expr {
                let dst = inst.defs()[0];
                if let Some(&(src, ver)) = exprs.get(&e) {
                    if version[src as usize] == ver && src != dst.0 {
                        *inst = Inst::Un {
                            op: Opcode::Mov,
                            dst,
                            a: Val::Reg(crate::inst::VReg(src)),
                        };
                        changed = true;
                        replaced = true;
                    }
                }
                if !replaced {
                    // Record after bumping the def's version below.
                }
            }

            // 3. Kill and re-record definitions.
            for d in inst.defs() {
                version[d.0 as usize] += 1;
                copies.remove(&d.0);
            }
            if let Some(e) = expr {
                if !replaced {
                    let dst = inst.defs()[0];
                    exprs.insert(e, (dst.0, version[dst.0 as usize]));
                }
            }

            // 4. Record copies (after the version bump so self-moves expire).
            if let Inst::Un {
                op: Opcode::Mov,
                dst,
                a,
            } = inst
            {
                let ver = match a {
                    Val::Imm(_) => 0,
                    Val::Reg(r) => version[r.0 as usize],
                };
                // A move onto itself carries no information.
                if a.reg() != Some(*dst) {
                    copies.insert(dst.0, (*a, ver));
                }
            }
        }

        // Propagate into the terminator too.
        let subst = |v: Val| -> Val {
            if let Val::Reg(r) = v {
                if let Some(&(val, ver)) = copies.get(&r.0) {
                    let ok = match val {
                        Val::Imm(_) => true,
                        Val::Reg(src) => version[src.0 as usize] == ver,
                    };
                    if ok {
                        return val;
                    }
                }
            }
            v
        };
        match &mut block.term {
            crate::inst::Terminator::Branch { c, .. } => {
                let nc = subst(*c);
                if nc != *c {
                    *c = nc;
                    changed = true;
                }
            }
            crate::inst::Terminator::Ret(Some(v)) => {
                let nv2 = subst(*v);
                if nv2 != *v {
                    *v = nv2;
                    changed = true;
                }
            }
            _ => {}
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Function};
    use crate::inst::{Terminator, VReg};

    fn f_with(insts: Vec<Inst>) -> Function {
        let mut f = Function::new("t", 2, false);
        f.num_vregs = 16;
        f.blocks[0] = Block {
            insts,
            term: Terminator::Ret(None),
        };
        f
    }

    #[test]
    fn cse_within_block() {
        let mut f = f_with(vec![
            Inst::Bin {
                op: Opcode::Add,
                dst: VReg(2),
                a: Val::Reg(VReg(0)),
                b: Val::Reg(VReg(1)),
            },
            Inst::Bin {
                op: Opcode::Add,
                dst: VReg(3),
                a: Val::Reg(VReg(0)),
                b: Val::Reg(VReg(1)),
            },
        ]);
        assert!(run(&mut f));
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::Un {
                op: Opcode::Mov,
                dst: VReg(3),
                a: Val::Reg(VReg(2))
            }
        );
    }

    #[test]
    fn cse_respects_redefinition() {
        let mut f = f_with(vec![
            Inst::Bin {
                op: Opcode::Add,
                dst: VReg(2),
                a: Val::Reg(VReg(0)),
                b: Val::Reg(VReg(1)),
            },
            Inst::Bin {
                op: Opcode::Add,
                dst: VReg(0),
                a: Val::Reg(VReg(0)),
                b: Val::Imm(1),
            },
            Inst::Bin {
                op: Opcode::Add,
                dst: VReg(3),
                a: Val::Reg(VReg(0)),
                b: Val::Reg(VReg(1)),
            },
        ]);
        run(&mut f);
        // v0 changed between the two adds: the second must NOT be CSE'd.
        assert!(matches!(
            f.blocks[0].insts[2],
            Inst::Bin {
                op: Opcode::Add,
                ..
            }
        ));
    }

    #[test]
    fn cse_commutative_operands() {
        let mut f = f_with(vec![
            Inst::Bin {
                op: Opcode::Mul,
                dst: VReg(2),
                a: Val::Reg(VReg(0)),
                b: Val::Reg(VReg(1)),
            },
            Inst::Bin {
                op: Opcode::Mul,
                dst: VReg(3),
                a: Val::Reg(VReg(1)),
                b: Val::Reg(VReg(0)),
            },
        ]);
        assert!(run(&mut f));
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::Un {
                op: Opcode::Mov,
                dst: VReg(3),
                a: Val::Reg(VReg(2))
            }
        );
    }

    #[test]
    fn copy_propagation_through_mov() {
        let mut f = f_with(vec![
            Inst::Un {
                op: Opcode::Mov,
                dst: VReg(2),
                a: Val::Reg(VReg(0)),
            },
            Inst::Bin {
                op: Opcode::Add,
                dst: VReg(3),
                a: Val::Reg(VReg(2)),
                b: Val::Imm(1),
            },
        ]);
        assert!(run(&mut f));
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::Bin {
                op: Opcode::Add,
                dst: VReg(3),
                a: Val::Reg(VReg(0)),
                b: Val::Imm(1)
            }
        );
    }

    #[test]
    fn copy_propagation_invalidated_by_redef() {
        let mut f = f_with(vec![
            Inst::Un {
                op: Opcode::Mov,
                dst: VReg(2),
                a: Val::Reg(VReg(0)),
            },
            Inst::Bin {
                op: Opcode::Add,
                dst: VReg(0),
                a: Val::Reg(VReg(0)),
                b: Val::Imm(5),
            },
            Inst::Emit {
                val: Val::Reg(VReg(2)),
            },
        ]);
        run(&mut f);
        // v2 must still be emitted as v2 (v0 changed since the copy).
        assert_eq!(
            f.blocks[0].insts[2],
            Inst::Emit {
                val: Val::Reg(VReg(2))
            }
        );
    }

    #[test]
    fn constant_propagates_into_terminator() {
        let mut f = Function::new("t", 0, false);
        f.num_vregs = 4;
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.blocks[0] = Block {
            insts: vec![Inst::Un {
                op: Opcode::Mov,
                dst: VReg(1),
                a: Val::Imm(1),
            }],
            term: Terminator::Branch {
                c: Val::Reg(VReg(1)),
                t: b1,
                f: b2,
            },
        };
        assert!(run(&mut f));
        assert_eq!(
            f.blocks[0].term,
            Terminator::Branch {
                c: Val::Imm(1),
                t: b1,
                f: b2
            }
        );
    }

    #[test]
    fn division_not_value_numbered() {
        // Div may trap; it must not be CSE'd away into a Mov (two traps
        // collapse to one, which is fine, but our conservative rule keeps
        // both — assert that behaviour).
        let mut f = f_with(vec![
            Inst::Bin {
                op: Opcode::Div,
                dst: VReg(2),
                a: Val::Reg(VReg(0)),
                b: Val::Reg(VReg(1)),
            },
            Inst::Bin {
                op: Opcode::Div,
                dst: VReg(3),
                a: Val::Reg(VReg(0)),
                b: Val::Reg(VReg(1)),
            },
        ]);
        run(&mut f);
        assert!(matches!(
            f.blocks[0].insts[1],
            Inst::Bin {
                op: Opcode::Div,
                ..
            }
        ));
    }
}
