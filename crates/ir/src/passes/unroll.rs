//! Loop unrolling by whole-loop replication.
//!
//! The transform clones the complete natural loop (header included) `K-1`
//! times and chains the latches: copy *j*'s latch jumps to copy *j+1*'s
//! header, the last copy's latch back to the original header. Because the
//! header (with its exit test) is replicated too, this is correct for **any**
//! single-latch loop with no induction-variable analysis and no register
//! renaming — the classic "unrolling with early exits" that superblock
//! schedulers feed on.

use crate::cfg::natural_loops;
use crate::func::{Block, Function};
use crate::inst::BlockId;
use std::collections::BTreeMap;

/// Unrolling configuration.
#[derive(Debug, Clone, Copy)]
pub struct UnrollConfig {
    /// Replication factor (1 = no unrolling).
    pub factor: u32,
    /// Budget for the *unrolled* loop size in instructions; the factor is
    /// reduced for large bodies so unrolling never explodes register
    /// pressure (factor = min(requested, budget / body_size)).
    pub max_loop_insts: usize,
    /// Only unroll innermost loops.
    pub innermost_only: bool,
}

impl Default for UnrollConfig {
    fn default() -> Self {
        UnrollConfig {
            factor: 4,
            max_loop_insts: 64,
            innermost_only: true,
        }
    }
}

/// Unroll eligible loops. Returns whether anything changed.
pub fn run(f: &mut Function, cfg: &UnrollConfig) -> bool {
    if cfg.factor <= 1 {
        return false;
    }
    let mut changed = false;
    // One pass over the loops found up front; freshly created copies are not
    // re-unrolled (their headers are new blocks, not rediscovered this pass).
    let loops = natural_loops(f);
    let headers: Vec<BlockId> = loops.iter().map(|l| l.header).collect();
    for l in &loops {
        // Single-latch loops only: a second back edge to the same header
        // would make latch redirection ambiguous.
        if loops.iter().filter(|o| o.header == l.header).count() > 1 {
            continue;
        }
        if cfg.innermost_only {
            // A loop is innermost if it contains no other loop's header
            // besides its own.
            let inner = headers
                .iter()
                .all(|&h| h == l.header || !l.blocks.contains(&h));
            if !inner {
                continue;
            }
        }
        let size: usize = l.blocks.iter().map(|&b| f.block(b).insts.len()).sum();
        let factor = (cfg.max_loop_insts / size.max(1)).min(cfg.factor as usize) as u32;
        if factor <= 1 {
            continue;
        }
        unroll_loop(f, &l.blocks, l.header, l.latch, factor);
        changed = true;
    }
    changed
}

fn unroll_loop(f: &mut Function, blocks: &[BlockId], header: BlockId, latch: BlockId, factor: u32) {
    // copies[j] maps original block -> block of copy j (j in 1..factor).
    let mut copies: Vec<BTreeMap<BlockId, BlockId>> = Vec::new();
    for _ in 1..factor {
        let mut map = BTreeMap::new();
        for &b in blocks {
            let nb = BlockId(f.blocks.len() as u32);
            f.blocks.push(f.block(b).clone());
            map.insert(b, nb);
        }
        copies.push(map);
    }

    // Rewire copy j's internal edges: in-loop targets go to copy j's blocks;
    // the latch's back edge goes to the *next* copy's header (or the
    // original header for the last copy).
    for (j, map) in copies.iter().enumerate() {
        for (&orig, &clone) in map {
            let next_header = if j + 1 < copies.len() {
                copies[j + 1][&header]
            } else {
                header
            };
            let term = &mut f.blocks[clone.0 as usize].term;
            term.map_blocks(|t| {
                if orig == latch && t == header {
                    next_header
                } else if let Some(&c) = map.get(&t) {
                    c
                } else {
                    t // loop exit: unchanged
                }
            });
        }
    }

    // Original latch now continues into copy 1.
    if let Some(first) = copies.first() {
        let first_header = first[&header];
        f.blocks[latch.0 as usize]
            .term
            .map_blocks(|t| if t == header { first_header } else { t });
    }
    let _ = Block::jump_to; // (kept for symmetry with other passes' helpers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Module;
    use crate::inst::{Inst, Terminator, VReg, Val};
    use crate::interp::run_module;
    use asip_isa::Opcode;

    /// sum 0..n loop.
    fn counting_loop() -> Function {
        let mut f = Function::new("main", 1, false);
        let s = f.new_vreg();
        let i = f.new_vreg();
        let c = f.new_vreg();
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.blocks[0].insts.extend([
            Inst::Un {
                op: Opcode::Mov,
                dst: s,
                a: Val::Imm(0),
            },
            Inst::Un {
                op: Opcode::Mov,
                dst: i,
                a: Val::Imm(0),
            },
        ]);
        f.blocks[0].term = Terminator::Jump(header);
        f.block_mut(header).insts.push(Inst::Bin {
            op: Opcode::CmpLt,
            dst: c,
            a: Val::Reg(i),
            b: Val::Reg(VReg(0)),
        });
        f.block_mut(header).term = Terminator::Branch {
            c: Val::Reg(c),
            t: body,
            f: exit,
        };
        f.block_mut(body).insts.extend([
            Inst::Bin {
                op: Opcode::Add,
                dst: s,
                a: Val::Reg(s),
                b: Val::Reg(i),
            },
            Inst::Bin {
                op: Opcode::Add,
                dst: i,
                a: Val::Reg(i),
                b: Val::Imm(1),
            },
        ]);
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit)
            .insts
            .push(Inst::Emit { val: Val::Reg(s) });
        f.block_mut(exit).term = Terminator::Ret(None);
        f
    }

    #[test]
    fn unrolled_loop_matches_original_output() {
        for factor in [2u32, 3, 4] {
            let f0 = counting_loop();
            let mut f1 = f0.clone();
            assert!(run(
                &mut f1,
                &UnrollConfig {
                    factor,
                    ..Default::default()
                }
            ));
            let m0 = Module {
                funcs: vec![f0],
                globals: vec![],
                custom_ops: vec![],
            };
            let m1 = Module {
                funcs: vec![f1],
                globals: vec![],
                custom_ops: vec![],
            };
            // Trip counts that are and are not multiples of the factor.
            for n in [0, 1, 2, 3, 4, 5, 7, 8, 12, 13] {
                let r0 = run_module(&m0, "main", &[n]).unwrap();
                let r1 = run_module(&m1, "main", &[n]).unwrap();
                assert_eq!(r0.output, r1.output, "factor={factor} n={n}");
            }
        }
    }

    #[test]
    fn block_count_grows_by_factor() {
        let mut f = counting_loop();
        let before = f.blocks.len();
        run(
            &mut f,
            &UnrollConfig {
                factor: 4,
                ..Default::default()
            },
        );
        // Loop has 2 blocks (header+body); 3 extra copies → +6 blocks.
        assert_eq!(f.blocks.len(), before + 6);
    }

    #[test]
    fn factor_one_is_noop() {
        let mut f = counting_loop();
        let before = f.clone();
        assert!(!run(
            &mut f,
            &UnrollConfig {
                factor: 1,
                ..Default::default()
            }
        ));
        assert_eq!(f, before);
    }

    #[test]
    fn oversized_loops_skipped() {
        let mut f = counting_loop();
        let before = f.blocks.len();
        run(
            &mut f,
            &UnrollConfig {
                factor: 4,
                max_loop_insts: 1,
                innermost_only: true,
            },
        );
        assert_eq!(f.blocks.len(), before);
    }

    #[test]
    fn interpreter_executes_fewer_header_visits_per_iteration() {
        // With whole-loop replication the dynamic instruction count is the
        // same, but the number of *distinct block entries* per logical
        // iteration drops once the backend merges copies into superblocks.
        // Here we simply check the unrolled program still profiles cleanly.
        let mut f = counting_loop();
        run(
            &mut f,
            &UnrollConfig {
                factor: 2,
                ..Default::default()
            },
        );
        let m = Module {
            funcs: vec![f],
            globals: vec![],
            custom_ops: vec![],
        };
        let r = run_module(&m, "main", &[10]).unwrap();
        assert_eq!(r.output, vec![45]);
    }
}
