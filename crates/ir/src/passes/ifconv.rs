//! If-conversion: turn short branchy diamonds and triangles into straight-line
//! code with `Select` operations.
//!
//! This is the key enabler for wide issue on branchy embedded code (paper
//! §1.2's `Select`-style "special ops"): a converted hammock costs a few
//! ALU slots instead of a branch misprediction and a fetch redirect.

use crate::cfg::predecessors;
use crate::func::Function;
use crate::inst::{BlockId, Inst, Terminator, VReg, Val};
use crate::liveness::liveness;
use std::collections::BTreeMap;

/// Maximum instructions per converted side.
const MAX_SIDE: usize = 8;

/// Run if-conversion to a fixpoint. Returns whether anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        if convert_one(f) {
            changed = true;
            super::simplify::run(f);
        } else {
            break;
        }
    }
    changed
}

/// Find and convert one hammock; returns true if a conversion happened.
fn convert_one(f: &mut Function) -> bool {
    let preds = predecessors(f);
    let live = liveness(f);
    for bi in 0..f.blocks.len() {
        let (c, t, fl) = match f.blocks[bi].term {
            Terminator::Branch { c, t, f: fl } if t != fl => (c, t, fl),
            _ => continue,
        };
        let b = BlockId(bi as u32);

        let side_ok = |s: BlockId, f: &Function, preds: &[Vec<BlockId>]| -> bool {
            s != b
                && preds[s.0 as usize].len() == 1
                && f.block(s).insts.len() <= MAX_SIDE
                && f.block(s).insts.iter().all(Inst::is_pure)
                && matches!(f.block(s).term, Terminator::Jump(_))
        };
        let jump_target = |s: BlockId, f: &Function| -> BlockId {
            match f.block(s).term {
                Terminator::Jump(j) => j,
                _ => unreachable!("side_ok checked"),
            }
        };

        // Diamond: b -> t, f; t -> j; f -> j.
        if side_ok(t, f, &preds) && side_ok(fl, f, &preds) {
            let jt = jump_target(t, f);
            let jf = jump_target(fl, f);
            if jt == jf && jt != t && jt != fl {
                convert(f, b, c, Some(t), Some(fl), jt, &live);
                return true;
            }
        }
        // Triangle: b -> t, f; t -> f (then-side only).
        if side_ok(t, f, &preds) && jump_target(t, f) == fl && fl != t {
            convert(f, b, c, Some(t), None, fl, &live);
            return true;
        }
        // Triangle: b -> t, f; f -> t (else-side only).
        if side_ok(fl, f, &preds) && jump_target(fl, f) == t && t != fl {
            convert(f, b, c, None, Some(fl), t, &live);
            return true;
        }
    }
    false
}

/// Splice the sides into `b`, rename their defs, and emit selects for values
/// that flow to the join.
fn convert(
    f: &mut Function,
    b: BlockId,
    c: Val,
    t_side: Option<BlockId>,
    f_side: Option<BlockId>,
    join: BlockId,
    live: &crate::liveness::Liveness,
) {
    // Rename the defs of a side's instructions to fresh registers, tracking
    // the final name of each original register.
    let splice = |side: Option<BlockId>, f: &mut Function| -> (Vec<Inst>, BTreeMap<VReg, VReg>) {
        let Some(s) = side else {
            return (Vec::new(), BTreeMap::new());
        };
        let insts = f.block(s).insts.clone();
        let mut rename: BTreeMap<VReg, VReg> = BTreeMap::new();
        let mut out = Vec::with_capacity(insts.len());
        for mut inst in insts {
            inst.map_uses(|r| Val::Reg(rename.get(&r).copied().unwrap_or(r)));
            inst.map_defs(|d| {
                let fresh = f.new_vreg();
                rename.insert(d, fresh);
                fresh
            });
            out.push(inst);
        }
        (out, rename)
    };

    let (t_insts, t_map) = splice(t_side, f);
    let (f_insts, f_map) = splice(f_side, f);

    // Values needing a select: defined on either side and live into the join.
    let mut merged: Vec<VReg> = t_map.keys().chain(f_map.keys()).copied().collect();
    merged.sort();
    merged.dedup();
    let join_live = &live.live_in[join.0 as usize];

    let block = f.block_mut(b);
    block.insts.extend(t_insts);
    block.insts.extend(f_insts);
    for v in merged {
        if !join_live.contains(&v) {
            continue;
        }
        let tv = t_map.get(&v).copied().map(Val::Reg).unwrap_or(Val::Reg(v));
        let fv = f_map.get(&v).copied().map(Val::Reg).unwrap_or(Val::Reg(v));
        block.insts.push(Inst::Select {
            dst: v,
            c,
            a: tv,
            b: fv,
        });
    }
    block.term = Terminator::Jump(join);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Module;
    use crate::interp::run_module;
    use asip_isa::Opcode;

    /// main(x): if (x > 0) y = x*2; else y = -x; emit y
    fn diamond() -> Function {
        let mut f = Function::new("main", 1, false);
        let y = f.new_vreg();
        let c = f.new_vreg();
        let tb = f.new_block();
        let fb = f.new_block();
        let join = f.new_block();
        f.blocks[0].insts.push(Inst::Bin {
            op: Opcode::CmpGt,
            dst: c,
            a: Val::Reg(VReg(0)),
            b: Val::Imm(0),
        });
        f.blocks[0].term = Terminator::Branch {
            c: Val::Reg(c),
            t: tb,
            f: fb,
        };
        f.block_mut(tb).insts.push(Inst::Bin {
            op: Opcode::Mul,
            dst: y,
            a: Val::Reg(VReg(0)),
            b: Val::Imm(2),
        });
        f.block_mut(tb).term = Terminator::Jump(join);
        f.block_mut(fb).insts.push(Inst::Bin {
            op: Opcode::Sub,
            dst: y,
            a: Val::Imm(0),
            b: Val::Reg(VReg(0)),
        });
        f.block_mut(fb).term = Terminator::Jump(join);
        f.block_mut(join)
            .insts
            .push(Inst::Emit { val: Val::Reg(y) });
        f.block_mut(join).term = Terminator::Ret(None);
        f
    }

    #[test]
    fn diamond_becomes_straight_line() {
        let mut f = diamond();
        assert!(run(&mut f));
        assert_eq!(f.blocks.len(), 1, "everything merged into the entry");
        assert!(f.blocks[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Select { .. })));
        assert!(matches!(f.blocks[0].term, Terminator::Ret(None)));
    }

    #[test]
    fn diamond_semantics_preserved() {
        let f0 = diamond();
        let mut f1 = f0.clone();
        run(&mut f1);
        let m0 = Module {
            funcs: vec![f0],
            globals: vec![],
            custom_ops: vec![],
        };
        let m1 = Module {
            funcs: vec![f1],
            globals: vec![],
            custom_ops: vec![],
        };
        for x in [-5, -1, 0, 1, 9] {
            assert_eq!(
                run_module(&m0, "main", &[x]).unwrap().output,
                run_module(&m1, "main", &[x]).unwrap().output,
                "x={x}"
            );
        }
    }

    /// main(x): y = 1; if (x > 3) y = x; emit y   (triangle)
    fn triangle() -> Function {
        let mut f = Function::new("main", 1, false);
        let y = f.new_vreg();
        let c = f.new_vreg();
        let tb = f.new_block();
        let join = f.new_block();
        f.blocks[0].insts.extend([
            Inst::Un {
                op: Opcode::Mov,
                dst: y,
                a: Val::Imm(1),
            },
            Inst::Bin {
                op: Opcode::CmpGt,
                dst: c,
                a: Val::Reg(VReg(0)),
                b: Val::Imm(3),
            },
        ]);
        f.blocks[0].term = Terminator::Branch {
            c: Val::Reg(c),
            t: tb,
            f: join,
        };
        f.block_mut(tb).insts.push(Inst::Un {
            op: Opcode::Mov,
            dst: y,
            a: Val::Reg(VReg(0)),
        });
        f.block_mut(tb).term = Terminator::Jump(join);
        f.block_mut(join)
            .insts
            .push(Inst::Emit { val: Val::Reg(y) });
        f.block_mut(join).term = Terminator::Ret(None);
        f
    }

    #[test]
    fn triangle_converts_and_preserves_semantics() {
        let f0 = triangle();
        let mut f1 = f0.clone();
        assert!(run(&mut f1));
        assert_eq!(f1.blocks.len(), 1);
        let m0 = Module {
            funcs: vec![f0],
            globals: vec![],
            custom_ops: vec![],
        };
        let m1 = Module {
            funcs: vec![f1],
            globals: vec![],
            custom_ops: vec![],
        };
        for x in [0, 3, 4, 100] {
            assert_eq!(
                run_module(&m0, "main", &[x]).unwrap().output,
                run_module(&m1, "main", &[x]).unwrap().output
            );
        }
    }

    #[test]
    fn impure_sides_not_converted() {
        let mut f = diamond();
        // Make the then-side impure with a store.
        f.block_mut(BlockId(1)).insts.push(Inst::Store {
            val: Val::Imm(1),
            addr: crate::inst::Addr::reg(VReg(0)),
        });
        assert!(!run(&mut f));
        assert_eq!(f.blocks.len(), 4, "untouched");
    }

    #[test]
    fn oversized_sides_not_converted() {
        let mut f = diamond();
        for _ in 0..(MAX_SIDE + 1) {
            let d = f.new_vreg();
            f.block_mut(BlockId(1)).insts.push(Inst::Bin {
                op: Opcode::Add,
                dst: d,
                a: Val::Imm(0),
                b: Val::Imm(0),
            });
        }
        assert!(!run(&mut f));
    }

    #[test]
    fn side_local_temporaries_do_not_get_selects() {
        // A value defined and consumed entirely inside one side must not
        // produce a select at the join.
        let mut f = diamond();
        let tmp = f.new_vreg();
        let y = VReg(1);
        let tb = BlockId(1);
        f.block_mut(tb).insts.clear();
        f.block_mut(tb).insts.extend([
            Inst::Bin {
                op: Opcode::Add,
                dst: tmp,
                a: Val::Reg(VReg(0)),
                b: Val::Imm(1),
            },
            Inst::Bin {
                op: Opcode::Mul,
                dst: y,
                a: Val::Reg(tmp),
                b: Val::Imm(2),
            },
        ]);
        let mut f1 = f.clone();
        assert!(run(&mut f1));
        let selects = f1.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Select { .. }))
            .count();
        assert_eq!(selects, 1, "only y merges");
    }
}
