//! CFG simplification: jump threading, block merging, unreachable-code
//! removal.

use crate::cfg::{predecessors, reachable};
use crate::func::Function;
use crate::inst::{BlockId, Terminator};

/// Simplify the CFG of `f` to a fixpoint. Returns whether anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for _ in 0..64 {
        let c = thread_jumps(f) | merge_blocks(f) | drop_unreachable(f);
        changed |= c;
        if !c {
            break;
        }
    }
    changed
}

/// Redirect edges that target an empty block ending in an unconditional
/// jump. Also collapses `Branch` with identical successors into `Jump`.
fn thread_jumps(f: &mut Function) -> bool {
    let mut changed = false;
    // Resolve chains b -> c (c empty, Jump d) with cycle protection.
    let resolve = |start: BlockId, f: &Function| -> BlockId {
        let mut cur = start;
        let mut hops = 0;
        while hops < f.blocks.len() {
            let b = f.block(cur);
            if b.insts.is_empty() {
                if let Terminator::Jump(next) = b.term {
                    if next == cur {
                        break; // self-loop
                    }
                    cur = next;
                    hops += 1;
                    continue;
                }
            }
            break;
        }
        cur
    };
    for i in 0..f.blocks.len() {
        let mut term = f.blocks[i].term.clone();
        let before = term.clone();
        term.map_blocks(|b| resolve(b, f));
        if let Terminator::Branch { t, f: fl, c } = term.clone() {
            if t == fl {
                term = Terminator::Jump(t);
                let _ = c;
            }
        }
        if term != before {
            f.blocks[i].term = term;
            changed = true;
        }
    }
    changed
}

/// Merge `b -> c` when `b` ends in an unconditional jump to `c` and `c` has
/// exactly one predecessor.
fn merge_blocks(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let preds = predecessors(f);
        let mut merged = false;
        for i in 0..f.blocks.len() {
            let target = match f.blocks[i].term {
                Terminator::Jump(t) if t.0 as usize != i => t,
                _ => continue,
            };
            if preds[target.0 as usize].len() != 1 || target == f.entry {
                continue;
            }
            // Move target's contents into block i.
            let donor = std::mem::replace(
                &mut f.blocks[target.0 as usize],
                crate::func::Block {
                    insts: vec![],
                    term: Terminator::Jump(target),
                },
            );
            // Leave the donor as an unreachable self-loop; drop_unreachable
            // cleans it up.
            f.blocks[i].insts.extend(donor.insts);
            f.blocks[i].term = donor.term;
            merged = true;
            changed = true;
            break; // predecessor lists are stale; recompute
        }
        if !merged {
            break;
        }
    }
    changed
}

/// Remove unreachable blocks, compacting ids.
fn drop_unreachable(f: &mut Function) -> bool {
    let reach = reachable(f);
    if reach.iter().all(|&r| r) {
        return false;
    }
    let mut remap = vec![BlockId(u32::MAX); f.blocks.len()];
    let mut new_blocks = Vec::new();
    for (i, keep) in reach.iter().enumerate() {
        if *keep {
            remap[i] = BlockId(new_blocks.len() as u32);
            new_blocks.push(f.blocks[i].clone());
        }
    }
    for b in &mut new_blocks {
        b.term.map_blocks(|old| remap[old.0 as usize]);
    }
    f.blocks = new_blocks;
    f.entry = remap[f.entry.0 as usize];
    debug_assert_eq!(f.entry, BlockId(0));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Function};
    use crate::inst::{Inst, VReg, Val};
    use asip_isa::Opcode;

    #[test]
    fn threads_empty_jump_chains() {
        let mut f = Function::new("t", 0, false);
        let b1 = f.new_block(); // empty
        let b2 = f.new_block(); // real target
        f.blocks[0].term = Terminator::Jump(b1);
        f.block_mut(b1).term = Terminator::Jump(b2);
        f.block_mut(b2).insts.push(Inst::Emit { val: Val::Imm(1) });
        f.block_mut(b2).term = Terminator::Ret(None);
        assert!(run(&mut f));
        // After threading + merging + cleanup only one block remains.
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn merges_single_pred_chain() {
        let mut f = Function::new("t", 0, false);
        let b1 = f.new_block();
        f.blocks[0] = Block {
            insts: vec![Inst::Un {
                op: Opcode::Mov,
                dst: VReg(0),
                a: Val::Imm(1),
            }],
            term: Terminator::Jump(b1),
        };
        f.num_vregs = 2;
        f.block_mut(b1).insts.push(Inst::Emit {
            val: Val::Reg(VReg(0)),
        });
        f.block_mut(b1).term = Terminator::Ret(None);
        assert!(run(&mut f));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 2);
        assert_eq!(f.blocks[0].term, Terminator::Ret(None));
    }

    #[test]
    fn branch_with_equal_targets_becomes_jump() {
        let mut f = Function::new("t", 1, false);
        let b1 = f.new_block();
        f.blocks[0].term = Terminator::Branch {
            c: Val::Reg(VReg(0)),
            t: b1,
            f: b1,
        };
        f.block_mut(b1).insts.push(Inst::Emit { val: Val::Imm(3) });
        f.block_mut(b1).term = Terminator::Ret(None);
        assert!(run(&mut f));
        assert_eq!(f.blocks.len(), 1, "then merged");
    }

    #[test]
    fn removes_unreachable_blocks() {
        let mut f = Function::new("t", 0, false);
        let dead = f.new_block();
        f.block_mut(dead)
            .insts
            .push(Inst::Emit { val: Val::Imm(9) });
        assert!(run(&mut f));
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn keeps_loops_intact() {
        let mut f = Function::new("t", 1, false);
        let body = f.new_block();
        let exit = f.new_block();
        f.blocks[0].term = Terminator::Branch {
            c: Val::Reg(VReg(0)),
            t: body,
            f: exit,
        };
        f.block_mut(body)
            .insts
            .push(Inst::Emit { val: Val::Imm(1) });
        f.block_mut(body).term = Terminator::Jump(BlockId(0));
        f.block_mut(exit).term = Terminator::Ret(None);
        let before = f.clone();
        assert!(!run(&mut f));
        assert_eq!(f, before, "a minimal loop must not be rewritten");
    }

    #[test]
    fn self_loop_does_not_hang_threading() {
        let mut f = Function::new("t", 0, false);
        let b1 = f.new_block();
        f.blocks[0].term = Terminator::Jump(b1);
        f.block_mut(b1).term = Terminator::Jump(b1); // empty self-loop
        run(&mut f); // must terminate
        assert!(f.blocks.len() <= 2);
    }
}
