//! Constant folding, algebraic simplification and strength reduction.

use crate::func::Function;
use crate::inst::{Inst, Terminator, Val};
use asip_isa::Opcode;

/// Fold constants and simplify algebra in one function. Returns whether
/// anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            if let Some(new) = simplify_inst(inst) {
                *inst = new;
                changed = true;
            }
        }
        // Fold constant/degenerate branches.
        if let Terminator::Branch { c, t, f: fl } = block.term {
            if t == fl {
                block.term = Terminator::Jump(t);
                changed = true;
            } else if let Val::Imm(k) = c {
                block.term = Terminator::Jump(if k != 0 { t } else { fl });
                changed = true;
            }
        }
    }
    changed
}

/// Compute the simplified replacement of one instruction, if any.
fn simplify_inst(inst: &Inst) -> Option<Inst> {
    match inst {
        Inst::Bin { op, dst, a, b } => simplify_bin(*op, *dst, *a, *b),
        Inst::Un { op, dst, a } => {
            if *op == Opcode::Mov {
                return None;
            }
            if let Val::Imm(x) = a {
                if let Ok(r) = op.eval1(*x) {
                    return Some(Inst::Un {
                        op: Opcode::Mov,
                        dst: *dst,
                        a: Val::Imm(r),
                    });
                }
            }
            None
        }
        Inst::Select { dst, c, a, b } => {
            if let Val::Imm(k) = c {
                let v = if *k != 0 { *a } else { *b };
                return Some(Inst::Un {
                    op: Opcode::Mov,
                    dst: *dst,
                    a: v,
                });
            }
            if a == b {
                return Some(Inst::Un {
                    op: Opcode::Mov,
                    dst: *dst,
                    a: *a,
                });
            }
            None
        }
        _ => None,
    }
}

fn mov(dst: crate::inst::VReg, a: Val) -> Option<Inst> {
    Some(Inst::Un {
        op: Opcode::Mov,
        dst,
        a,
    })
}

fn simplify_bin(op: Opcode, dst: crate::inst::VReg, a: Val, b: Val) -> Option<Inst> {
    use Opcode::*;

    // Canonicalize: immediate on the right for commutative ops.
    if op.is_commutative() {
        if let (Val::Imm(_), Val::Reg(_)) = (a, b) {
            return Some(Inst::Bin {
                op,
                dst,
                a: b,
                b: a,
            });
        }
    }

    // Full constant folding (division by zero is left for the runtime trap).
    if let (Val::Imm(x), Val::Imm(y)) = (a, b) {
        if let Ok(r) = op.eval2(x, y) {
            return mov(dst, Val::Imm(r));
        }
        return None;
    }

    // Same-register identities (sound because reads are pure).
    if let (Val::Reg(ra), Val::Reg(rb)) = (a, b) {
        if ra == rb {
            match op {
                Sub | Xor => return mov(dst, Val::Imm(0)),
                And | Or | Min | Max => return mov(dst, a),
                CmpEq | CmpLe | CmpGe | CmpGeu => return mov(dst, Val::Imm(1)),
                CmpNe | CmpLt | CmpGt | CmpLtu => return mov(dst, Val::Imm(0)),
                _ => {}
            }
        }
    }

    // Identities with an immediate on the right.
    if let Val::Imm(k) = b {
        match (op, k) {
            (Add | Sub | Or | Xor | Shl | Shr | Sra, 0) => return mov(dst, a),
            (Mul, 0) => return mov(dst, Val::Imm(0)),
            (Mul, 1) => return mov(dst, a),
            (Mul, k) if k > 1 && (k as u32).is_power_of_two() => {
                return Some(Inst::Bin {
                    op: Shl,
                    dst,
                    a,
                    b: Val::Imm((k as u32).trailing_zeros() as i32),
                });
            }
            (And, 0) => return mov(dst, Val::Imm(0)),
            (And, -1) => return mov(dst, a),
            (Or, -1) => return mov(dst, Val::Imm(-1)),
            (Div, 1) => return mov(dst, a),
            (Rem, 1) => return mov(dst, Val::Imm(0)),
            _ => {}
        }
    }

    // Identities with an immediate on the left (non-commutative cases).
    if let Val::Imm(k) = a {
        match (op, k) {
            (Sub, 0) => {
                // 0 - x: keep (no neg opcode), but 0 - 0 handled above.
            }
            (Shl | Shr | Sra, 0) => return mov(dst, Val::Imm(0)),
            (Div | Rem, 0) => return mov(dst, Val::Imm(0)), // 0/x = 0 unless x==0 traps… keep safe:
            _ => {}
        }
        // NB: 0/x folds to 0 only when x != 0; x == 0 must trap. So undo that:
        if matches!(op, Div | Rem) && k == 0 {
            return None;
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Function};
    use crate::inst::VReg;

    fn with_insts(insts: Vec<Inst>) -> Function {
        let mut f = Function::new("t", 0, false);
        f.num_vregs = 16;
        f.blocks[0] = Block {
            insts,
            term: Terminator::Ret(None),
        };
        f
    }

    fn first(f: &Function) -> &Inst {
        &f.blocks[0].insts[0]
    }

    #[test]
    fn folds_constants() {
        let mut f = with_insts(vec![Inst::Bin {
            op: Opcode::Add,
            dst: VReg(1),
            a: Val::Imm(2),
            b: Val::Imm(40),
        }]);
        assert!(run(&mut f));
        assert_eq!(
            *first(&f),
            Inst::Un {
                op: Opcode::Mov,
                dst: VReg(1),
                a: Val::Imm(42)
            }
        );
    }

    #[test]
    fn does_not_fold_divide_by_zero() {
        let mut f = with_insts(vec![Inst::Bin {
            op: Opcode::Div,
            dst: VReg(1),
            a: Val::Imm(5),
            b: Val::Imm(0),
        }]);
        assert!(!run(&mut f));
    }

    #[test]
    fn mul_power_of_two_becomes_shift() {
        let mut f = with_insts(vec![Inst::Bin {
            op: Opcode::Mul,
            dst: VReg(1),
            a: Val::Reg(VReg(0)),
            b: Val::Imm(8),
        }]);
        assert!(run(&mut f));
        assert_eq!(
            *first(&f),
            Inst::Bin {
                op: Opcode::Shl,
                dst: VReg(1),
                a: Val::Reg(VReg(0)),
                b: Val::Imm(3)
            }
        );
    }

    #[test]
    fn canonicalizes_commutative_imm_left() {
        let mut f = with_insts(vec![Inst::Bin {
            op: Opcode::Add,
            dst: VReg(1),
            a: Val::Imm(5),
            b: Val::Reg(VReg(0)),
        }]);
        assert!(run(&mut f));
        assert_eq!(
            *first(&f),
            Inst::Bin {
                op: Opcode::Add,
                dst: VReg(1),
                a: Val::Reg(VReg(0)),
                b: Val::Imm(5)
            }
        );
    }

    #[test]
    fn same_register_identities() {
        let mut f = with_insts(vec![Inst::Bin {
            op: Opcode::Xor,
            dst: VReg(1),
            a: Val::Reg(VReg(0)),
            b: Val::Reg(VReg(0)),
        }]);
        assert!(run(&mut f));
        assert_eq!(
            *first(&f),
            Inst::Un {
                op: Opcode::Mov,
                dst: VReg(1),
                a: Val::Imm(0)
            }
        );
    }

    #[test]
    fn add_zero_identity() {
        let mut f = with_insts(vec![Inst::Bin {
            op: Opcode::Add,
            dst: VReg(1),
            a: Val::Reg(VReg(0)),
            b: Val::Imm(0),
        }]);
        assert!(run(&mut f));
        assert_eq!(
            *first(&f),
            Inst::Un {
                op: Opcode::Mov,
                dst: VReg(1),
                a: Val::Reg(VReg(0))
            }
        );
    }

    #[test]
    fn constant_branch_becomes_jump() {
        let mut f = Function::new("t", 0, false);
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.blocks[0].term = Terminator::Branch {
            c: Val::Imm(1),
            t: b1,
            f: b2,
        };
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].term, Terminator::Jump(b1));
    }

    #[test]
    fn select_with_const_condition() {
        let mut f = with_insts(vec![Inst::Select {
            dst: VReg(1),
            c: Val::Imm(0),
            a: Val::Imm(10),
            b: Val::Imm(20),
        }]);
        assert!(run(&mut f));
        assert_eq!(
            *first(&f),
            Inst::Un {
                op: Opcode::Mov,
                dst: VReg(1),
                a: Val::Imm(20)
            }
        );
    }

    #[test]
    fn unary_folds() {
        let mut f = with_insts(vec![Inst::Un {
            op: Opcode::Abs,
            dst: VReg(1),
            a: Val::Imm(-9),
        }]);
        assert!(run(&mut f));
        assert_eq!(
            *first(&f),
            Inst::Un {
                op: Opcode::Mov,
                dst: VReg(1),
                a: Val::Imm(9)
            }
        );
    }
}
