//! Dead-code elimination driven by global liveness.

use crate::func::Function;
use crate::liveness::liveness;
use std::collections::BTreeSet;

/// Remove instructions whose results are never used. Returns whether
/// anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    // Iterate: removing an inst can kill the uses feeding it.
    loop {
        let live = liveness(f);
        let mut removed = false;
        for (bi, block) in f.blocks.iter_mut().enumerate() {
            let mut live_now: BTreeSet<_> = live.live_out[bi].clone();
            for r in block.term.uses() {
                live_now.insert(r);
            }
            // Backward scan, collecting indices to drop.
            let mut keep = vec![true; block.insts.len()];
            for (i, inst) in block.insts.iter().enumerate().rev() {
                let defs = inst.defs();
                let dead = !defs.is_empty()
                    && defs.iter().all(|d| !live_now.contains(d))
                    && inst.is_removable_if_dead();
                if dead {
                    keep[i] = false;
                    removed = true;
                } else {
                    for d in defs {
                        live_now.remove(&d);
                    }
                    for u in inst.uses() {
                        live_now.insert(u);
                    }
                }
            }
            if removed {
                let mut it = keep.iter();
                block
                    .insts
                    .retain(|_| *it.next().expect("keep mask aligned"));
            }
        }
        changed |= removed;
        if !removed {
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Function};
    use crate::inst::{Addr, GlobalId, Inst, Terminator, VReg, Val};
    use asip_isa::Opcode;

    #[test]
    fn removes_unused_pure_insts() {
        let mut f = Function::new("t", 0, false);
        f.num_vregs = 4;
        f.blocks[0] = Block {
            insts: vec![
                Inst::Bin {
                    op: Opcode::Add,
                    dst: VReg(0),
                    a: Val::Imm(1),
                    b: Val::Imm(2),
                },
                Inst::Bin {
                    op: Opcode::Add,
                    dst: VReg(1),
                    a: Val::Imm(3),
                    b: Val::Imm(4),
                },
                Inst::Emit {
                    val: Val::Reg(VReg(1)),
                },
            ],
            term: Terminator::Ret(None),
        };
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 2);
        assert!(matches!(
            f.blocks[0].insts[0],
            Inst::Bin { dst: VReg(1), .. }
        ));
    }

    #[test]
    fn removes_transitively_dead_chains() {
        let mut f = Function::new("t", 0, false);
        f.num_vregs = 4;
        f.blocks[0] = Block {
            insts: vec![
                Inst::Bin {
                    op: Opcode::Add,
                    dst: VReg(0),
                    a: Val::Imm(1),
                    b: Val::Imm(2),
                },
                Inst::Bin {
                    op: Opcode::Add,
                    dst: VReg(1),
                    a: Val::Reg(VReg(0)),
                    b: Val::Imm(1),
                },
                Inst::Bin {
                    op: Opcode::Add,
                    dst: VReg(2),
                    a: Val::Reg(VReg(1)),
                    b: Val::Imm(1),
                },
            ],
            term: Terminator::Ret(None),
        };
        assert!(run(&mut f));
        assert!(f.blocks[0].insts.is_empty(), "whole chain is dead");
    }

    #[test]
    fn keeps_stores_and_emits() {
        let mut f = Function::new("t", 0, false);
        f.num_vregs = 4;
        f.blocks[0] = Block {
            insts: vec![
                Inst::Store {
                    val: Val::Imm(1),
                    addr: Addr::global(GlobalId(0)),
                },
                Inst::Emit { val: Val::Imm(2) },
            ],
            term: Terminator::Ret(None),
        };
        assert!(!run(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn keeps_potentially_trapping_div() {
        let mut f = Function::new("t", 1, false);
        f.num_vregs = 4;
        f.blocks[0] = Block {
            insts: vec![Inst::Bin {
                op: Opcode::Div,
                dst: VReg(1),
                a: Val::Imm(1),
                b: Val::Reg(VReg(0)),
            }],
            term: Terminator::Ret(None),
        };
        assert!(!run(&mut f), "dead div by unknown divisor must stay (trap)");
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn removes_dead_loads() {
        let mut f = Function::new("t", 0, false);
        f.num_vregs = 4;
        f.blocks[0] = Block {
            insts: vec![Inst::Load {
                dst: VReg(0),
                addr: Addr::global(GlobalId(0)),
            }],
            term: Terminator::Ret(None),
        };
        assert!(run(&mut f));
        assert!(f.blocks[0].insts.is_empty());
    }

    #[test]
    fn value_live_across_blocks_is_kept() {
        let mut f = Function::new("t", 0, false);
        f.num_vregs = 4;
        let b1 = f.new_block();
        f.blocks[0] = Block {
            insts: vec![Inst::Bin {
                op: Opcode::Add,
                dst: VReg(0),
                a: Val::Imm(1),
                b: Val::Imm(2),
            }],
            term: Terminator::Jump(b1),
        };
        f.block_mut(b1).insts.push(Inst::Emit {
            val: Val::Reg(VReg(0)),
        });
        f.block_mut(b1).term = Terminator::Ret(None);
        assert!(!run(&mut f));
        assert_eq!(f.blocks[0].insts.len(), 1);
    }
}
