//! Function inlining and dead-function elimination.
//!
//! Embedded kernels are call-shallow; the ASIP compiler inlines aggressively
//! (bottom-up, leaf functions first) so the scheduler sees whole loop nests.

use crate::func::{Function, Module};
use crate::inst::{BlockId, FuncId, Inst, LocalSlot, Terminator, VReg, Val};
use asip_isa::Opcode;

/// Inlining limits.
#[derive(Debug, Clone, Copy)]
pub struct InlineConfig {
    /// Callees larger than this are never inlined.
    pub max_callee_insts: usize,
    /// Stop growing a caller past this size.
    pub max_caller_insts: usize,
    /// Bottom-up rounds (handles call chains of this depth).
    pub rounds: u32,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig {
            max_callee_insts: 400,
            max_caller_insts: 20_000,
            rounds: 6,
        }
    }
}

/// Run inlining over the module. Returns whether anything changed.
pub fn run(module: &mut Module, cfg: &InlineConfig) -> bool {
    let mut changed = false;
    for _ in 0..cfg.rounds {
        let mut any = false;
        // Leaf functions: contain no calls. (Recursive functions are never
        // leaves, so they are never inlined.)
        let is_leaf: Vec<bool> = module
            .funcs
            .iter()
            .map(|f| {
                f.blocks
                    .iter()
                    .all(|b| !b.insts.iter().any(|i| matches!(i, Inst::Call { .. })))
            })
            .collect();
        let sizes: Vec<usize> = module.funcs.iter().map(Function::num_insts).collect();

        for caller_idx in 0..module.funcs.len() {
            loop {
                if module.funcs[caller_idx].num_insts() >= cfg.max_caller_insts {
                    break;
                }
                let site = find_site(&module.funcs[caller_idx], &is_leaf, &sizes, cfg, caller_idx);
                let Some((block, idx, callee)) = site else {
                    break;
                };
                let callee_fn = module.funcs[callee.0 as usize].clone();
                inline_site(&mut module.funcs[caller_idx], block, idx, &callee_fn);
                any = true;
                changed = true;
            }
        }
        if !any {
            break;
        }
    }
    changed
}

fn find_site(
    caller: &Function,
    is_leaf: &[bool],
    sizes: &[usize],
    cfg: &InlineConfig,
    caller_idx: usize,
) -> Option<(BlockId, usize, FuncId)> {
    for (bi, b) in caller.iter_blocks() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if let Inst::Call { func, .. } = inst {
                let fi = func.0 as usize;
                if fi != caller_idx && is_leaf[fi] && sizes[fi] <= cfg.max_callee_insts {
                    return Some((bi, ii, *func));
                }
            }
        }
    }
    None
}

/// Replace the call at `caller[block].insts[idx]` with the callee's body.
fn inline_site(caller: &mut Function, block: BlockId, idx: usize, callee: &Function) {
    let (dst, args) = match &caller.block(block).insts[idx] {
        Inst::Call { dst, args, .. } => (*dst, args.clone()),
        other => panic!("inline_site pointed at non-call {other}"),
    };

    let vreg_base = caller.num_vregs;
    caller.num_vregs += callee.num_vregs;
    let local_base = caller.locals.len() as u32;
    caller.locals.extend(callee.locals.iter().cloned());
    let block_base = caller.blocks.len() as u32;

    // Split the call block: `block` keeps insts[..idx]; `cont` receives the
    // tail and the original terminator.
    let tail: Vec<Inst> = caller.block_mut(block).insts.split_off(idx + 1);
    caller.block_mut(block).insts.pop(); // remove the call itself
    let cont = caller.new_block();
    let old_term = std::mem::replace(
        &mut caller.block_mut(block).term,
        Terminator::Jump(BlockId(block_base + callee.entry.0 + 1)), // fixed below
    );
    caller.block_mut(cont).insts = tail;
    caller.block_mut(cont).term = old_term;
    // NB: `new_block` pushed `cont` *before* we append callee clones, so the
    // callee's blocks start at block_base + 1.
    let callee_block = |b: BlockId| BlockId(block_base + 1 + b.0);
    caller.block_mut(block).term = Terminator::Jump(callee_block(callee.entry));

    // Bind arguments to the callee's (remapped) parameter registers.
    for (p, a) in args.iter().enumerate() {
        let param = VReg(vreg_base + p as u32);
        caller.block_mut(block).insts.push(Inst::Un {
            op: Opcode::Mov,
            dst: param,
            a: *a,
        });
    }

    // Clone callee blocks with remapped registers, locals and block ids.
    for cb in &callee.blocks {
        let mut nb = cb.clone();
        for inst in &mut nb.insts {
            inst.map_uses(|r| Val::Reg(VReg(vreg_base + r.0)));
            inst.map_defs(|d| VReg(vreg_base + d.0));
            // Remap local slots.
            match inst {
                Inst::Lea { addr, .. } | Inst::Load { addr, .. } | Inst::Store { addr, .. } => {
                    if let crate::inst::AddrBase::Local(l) = &mut addr.base {
                        *l = LocalSlot(local_base + l.0);
                    }
                }
                _ => {}
            }
        }
        // Remap register uses in terminators and rewrite returns.
        let new_term = match &nb.term {
            Terminator::Jump(b) => Terminator::Jump(callee_block(*b)),
            Terminator::Branch { c, t, f } => {
                let c = match c {
                    Val::Reg(r) => Val::Reg(VReg(vreg_base + r.0)),
                    imm => *imm,
                };
                Terminator::Branch {
                    c,
                    t: callee_block(*t),
                    f: callee_block(*f),
                }
            }
            Terminator::Ret(v) => {
                if let Some(d) = dst {
                    let val = match v {
                        Some(Val::Reg(r)) => Val::Reg(VReg(vreg_base + r.0)),
                        Some(imm) => *imm,
                        None => Val::Imm(0),
                    };
                    nb.insts.push(Inst::Un {
                        op: Opcode::Mov,
                        dst: d,
                        a: val,
                    });
                }
                Terminator::Jump(cont)
            }
        };
        nb.term = new_term;
        caller.blocks.push(nb);
    }
}

/// Drop functions unreachable from `entry`, remapping call targets.
/// Returns whether anything was removed.
pub fn drop_dead_funcs(module: &mut Module, entry: &str) -> bool {
    let Some(root) = module.func_id(entry) else {
        return false;
    };
    let n = module.funcs.len();
    let mut keep = vec![false; n];
    let mut stack = vec![root];
    while let Some(f) = stack.pop() {
        if keep[f.0 as usize] {
            continue;
        }
        keep[f.0 as usize] = true;
        for b in &module.funcs[f.0 as usize].blocks {
            for i in &b.insts {
                if let Inst::Call { func, .. } = i {
                    stack.push(*func);
                }
            }
        }
    }
    if keep.iter().all(|&k| k) {
        return false;
    }
    let mut remap = vec![FuncId(u32::MAX); n];
    let mut new_funcs = Vec::new();
    for (i, k) in keep.iter().enumerate() {
        if *k {
            remap[i] = FuncId(new_funcs.len() as u32);
            new_funcs.push(module.funcs[i].clone());
        }
    }
    for f in &mut new_funcs {
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                if let Inst::Call { func, .. } = inst {
                    *func = remap[func.0 as usize];
                }
            }
        }
    }
    module.funcs = new_funcs;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{verify, Block};
    use crate::interp::run_module;

    /// add3(a, b, c) = a + b + c; main(x) emits add3(x, 10, 100).
    fn sample() -> Module {
        let mut add3 = Function::new("add3", 3, true);
        let t = add3.new_vreg();
        add3.blocks[0] = Block {
            insts: vec![
                Inst::Bin {
                    op: Opcode::Add,
                    dst: t,
                    a: Val::Reg(VReg(0)),
                    b: Val::Reg(VReg(1)),
                },
                Inst::Bin {
                    op: Opcode::Add,
                    dst: t,
                    a: Val::Reg(t),
                    b: Val::Reg(VReg(2)),
                },
            ],
            term: Terminator::Ret(Some(Val::Reg(t))),
        };
        let mut main = Function::new("main", 1, false);
        let r = main.new_vreg();
        main.blocks[0] = Block {
            insts: vec![
                Inst::Call {
                    dst: Some(r),
                    func: FuncId(1),
                    args: vec![Val::Reg(VReg(0)), Val::Imm(10), Val::Imm(100)],
                },
                Inst::Emit { val: Val::Reg(r) },
            ],
            term: Terminator::Ret(None),
        };
        Module {
            funcs: vec![main, add3],
            globals: vec![],
            custom_ops: vec![],
        }
    }

    #[test]
    fn inlines_leaf_and_preserves_output() {
        let m0 = sample();
        let mut m1 = m0.clone();
        assert!(run(&mut m1, &InlineConfig::default()));
        assert_eq!(verify(&m1), Ok(()));
        // No calls remain in main.
        assert!(m1.funcs[0]
            .blocks
            .iter()
            .all(|b| !b.insts.iter().any(|i| matches!(i, Inst::Call { .. }))));
        for x in [0, 5, -3] {
            assert_eq!(
                run_module(&m0, "main", &[x]).unwrap().output,
                run_module(&m1, "main", &[x]).unwrap().output
            );
        }
    }

    #[test]
    fn recursion_is_not_inlined() {
        // fact(n) = n <= 1 ? 1 : n * fact(n - 1)
        let mut fact = Function::new("fact", 1, true);
        let c = fact.new_vreg();
        let t = fact.new_vreg();
        let r = fact.new_vreg();
        let rec = fact.new_block();
        let base = fact.new_block();
        fact.blocks[0].insts.push(Inst::Bin {
            op: Opcode::CmpLe,
            dst: c,
            a: Val::Reg(VReg(0)),
            b: Val::Imm(1),
        });
        fact.blocks[0].term = Terminator::Branch {
            c: Val::Reg(c),
            t: base,
            f: rec,
        };
        fact.block_mut(rec).insts.extend([
            Inst::Bin {
                op: Opcode::Sub,
                dst: t,
                a: Val::Reg(VReg(0)),
                b: Val::Imm(1),
            },
            Inst::Call {
                dst: Some(r),
                func: FuncId(0),
                args: vec![Val::Reg(t)],
            },
            Inst::Bin {
                op: Opcode::Mul,
                dst: r,
                a: Val::Reg(r),
                b: Val::Reg(VReg(0)),
            },
        ]);
        fact.block_mut(rec).term = Terminator::Ret(Some(Val::Reg(r)));
        fact.block_mut(base).term = Terminator::Ret(Some(Val::Imm(1)));
        let mut m = Module {
            funcs: vec![fact],
            globals: vec![],
            custom_ops: vec![],
        };
        assert!(!run(&mut m, &InlineConfig::default()));
        assert_eq!(run_module(&m, "fact", &[5]).unwrap().ret, Some(120));
    }

    #[test]
    fn chain_inlines_across_rounds() {
        // h() = 1; g() = h() + 1; main emits g() + 1.
        let mut h = Function::new("h", 0, true);
        h.blocks[0].term = Terminator::Ret(Some(Val::Imm(1)));
        let mut g = Function::new("g", 0, true);
        let r = g.new_vreg();
        g.blocks[0] = Block {
            insts: vec![
                Inst::Call {
                    dst: Some(r),
                    func: FuncId(2),
                    args: vec![],
                },
                Inst::Bin {
                    op: Opcode::Add,
                    dst: r,
                    a: Val::Reg(r),
                    b: Val::Imm(1),
                },
            ],
            term: Terminator::Ret(Some(Val::Reg(r))),
        };
        let mut main = Function::new("main", 0, false);
        let r2 = main.new_vreg();
        main.blocks[0] = Block {
            insts: vec![
                Inst::Call {
                    dst: Some(r2),
                    func: FuncId(1),
                    args: vec![],
                },
                Inst::Bin {
                    op: Opcode::Add,
                    dst: r2,
                    a: Val::Reg(r2),
                    b: Val::Imm(1),
                },
                Inst::Emit { val: Val::Reg(r2) },
            ],
            term: Terminator::Ret(None),
        };
        let mut m = Module {
            funcs: vec![main, g, h],
            globals: vec![],
            custom_ops: vec![],
        };
        assert!(run(&mut m, &InlineConfig::default()));
        assert_eq!(verify(&m), Ok(()));
        assert_eq!(run_module(&m, "main", &[]).unwrap().output, vec![3]);
        assert!(m.funcs[0]
            .blocks
            .iter()
            .all(|b| !b.insts.iter().any(|i| matches!(i, Inst::Call { .. }))));
    }

    #[test]
    fn locals_remap_when_inlined() {
        // callee uses a local array; two inlined copies must not collide.
        let mut callee = Function::new("f", 1, true);
        callee.locals.push(crate::func::LocalData {
            name: "a".into(),
            words: 1,
        });
        let t = callee.new_vreg();
        callee.blocks[0] = Block {
            insts: vec![
                Inst::Store {
                    val: Val::Reg(VReg(0)),
                    addr: crate::inst::Addr::local(LocalSlot(0)),
                },
                Inst::Load {
                    dst: t,
                    addr: crate::inst::Addr::local(LocalSlot(0)),
                },
            ],
            term: Terminator::Ret(Some(Val::Reg(t))),
        };
        let mut main = Function::new("main", 0, false);
        let a = main.new_vreg();
        let b = main.new_vreg();
        main.blocks[0] = Block {
            insts: vec![
                Inst::Call {
                    dst: Some(a),
                    func: FuncId(1),
                    args: vec![Val::Imm(7)],
                },
                Inst::Call {
                    dst: Some(b),
                    func: FuncId(1),
                    args: vec![Val::Imm(9)],
                },
                Inst::Emit { val: Val::Reg(a) },
                Inst::Emit { val: Val::Reg(b) },
            ],
            term: Terminator::Ret(None),
        };
        let mut m = Module {
            funcs: vec![main, callee],
            globals: vec![],
            custom_ops: vec![],
        };
        run(&mut m, &InlineConfig::default());
        assert_eq!(verify(&m), Ok(()));
        assert_eq!(run_module(&m, "main", &[]).unwrap().output, vec![7, 9]);
        assert_eq!(
            m.funcs[0].locals.len(),
            2,
            "each inline site gets its own slot"
        );
    }

    #[test]
    fn dead_functions_dropped_and_calls_remapped() {
        let mut m = sample();
        // Add an unused function before the used one to force remapping.
        let mut unused = Function::new("unused", 0, false);
        unused.blocks[0].term = Terminator::Ret(None);
        m.funcs.insert(1, unused);
        // Fix main's call target after insertion (add3 moved to index 2).
        if let Inst::Call { func, .. } = &mut m.funcs[0].blocks[0].insts[0] {
            *func = FuncId(2);
        }
        assert_eq!(verify(&m), Ok(()));
        assert!(drop_dead_funcs(&mut m, "main"));
        assert_eq!(m.funcs.len(), 2);
        assert_eq!(verify(&m), Ok(()));
        assert_eq!(run_module(&m, "main", &[1]).unwrap().output, vec![111]);
    }
}
