//! The optimization pipeline.
//!
//! Classic mid-90s ILP compiler schedule: inline, clean, if-convert, hoist,
//! unroll, then clean again. Every pass is independently testable; the
//! driver iterates cleanup passes to a (bounded) fixpoint.

pub mod constfold;
pub mod dce;
pub mod ifconv;
pub mod inline;
pub mod licm;
pub mod lvn;
pub mod simplify;
pub mod unroll;

use crate::func::Module;

pub use inline::InlineConfig;
pub use unroll::UnrollConfig;

/// Optimization pipeline configuration.
#[derive(Debug, Clone)]
pub struct OptConfig {
    /// Run function inlining.
    pub inline: bool,
    /// Inliner limits.
    pub inline_cfg: InlineConfig,
    /// Run if-conversion.
    pub if_convert: bool,
    /// Run loop-invariant code motion.
    pub licm: bool,
    /// Loop-unrolling configuration (`factor <= 1` disables).
    pub unroll: UnrollConfig,
    /// Remove functions unreachable from the entry.
    pub drop_dead_funcs: bool,
    /// Entry function name (for dead-function removal).
    pub entry: String,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            inline: true,
            inline_cfg: InlineConfig::default(),
            if_convert: true,
            licm: true,
            unroll: UnrollConfig::default(),
            drop_dead_funcs: true,
            entry: "main".to_string(),
        }
    }
}

impl OptConfig {
    /// A configuration with every optimization disabled (the `-O0` baseline
    /// used by ablation experiments).
    pub fn none() -> OptConfig {
        OptConfig {
            inline: false,
            inline_cfg: InlineConfig::default(),
            if_convert: false,
            licm: false,
            unroll: UnrollConfig {
                factor: 1,
                ..Default::default()
            },
            drop_dead_funcs: false,
            entry: "main".to_string(),
        }
    }

    /// Standard configuration with a specific unroll factor.
    pub fn with_unroll(factor: u32) -> OptConfig {
        OptConfig {
            unroll: UnrollConfig {
                factor,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Run the cleanup trio (fold, value-number, eliminate) plus CFG
/// simplification to a bounded fixpoint on every function.
pub fn cleanup(module: &mut Module) {
    for f in &mut module.funcs {
        for _ in 0..16 {
            let changed = constfold::run(f) | lvn::run(f) | dce::run(f) | simplify::run(f);
            if !changed {
                break;
            }
        }
    }
}

/// Run the full pipeline.
pub fn optimize(module: &mut Module, cfg: &OptConfig) {
    if cfg.inline {
        inline::run(module, &cfg.inline_cfg);
        if cfg.drop_dead_funcs {
            inline::drop_dead_funcs(module, &cfg.entry);
        }
    }
    cleanup(module);
    if cfg.if_convert {
        for f in &mut module.funcs {
            ifconv::run(f);
        }
        cleanup(module);
    }
    if cfg.licm {
        for f in &mut module.funcs {
            licm::run(f);
        }
        cleanup(module);
    }
    if cfg.unroll.factor > 1 {
        for f in &mut module.funcs {
            unroll::run(f, &cfg.unroll);
        }
        cleanup(module);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Function};
    use crate::inst::{FuncId, Inst, Terminator, VReg, Val};
    use crate::interp::run_module;
    use asip_isa::Opcode;

    /// A program exercising calls, branches and loops:
    /// clamp(x) = x < 0 ? 0 : (x > 255 ? 255 : x)
    /// main(n): s = 0; for i in 0..n { s += clamp(i * 7 - 100) }; emit s
    fn program() -> Module {
        let mut clamp = Function::new("clamp", 1, true);
        let c1 = clamp.new_vreg();
        let c2 = clamp.new_vreg();
        let r = clamp.new_vreg();
        clamp.blocks[0] = Block {
            insts: vec![
                Inst::Bin {
                    op: Opcode::CmpLt,
                    dst: c1,
                    a: Val::Reg(VReg(0)),
                    b: Val::Imm(0),
                },
                Inst::Bin {
                    op: Opcode::CmpGt,
                    dst: c2,
                    a: Val::Reg(VReg(0)),
                    b: Val::Imm(255),
                },
                Inst::Select {
                    dst: r,
                    c: Val::Reg(c2),
                    a: Val::Imm(255),
                    b: Val::Reg(VReg(0)),
                },
                Inst::Select {
                    dst: r,
                    c: Val::Reg(c1),
                    a: Val::Imm(0),
                    b: Val::Reg(r),
                },
            ],
            term: Terminator::Ret(Some(Val::Reg(r))),
        };

        let mut main = Function::new("main", 1, false);
        let s = main.new_vreg();
        let i = main.new_vreg();
        let cond = main.new_vreg();
        let t = main.new_vreg();
        let cl = main.new_vreg();
        let header = main.new_block();
        let body = main.new_block();
        let exit = main.new_block();
        main.blocks[0].insts.extend([
            Inst::Un {
                op: Opcode::Mov,
                dst: s,
                a: Val::Imm(0),
            },
            Inst::Un {
                op: Opcode::Mov,
                dst: i,
                a: Val::Imm(0),
            },
        ]);
        main.blocks[0].term = Terminator::Jump(header);
        main.block_mut(header).insts.push(Inst::Bin {
            op: Opcode::CmpLt,
            dst: cond,
            a: Val::Reg(i),
            b: Val::Reg(VReg(0)),
        });
        main.block_mut(header).term = Terminator::Branch {
            c: Val::Reg(cond),
            t: body,
            f: exit,
        };
        main.block_mut(body).insts.extend([
            Inst::Bin {
                op: Opcode::Mul,
                dst: t,
                a: Val::Reg(i),
                b: Val::Imm(7),
            },
            Inst::Bin {
                op: Opcode::Sub,
                dst: t,
                a: Val::Reg(t),
                b: Val::Imm(100),
            },
            Inst::Call {
                dst: Some(cl),
                func: FuncId(1),
                args: vec![Val::Reg(t)],
            },
            Inst::Bin {
                op: Opcode::Add,
                dst: s,
                a: Val::Reg(s),
                b: Val::Reg(cl),
            },
            Inst::Bin {
                op: Opcode::Add,
                dst: i,
                a: Val::Reg(i),
                b: Val::Imm(1),
            },
        ]);
        main.block_mut(body).term = Terminator::Jump(header);
        main.block_mut(exit)
            .insts
            .push(Inst::Emit { val: Val::Reg(s) });
        main.block_mut(exit).term = Terminator::Ret(None);
        Module {
            funcs: vec![main, clamp],
            globals: vec![],
            custom_ops: vec![],
        }
    }

    #[test]
    fn full_pipeline_preserves_semantics() {
        let m0 = program();
        for cfg in [
            OptConfig::none(),
            OptConfig::default(),
            OptConfig::with_unroll(8),
        ] {
            let mut m1 = m0.clone();
            optimize(&mut m1, &cfg);
            assert_eq!(crate::func::verify(&m1), Ok(()));
            for n in [0, 1, 5, 33, 64] {
                let r0 = run_module(&m0, "main", &[n]).unwrap();
                let r1 = run_module(&m1, "main", &[n]).unwrap();
                assert_eq!(r0.output, r1.output, "cfg={cfg:?} n={n}");
            }
        }
    }

    #[test]
    fn pipeline_inlines_the_call() {
        let mut m = program();
        optimize(&mut m, &OptConfig::default());
        assert!(m.funcs[0]
            .blocks
            .iter()
            .all(|b| !b.insts.iter().any(|i| matches!(i, Inst::Call { .. }))));
        // Dead clamp removed.
        assert_eq!(m.funcs.len(), 1);
    }

    #[test]
    fn optimized_code_is_smaller_or_equal_dynamic_steps() {
        let m0 = program();
        let mut m1 = m0.clone();
        optimize(&mut m1, &OptConfig::default());
        let s0 = run_module(&m0, "main", &[50]).unwrap().steps;
        let s1 = run_module(&m1, "main", &[50]).unwrap().steps;
        assert!(
            s1 <= s0,
            "optimization should not add dynamic work ({s1} > {s0})"
        );
    }
}
