//! # asip-ir — the retargetable compiler's intermediate representation
//!
//! Three-address, non-SSA IR with virtual registers, modelled on the
//! Multiflow-descended ILP compilers behind *"Customized Instruction-Sets
//! for Embedded Processors"* (Fisher, DAC 1999). The crate provides:
//!
//! * IR types and structural verification ([`inst`], [`func`]);
//! * CFG analyses: predecessors, reverse postorder, dominators, natural
//!   loops ([`cfg`](mod@cfg)) and dataflow liveness ([`liveness`]);
//! * a reference **interpreter** that doubles as golden model and profiler
//!   ([`interp`]);
//! * the classic ILP **optimization pipeline**: constant folding, local
//!   value numbering, dead-code elimination, CFG simplification,
//!   if-conversion, loop-invariant code motion, whole-loop unrolling and
//!   function inlining ([`passes`]).
//!
//! Arithmetic semantics are shared with the machine ISA via
//! [`asip_isa::Opcode`], so the constant folder, the interpreter and the
//! hardware simulator can never disagree.
//!
//! ## Example
//!
//! ```
//! use asip_ir::func::{Block, Function, Module};
//! use asip_ir::inst::{Inst, Terminator, Val};
//! use asip_isa::Opcode;
//!
//! // main() { emit 6 * 7; }
//! let mut f = Function::new("main", 0, false);
//! let v = f.new_vreg();
//! f.blocks[0] = Block {
//!     insts: vec![
//!         Inst::Bin { op: Opcode::Mul, dst: v, a: Val::Imm(6), b: Val::Imm(7) },
//!         Inst::Emit { val: Val::Reg(v) },
//!     ],
//!     term: Terminator::Ret(None),
//! };
//! let mut module = Module { funcs: vec![f], globals: vec![], custom_ops: vec![] };
//!
//! // Optimize and interpret.
//! asip_ir::passes::optimize(&mut module, &asip_ir::passes::OptConfig::default());
//! let result = asip_ir::interp::run_module(&module, "main", &[]).unwrap();
//! assert_eq!(result.output, vec![42]);
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod codec;
pub mod func;
pub mod inst;
pub mod interp;
pub mod liveness;
pub mod passes;

pub use func::{Block, Function, GlobalData, LocalData, Module, VerifyError};
pub use inst::{Addr, AddrBase, BlockId, FuncId, GlobalId, Inst, LocalSlot, Terminator, VReg, Val};
pub use interp::{InterpError, InterpOptions, InterpResult, Profile};
