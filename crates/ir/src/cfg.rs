//! Control-flow analyses: predecessors, orderings, dominators, natural loops.

use crate::func::Function;
use crate::inst::BlockId;

/// Predecessor lists for every block.
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for (id, b) in f.iter_blocks() {
        for s in b.term.successors() {
            preds[s.0 as usize].push(id);
        }
    }
    preds
}

/// Reverse postorder over reachable blocks, starting at the entry.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
    visited[f.entry.0 as usize] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = f.block(b).term.successors();
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if !visited[s.0 as usize] {
                visited[s.0 as usize] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Reachability bitmap from the entry block.
pub fn reachable(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    for b in reverse_postorder(f) {
        seen[b.0 as usize] = true;
    }
    seen
}

/// Immediate-dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
///
/// `idom[entry] == entry`; unreachable blocks get `None`.
pub fn dominators(f: &Function) -> Vec<Option<BlockId>> {
    let rpo = reverse_postorder(f);
    let mut rpo_index = vec![usize::MAX; f.blocks.len()];
    for (i, b) in rpo.iter().enumerate() {
        rpo_index[b.0 as usize] = i;
    }
    let preds = predecessors(f);
    let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    idom[f.entry.0 as usize] = Some(f.entry);

    let intersect = |mut a: BlockId, mut b: BlockId, idom: &[Option<BlockId>]| -> BlockId {
        while a != b {
            while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                a = idom[a.0 as usize].expect("processed");
            }
            while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                b = idom[b.0 as usize].expect("processed");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.0 as usize] {
                if idom[p.0 as usize].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(cur, p, &idom),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.0 as usize] != Some(ni) {
                    idom[b.0 as usize] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// Whether `a` dominates `b` under the given idom tree.
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.0 as usize] {
            Some(p) if p != cur => cur = p,
            _ => return cur == a,
        }
    }
}

/// A natural loop discovered from a back edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Loop header (dominates every block in the loop).
    pub header: BlockId,
    /// Source of the back edge (`latch -> header`).
    pub latch: BlockId,
    /// All blocks in the loop, header first.
    pub blocks: Vec<BlockId>,
}

impl NaturalLoop {
    /// Whether the loop contains `b`.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// Find all natural loops (one per back edge; loops sharing a header are
/// reported separately).
pub fn natural_loops(f: &Function) -> Vec<NaturalLoop> {
    let idom = dominators(f);
    let reach = reachable(f);
    let preds = predecessors(f);
    let mut loops = Vec::new();
    for (id, b) in f.iter_blocks() {
        if !reach[id.0 as usize] {
            continue;
        }
        for s in b.term.successors() {
            // Back edge: successor dominates the source.
            if dominates(&idom, s, id) {
                // Collect the loop body by walking predecessors from the latch.
                let header = s;
                let latch = id;
                let mut body = vec![header];
                let mut stack = vec![latch];
                while let Some(x) = stack.pop() {
                    if body.contains(&x) {
                        continue;
                    }
                    body.push(x);
                    for &p in &preds[x.0 as usize] {
                        stack.push(p);
                    }
                }
                loops.push(NaturalLoop {
                    header,
                    latch,
                    blocks: body,
                });
            }
        }
    }
    // Deterministic order: by header, then latch.
    loops.sort_by_key(|l| (l.header, l.latch));
    loops
}

/// Per-block loop-nesting depth (0 = not in any loop).
pub fn loop_depth(f: &Function) -> Vec<u32> {
    let loops = natural_loops(f);
    let mut depth = vec![0u32; f.blocks.len()];
    for l in &loops {
        for b in &l.blocks {
            depth[b.0 as usize] += 1;
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Function};
    use crate::inst::{Terminator, VReg, Val};

    /// Build the classic diamond-with-loop CFG:
    /// bb0 -> bb1; bb1 -> bb2 | bb4; bb2 -> bb3; bb3 -> bb1 (latch); bb4 ret.
    fn looped() -> Function {
        let mut f = Function::new("t", 0, false);
        f.num_vregs = 1;
        let b1 = f.new_block();
        let b2 = f.new_block();
        let b3 = f.new_block();
        let b4 = f.new_block();
        f.blocks[0] = Block {
            insts: vec![],
            term: Terminator::Jump(b1),
        };
        f.block_mut(b1).term = Terminator::Branch {
            c: Val::Reg(VReg(0)),
            t: b2,
            f: b4,
        };
        f.block_mut(b2).term = Terminator::Jump(b3);
        f.block_mut(b3).term = Terminator::Jump(b1);
        f.block_mut(b4).term = Terminator::Ret(None);
        f
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = looped();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), 5);
    }

    #[test]
    fn preds_computed() {
        let f = looped();
        let p = predecessors(&f);
        assert_eq!(p[1].len(), 2, "bb1 has entry and latch as preds");
        assert_eq!(p[0].len(), 0);
    }

    #[test]
    fn dominator_tree_correct() {
        let f = looped();
        let idom = dominators(&f);
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(1)));
        assert_eq!(idom[3], Some(BlockId(2)));
        assert_eq!(idom[4], Some(BlockId(1)));
        assert!(dominates(&idom, BlockId(0), BlockId(3)));
        assert!(dominates(&idom, BlockId(1), BlockId(4)));
        assert!(!dominates(&idom, BlockId(2), BlockId(4)));
    }

    #[test]
    fn loop_discovered() {
        let f = looped();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latch, BlockId(3));
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(4)));
        assert!(!l.contains(BlockId(0)));
    }

    #[test]
    fn loop_depth_counts_nesting() {
        let f = looped();
        let d = loop_depth(&f);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 1);
        assert_eq!(d[4], 0);
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut f = looped();
        let dead = f.new_block();
        f.block_mut(dead).term = Terminator::Ret(None);
        let idom = dominators(&f);
        assert_eq!(idom[dead.0 as usize], None);
        assert!(!reachable(&f)[dead.0 as usize]);
    }
}
