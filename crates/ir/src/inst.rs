//! IR instructions: three-address code over virtual registers.
//!
//! The IR is deliberately *not* SSA — it models the Multiflow-descended
//! compilers of the paper's era, where superblock scheduling and linear-scan
//! allocation operate on plain virtual-register code. Arithmetic opcodes are
//! shared with the machine ISA ([`asip_isa::Opcode`]): a customized-family
//! toolchain compiles to the family's own operation repertoire, so a separate
//! IR opcode set would only add a translation layer that could drift.

use asip_isa::Opcode;
use std::fmt;

/// A virtual register. The pool is unbounded; register allocation maps these
/// onto the target's physical file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A value operand: virtual register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Val {
    /// Read a virtual register.
    Reg(VReg),
    /// A 32-bit constant.
    Imm(i32),
}

impl Val {
    /// The register, if this is one.
    pub fn reg(self) -> Option<VReg> {
        match self {
            Val::Reg(r) => Some(r),
            Val::Imm(_) => None,
        }
    }

    /// The constant, if this is one.
    pub fn imm(self) -> Option<i32> {
        match self {
            Val::Reg(_) => None,
            Val::Imm(v) => Some(v),
        }
    }
}

impl From<VReg> for Val {
    fn from(r: VReg) -> Val {
        Val::Reg(r)
    }
}

impl From<i32> for Val {
    fn from(v: i32) -> Val {
        Val::Imm(v)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Reg(r) => write!(f, "{r}"),
            Val::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Identifier of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifier of a function within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifier of a global data object within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Identifier of a stack-allocated local array within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalSlot(pub u32);

/// Base of a memory address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrBase {
    /// A computed word address in a register.
    Reg(VReg),
    /// A module global.
    Global(GlobalId),
    /// A function-local stack array.
    Local(LocalSlot),
}

/// A memory address: base plus constant word offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// The base.
    pub base: AddrBase,
    /// Constant word offset added to the base.
    pub off: i32,
}

impl Addr {
    /// Address of a global's first word.
    pub fn global(g: GlobalId) -> Addr {
        Addr {
            base: AddrBase::Global(g),
            off: 0,
        }
    }

    /// Address of a local array's first word.
    pub fn local(s: LocalSlot) -> Addr {
        Addr {
            base: AddrBase::Local(s),
            off: 0,
        }
    }

    /// Address held in a register.
    pub fn reg(r: VReg) -> Addr {
        Addr {
            base: AddrBase::Reg(r),
            off: 0,
        }
    }

    /// Conservative may-alias test between two addresses.
    ///
    /// Distinct globals never alias; distinct locals never alias; a global
    /// never aliases a local; same-base accesses with different constant
    /// offsets don't alias. Anything involving a computed base may alias
    /// everything (a register can legitimately point anywhere, including
    /// into a global or local array).
    pub fn may_alias(&self, other: &Addr) -> bool {
        use AddrBase::*;
        match (self.base, other.base) {
            (Global(a), Global(b)) => {
                if a != b {
                    false
                } else {
                    self.off == other.off
                }
            }
            (Local(a), Local(b)) => {
                if a != b {
                    false
                } else {
                    self.off == other.off
                }
            }
            (Global(_), Local(_)) | (Local(_), Global(_)) => false,
            _ => true,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            AddrBase::Reg(r) => write!(f, "[{r}+{}]", self.off),
            AddrBase::Global(g) => write!(f, "[g{}+{}]", g.0, self.off),
            AddrBase::Local(s) => write!(f, "[local{}+{}]", s.0, self.off),
        }
    }
}

/// A non-terminating IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Two-operand arithmetic: `dst = op a, b`.
    Bin {
        /// Arithmetic opcode (must satisfy `num_srcs() == 2`).
        op: Opcode,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: Val,
        /// Right operand.
        b: Val,
    },
    /// One-operand arithmetic (`Abs`, `Sxtb`, `Sxth`, `Mov`).
    Un {
        /// Unary opcode.
        op: Opcode,
        /// Destination.
        dst: VReg,
        /// Operand.
        a: Val,
    },
    /// `dst = if c != 0 { a } else { b }`.
    Select {
        /// Destination.
        dst: VReg,
        /// Condition.
        c: Val,
        /// Value when true.
        a: Val,
        /// Value when false.
        b: Val,
    },
    /// Materialize an address: `dst = &base + off`.
    Lea {
        /// Destination.
        dst: VReg,
        /// The address taken.
        addr: Addr,
    },
    /// `dst = mem[addr]`.
    Load {
        /// Destination.
        dst: VReg,
        /// Address read.
        addr: Addr,
    },
    /// `mem[addr] = val`.
    Store {
        /// Value written.
        val: Val,
        /// Address written.
        addr: Addr,
    },
    /// Direct call: `dst = func(args...)`.
    Call {
        /// Destination for the return value, if used.
        dst: Option<VReg>,
        /// Callee.
        func: FuncId,
        /// Arguments (word-sized each).
        args: Vec<Val>,
    },
    /// Application-specific operation selected by the ISE engine.
    Custom {
        /// Index into the module's custom-op library.
        id: u16,
        /// Destinations (1 or 2).
        dsts: Vec<VReg>,
        /// Arguments.
        args: Vec<Val>,
    },
    /// Append `val` to the program's output stream.
    Emit {
        /// Value emitted.
        val: Val,
    },
}

impl Inst {
    /// The registers this instruction defines.
    pub fn defs(&self) -> Vec<VReg> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Lea { dst, .. }
            | Inst::Load { dst, .. } => vec![*dst],
            Inst::Call { dst, .. } => dst.iter().copied().collect(),
            Inst::Custom { dsts, .. } => dsts.clone(),
            Inst::Store { .. } | Inst::Emit { .. } => vec![],
        }
    }

    /// The registers this instruction reads.
    pub fn uses(&self) -> Vec<VReg> {
        fn add(out: &mut Vec<VReg>, v: &Val) {
            if let Val::Reg(r) = v {
                out.push(*r);
            }
        }
        fn add_addr(out: &mut Vec<VReg>, a: &Addr) {
            if let AddrBase::Reg(r) = a.base {
                out.push(r);
            }
        }
        let mut out = Vec::new();
        match self {
            Inst::Bin { a, b, .. } => {
                add(&mut out, a);
                add(&mut out, b);
            }
            Inst::Un { a, .. } => add(&mut out, a),
            Inst::Select { c, a, b, .. } => {
                add(&mut out, c);
                add(&mut out, a);
                add(&mut out, b);
            }
            Inst::Lea { addr, .. } => add_addr(&mut out, addr),
            Inst::Load { addr, .. } => add_addr(&mut out, addr),
            Inst::Store { val, addr } => {
                add(&mut out, val);
                add_addr(&mut out, addr);
            }
            Inst::Call { args, .. } => args.iter().for_each(|v| add(&mut out, v)),
            Inst::Custom { args, .. } => args.iter().for_each(|v| add(&mut out, v)),
            Inst::Emit { val } => add(&mut out, val),
        }
        out
    }

    /// Rewrite every use of a register through `f`.
    pub fn map_uses<F: FnMut(VReg) -> Val>(&mut self, mut f: F) {
        let map_val = |v: &mut Val, f: &mut F| {
            if let Val::Reg(r) = *v {
                *v = f(r);
            }
        };
        // Address bases must stay registers; map only reg→reg, keep reg on imm.
        let map_addr = |a: &mut Addr, f: &mut F| {
            if let AddrBase::Reg(r) = a.base {
                match f(r) {
                    Val::Reg(nr) => a.base = AddrBase::Reg(nr),
                    Val::Imm(_) => {} // cannot fold an immediate base here
                }
            }
        };
        match self {
            Inst::Bin { a, b, .. } => {
                map_val(a, &mut f);
                map_val(b, &mut f);
            }
            Inst::Un { a, .. } => map_val(a, &mut f),
            Inst::Select { c, a, b, .. } => {
                map_val(c, &mut f);
                map_val(a, &mut f);
                map_val(b, &mut f);
            }
            Inst::Lea { addr, .. } => map_addr(addr, &mut f),
            Inst::Load { addr, .. } => map_addr(addr, &mut f),
            Inst::Store { val, addr } => {
                map_val(val, &mut f);
                map_addr(addr, &mut f);
            }
            Inst::Call { args, .. } => args.iter_mut().for_each(|v| map_val(v, &mut f)),
            Inst::Custom { args, .. } => args.iter_mut().for_each(|v| map_val(v, &mut f)),
            Inst::Emit { val } => map_val(val, &mut f),
        }
    }

    /// Rewrite every defined register through `f`.
    pub fn map_defs<F: FnMut(VReg) -> VReg>(&mut self, mut f: F) {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Select { dst, .. }
            | Inst::Lea { dst, .. }
            | Inst::Load { dst, .. } => *dst = f(*dst),
            Inst::Call { dst, .. } => {
                if let Some(d) = dst {
                    *d = f(*d);
                }
            }
            Inst::Custom { dsts, .. } => dsts.iter_mut().for_each(|d| *d = f(*d)),
            Inst::Store { .. } | Inst::Emit { .. } => {}
        }
    }

    /// Whether the instruction is free of memory effects, I/O, calls and
    /// traps — safe to remove when dead and to execute speculatively.
    pub fn is_pure(&self) -> bool {
        match self {
            Inst::Bin { op, .. } => !matches!(op, Opcode::Div | Opcode::Rem),
            Inst::Un { .. } | Inst::Select { .. } | Inst::Lea { .. } => true,
            _ => false,
        }
    }

    /// Whether the instruction may be removed if its results are unused
    /// (pure, or a trap-free division is still not removable — division can
    /// trap, so it is kept).
    pub fn is_removable_if_dead(&self) -> bool {
        self.is_pure()
            || matches!(self, Inst::Load { .. }) // loads have no side effects
            || matches!(self, Inst::Bin { op: Opcode::Div | Opcode::Rem, b: Val::Imm(k), .. } if *k != 0)
    }

    /// Whether the instruction touches memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Bin { op, dst, a, b } => write!(f, "{dst} = {op} {a}, {b}"),
            Inst::Un { op, dst, a } => write!(f, "{dst} = {op} {a}"),
            Inst::Select { dst, c, a, b } => write!(f, "{dst} = slct {c} ? {a} : {b}"),
            Inst::Lea { dst, addr } => write!(f, "{dst} = lea {addr}"),
            Inst::Load { dst, addr } => write!(f, "{dst} = ldw {addr}"),
            Inst::Store { val, addr } => write!(f, "stw {val}, {addr}"),
            Inst::Call { dst, func, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call f{}(", func.0)?;
                } else {
                    write!(f, "call f{}(", func.0)?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Custom { id, dsts, args } => {
                for (i, d) in dsts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, " = cust{id}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Emit { val } => write!(f, "emit {val}"),
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on `c != 0`.
    Branch {
        /// Condition value.
        c: Val,
        /// Successor when `c != 0`.
        t: BlockId,
        /// Successor when `c == 0`.
        f: BlockId,
    },
    /// Function return.
    Ret(Option<Val>),
}

impl Terminator {
    /// Successor blocks, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { t, f, .. } => vec![*t, *f],
            Terminator::Ret(_) => vec![],
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Terminator::Branch { c: Val::Reg(r), .. } => vec![*r],
            Terminator::Ret(Some(Val::Reg(r))) => vec![*r],
            _ => vec![],
        }
    }

    /// Rewrite successor block ids through `f`.
    pub fn map_blocks<F: FnMut(BlockId) -> BlockId>(&mut self, mut f: F) {
        match self {
            Terminator::Jump(b) => *b = f(*b),
            Terminator::Branch { t, f: fb, .. } => {
                *t = f(*t);
                *fb = f(*fb);
            }
            Terminator::Ret(_) => {}
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(b) => write!(f, "jump {b}"),
            Terminator::Branch { c, t, f: fb } => write!(f, "br {c} ? {t} : {fb}"),
            Terminator::Ret(Some(v)) => write!(f, "ret {v}"),
            Terminator::Ret(None) => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses() {
        let i = Inst::Bin {
            op: Opcode::Add,
            dst: VReg(3),
            a: Val::Reg(VReg(1)),
            b: Val::Imm(4),
        };
        assert_eq!(i.defs(), vec![VReg(3)]);
        assert_eq!(i.uses(), vec![VReg(1)]);

        let s = Inst::Store {
            val: Val::Reg(VReg(2)),
            addr: Addr::reg(VReg(5)),
        };
        assert!(s.defs().is_empty());
        assert_eq!(s.uses(), vec![VReg(2), VReg(5)]);
    }

    #[test]
    fn purity_classification() {
        let add = Inst::Bin {
            op: Opcode::Add,
            dst: VReg(0),
            a: Val::Imm(1),
            b: Val::Imm(2),
        };
        assert!(add.is_pure());
        let div = Inst::Bin {
            op: Opcode::Div,
            dst: VReg(0),
            a: Val::Imm(1),
            b: Val::Reg(VReg(1)),
        };
        assert!(!div.is_pure());
        assert!(!div.is_removable_if_dead());
        let div_const = Inst::Bin {
            op: Opcode::Div,
            dst: VReg(0),
            a: Val::Imm(1),
            b: Val::Imm(2),
        };
        assert!(div_const.is_removable_if_dead());
        let load = Inst::Load {
            dst: VReg(0),
            addr: Addr::global(GlobalId(0)),
        };
        assert!(!load.is_pure());
        assert!(load.is_removable_if_dead());
    }

    #[test]
    fn alias_rules() {
        let g0 = Addr::global(GlobalId(0));
        let g1 = Addr::global(GlobalId(1));
        let g0_4 = Addr {
            base: AddrBase::Global(GlobalId(0)),
            off: 4,
        };
        let l0 = Addr::local(LocalSlot(0));
        let rr = Addr::reg(VReg(9));
        assert!(!g0.may_alias(&g1));
        assert!(!g0.may_alias(&g0_4));
        assert!(g0.may_alias(&g0));
        assert!(!g0.may_alias(&l0));
        assert!(rr.may_alias(&g0));
        assert!(
            rr.may_alias(&l0),
            "a computed base may point into a local array"
        );
        assert!(rr.may_alias(&rr));
    }

    #[test]
    fn map_uses_replaces_registers() {
        let mut i = Inst::Bin {
            op: Opcode::Add,
            dst: VReg(3),
            a: Val::Reg(VReg(1)),
            b: Val::Reg(VReg(2)),
        };
        i.map_uses(|r| {
            if r == VReg(1) {
                Val::Imm(7)
            } else {
                Val::Reg(r)
            }
        });
        assert_eq!(i.uses(), vec![VReg(2)]);
        if let Inst::Bin { a, .. } = &i {
            assert_eq!(*a, Val::Imm(7));
        }
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            c: Val::Reg(VReg(0)),
            t: BlockId(1),
            f: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(t.uses(), vec![VReg(0)]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn display_forms() {
        let i = Inst::Load {
            dst: VReg(1),
            addr: Addr {
                base: AddrBase::Global(GlobalId(2)),
                off: 3,
            },
        };
        assert_eq!(i.to_string(), "v1 = ldw [g2+3]");
        let t = Terminator::Jump(BlockId(4));
        assert_eq!(t.to_string(), "jump bb4");
    }
}
