//! [`Codec`] implementations for the IR artifact kinds the persistent
//! artifact cache stores: whole [`Module`]s (the Parse and Optimize stage
//! outputs) and interpreter [`Profile`]s (the Profile stage output).
//!
//! Built on the byte-level primitives and format discipline of
//! [`asip_isa::codec`]; see that module for the tag/length conventions. The
//! only non-mechanical choice here is [`Profile`]: its backing `HashMap`
//! iterates in arbitrary order, so entries are encoded **sorted by function
//! id** — equal profiles always encode to identical bytes, which the cache
//! relies on for deterministic write-through.

use crate::func::{Block, Function, GlobalData, LocalData, Module};
use crate::inst::{
    Addr, AddrBase, BlockId, FuncId, GlobalId, Inst, LocalSlot, Terminator, VReg, Val,
};
use crate::interp::Profile;
use asip_isa::codec::{Codec, CodecError, Reader, Writer};
use asip_isa::Opcode;
use std::collections::HashMap;

macro_rules! impl_codec_id {
    ($($t:ident),* $(,)?) => {$(
        impl Codec for $t {
            fn encode(&self, w: &mut Writer) {
                w.put_u32(self.0);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                Ok($t(r.get_u32()?))
            }
        }
    )*};
}

impl_codec_id!(VReg, BlockId, FuncId, GlobalId, LocalSlot);

impl Codec for Val {
    fn encode(&self, w: &mut Writer) {
        match self {
            Val::Reg(r) => {
                w.put_u8(0);
                r.encode(w);
            }
            Val::Imm(v) => {
                w.put_u8(1);
                w.put_i32(*v);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Val::Reg(VReg::decode(r)?)),
            1 => Ok(Val::Imm(r.get_i32()?)),
            tag => Err(CodecError::BadTag {
                what: "Val",
                tag: tag.into(),
            }),
        }
    }
}

impl Codec for AddrBase {
    fn encode(&self, w: &mut Writer) {
        match self {
            AddrBase::Reg(r) => {
                w.put_u8(0);
                r.encode(w);
            }
            AddrBase::Global(g) => {
                w.put_u8(1);
                g.encode(w);
            }
            AddrBase::Local(l) => {
                w.put_u8(2);
                l.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(AddrBase::Reg(VReg::decode(r)?)),
            1 => Ok(AddrBase::Global(GlobalId::decode(r)?)),
            2 => Ok(AddrBase::Local(LocalSlot::decode(r)?)),
            tag => Err(CodecError::BadTag {
                what: "AddrBase",
                tag: tag.into(),
            }),
        }
    }
}

impl Codec for Addr {
    fn encode(&self, w: &mut Writer) {
        self.base.encode(w);
        w.put_i32(self.off);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Addr {
            base: AddrBase::decode(r)?,
            off: r.get_i32()?,
        })
    }
}

impl Codec for Inst {
    fn encode(&self, w: &mut Writer) {
        match self {
            Inst::Bin { op, dst, a, b } => {
                w.put_u8(0);
                op.encode(w);
                dst.encode(w);
                a.encode(w);
                b.encode(w);
            }
            Inst::Un { op, dst, a } => {
                w.put_u8(1);
                op.encode(w);
                dst.encode(w);
                a.encode(w);
            }
            Inst::Select { dst, c, a, b } => {
                w.put_u8(2);
                dst.encode(w);
                c.encode(w);
                a.encode(w);
                b.encode(w);
            }
            Inst::Lea { dst, addr } => {
                w.put_u8(3);
                dst.encode(w);
                addr.encode(w);
            }
            Inst::Load { dst, addr } => {
                w.put_u8(4);
                dst.encode(w);
                addr.encode(w);
            }
            Inst::Store { val, addr } => {
                w.put_u8(5);
                val.encode(w);
                addr.encode(w);
            }
            Inst::Call { dst, func, args } => {
                w.put_u8(6);
                dst.encode(w);
                func.encode(w);
                args.encode(w);
            }
            Inst::Custom { id, dsts, args } => {
                w.put_u8(7);
                w.put_u16(*id);
                dsts.encode(w);
                args.encode(w);
            }
            Inst::Emit { val } => {
                w.put_u8(8);
                val.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => Inst::Bin {
                op: Opcode::decode(r)?,
                dst: VReg::decode(r)?,
                a: Val::decode(r)?,
                b: Val::decode(r)?,
            },
            1 => Inst::Un {
                op: Opcode::decode(r)?,
                dst: VReg::decode(r)?,
                a: Val::decode(r)?,
            },
            2 => Inst::Select {
                dst: VReg::decode(r)?,
                c: Val::decode(r)?,
                a: Val::decode(r)?,
                b: Val::decode(r)?,
            },
            3 => Inst::Lea {
                dst: VReg::decode(r)?,
                addr: Addr::decode(r)?,
            },
            4 => Inst::Load {
                dst: VReg::decode(r)?,
                addr: Addr::decode(r)?,
            },
            5 => Inst::Store {
                val: Val::decode(r)?,
                addr: Addr::decode(r)?,
            },
            6 => Inst::Call {
                dst: Option::decode(r)?,
                func: FuncId::decode(r)?,
                args: Vec::decode(r)?,
            },
            7 => Inst::Custom {
                id: r.get_u16()?,
                dsts: Vec::decode(r)?,
                args: Vec::decode(r)?,
            },
            8 => Inst::Emit {
                val: Val::decode(r)?,
            },
            tag => {
                return Err(CodecError::BadTag {
                    what: "Inst",
                    tag: tag.into(),
                })
            }
        })
    }
}

impl Codec for Terminator {
    fn encode(&self, w: &mut Writer) {
        match self {
            Terminator::Jump(b) => {
                w.put_u8(0);
                b.encode(w);
            }
            Terminator::Branch { c, t, f } => {
                w.put_u8(1);
                c.encode(w);
                t.encode(w);
                f.encode(w);
            }
            Terminator::Ret(v) => {
                w.put_u8(2);
                v.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => Terminator::Jump(BlockId::decode(r)?),
            1 => Terminator::Branch {
                c: Val::decode(r)?,
                t: BlockId::decode(r)?,
                f: BlockId::decode(r)?,
            },
            2 => Terminator::Ret(Option::decode(r)?),
            tag => {
                return Err(CodecError::BadTag {
                    what: "Terminator",
                    tag: tag.into(),
                })
            }
        })
    }
}

impl Codec for Block {
    fn encode(&self, w: &mut Writer) {
        self.insts.encode(w);
        self.term.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Block {
            insts: Vec::decode(r)?,
            term: Terminator::decode(r)?,
        })
    }
}

impl Codec for LocalData {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_u32(self.words);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(LocalData {
            name: r.get_str()?,
            words: r.get_u32()?,
        })
    }
}

impl Codec for Function {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_u32(self.num_params);
        w.put_bool(self.returns_value);
        self.blocks.encode(w);
        self.entry.encode(w);
        self.locals.encode(w);
        w.put_u32(self.num_vregs);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Function {
            name: r.get_str()?,
            num_params: r.get_u32()?,
            returns_value: r.get_bool()?,
            blocks: Vec::decode(r)?,
            entry: BlockId::decode(r)?,
            locals: Vec::decode(r)?,
            num_vregs: r.get_u32()?,
        })
    }
}

impl Codec for GlobalData {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_u32(self.words);
        self.init.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(GlobalData {
            name: r.get_str()?,
            words: r.get_u32()?,
            init: Vec::decode(r)?,
        })
    }
}

impl Codec for Module {
    fn encode(&self, w: &mut Writer) {
        self.funcs.encode(w);
        self.globals.encode(w);
        self.custom_ops.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Module {
            funcs: Vec::decode(r)?,
            globals: Vec::decode(r)?,
            custom_ops: Vec::decode(r)?,
        })
    }
}

impl Codec for Profile {
    fn encode(&self, w: &mut Writer) {
        // Sorted by function id: equal profiles encode to identical bytes.
        let mut entries: Vec<(&u32, &Vec<u64>)> = self.counts.iter().collect();
        entries.sort_by_key(|(id, _)| **id);
        w.put_u32(entries.len() as u32);
        for (id, counts) in entries {
            w.put_u32(*id);
            counts.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.get_len()?;
        let mut counts = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = r.get_u32()?;
            counts.insert(id, Vec::decode(r)?);
        }
        Ok(Profile { counts })
    }
}

/// Stable wire tags: 0 = `DivByZero`, 1 = `OutOfBounds`, 2 = `StepLimit`,
/// 3 = `StackOverflow`, 4 = `NoEntry`, 5 = `BadCustom`, 6 = `OutOfMemory`.
/// Never renumber.
impl Codec for crate::interp::InterpError {
    fn encode(&self, w: &mut Writer) {
        use crate::interp::InterpError::*;
        match self {
            DivByZero => w.put_u8(0),
            OutOfBounds(addr) => {
                w.put_u8(1);
                w.put_u64(*addr as u64);
            }
            StepLimit => w.put_u8(2),
            StackOverflow => w.put_u8(3),
            NoEntry(name) => {
                w.put_u8(4);
                w.put_str(name);
            }
            BadCustom(msg) => {
                w.put_u8(5);
                w.put_str(msg);
            }
            OutOfMemory => w.put_u8(6),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        use crate::interp::InterpError::*;
        Ok(match r.get_u8()? {
            0 => DivByZero,
            1 => OutOfBounds(r.get_u64()? as i64),
            2 => StepLimit,
            3 => StackOverflow,
            4 => NoEntry(r.get_str()?),
            5 => BadCustom(r.get_str()?),
            6 => OutOfMemory,
            tag => {
                return Err(CodecError::BadTag {
                    what: "InterpError",
                    tag: tag.into(),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.encode_to_vec();
        assert_eq!(&T::decode_all(&bytes).expect("decode"), v);
    }

    #[test]
    fn whole_module_roundtrips() {
        // A hand-built module exercising every container: two functions,
        // a loop CFG, locals, an initialized global, and a custom op.
        let mut helper = Function::new("mac3", 3, true);
        let d = helper.new_vreg();
        helper.blocks[0] = Block {
            insts: vec![Inst::Custom {
                id: 0,
                dsts: vec![d],
                args: vec![Val::Reg(VReg(0)), Val::Reg(VReg(1)), Val::Reg(VReg(2))],
            }],
            term: Terminator::Ret(Some(Val::Reg(d))),
        };
        let mut main = Function::new("main", 1, false);
        main.locals.push(LocalData {
            name: "tmp".into(),
            words: 4,
        });
        let i = main.new_vreg();
        let acc = main.new_vreg();
        let body = main.new_block();
        let done = main.new_block();
        main.blocks[0] = Block {
            insts: vec![Inst::Un {
                op: Opcode::Mov,
                dst: i,
                a: Val::Imm(0),
            }],
            term: Terminator::Jump(BlockId(1)),
        };
        main.block_mut(body).insts = vec![
            Inst::Load {
                dst: acc,
                addr: Addr::global(GlobalId(0)),
            },
            Inst::Call {
                dst: Some(acc),
                func: FuncId(1),
                args: vec![Val::Reg(acc), Val::Reg(i), Val::Imm(3)],
            },
            Inst::Store {
                val: Val::Reg(acc),
                addr: Addr::local(LocalSlot(0)),
            },
            Inst::Emit { val: Val::Reg(acc) },
        ];
        main.block_mut(body).term = Terminator::Branch {
            c: Val::Reg(i),
            t: body,
            f: done,
        };
        let module = Module {
            funcs: vec![main, helper],
            globals: vec![GlobalData {
                name: "tbl".into(),
                words: 8,
                init: vec![1, -2, 3],
            }],
            custom_ops: vec![asip_isa::custom::mac_op()],
        };
        assert_eq!(crate::func::verify(&module), Ok(()));
        roundtrip(&module);
    }

    #[test]
    fn profile_encoding_is_order_independent() {
        let mut a = Profile::default();
        a.counts.insert(2, vec![7, 8]);
        a.counts.insert(0, vec![1]);
        a.counts.insert(9, vec![]);
        let mut b = Profile::default();
        // Same entries inserted in a different order.
        b.counts.insert(9, vec![]);
        b.counts.insert(0, vec![1]);
        b.counts.insert(2, vec![7, 8]);
        assert_eq!(a.encode_to_vec(), b.encode_to_vec());
        roundtrip(&a);
    }

    #[test]
    fn every_inst_variant_roundtrips() {
        let insts = vec![
            Inst::Bin {
                op: Opcode::Mul,
                dst: VReg(3),
                a: Val::Reg(VReg(1)),
                b: Val::Imm(-7),
            },
            Inst::Un {
                op: Opcode::Sxtb,
                dst: VReg(0),
                a: Val::Imm(511),
            },
            Inst::Select {
                dst: VReg(4),
                c: Val::Reg(VReg(1)),
                a: Val::Imm(1),
                b: Val::Imm(0),
            },
            Inst::Lea {
                dst: VReg(5),
                addr: Addr::local(LocalSlot(2)),
            },
            Inst::Load {
                dst: VReg(6),
                addr: Addr {
                    base: AddrBase::Reg(VReg(5)),
                    off: -4,
                },
            },
            Inst::Store {
                val: Val::Reg(VReg(6)),
                addr: Addr::global(GlobalId(1)),
            },
            Inst::Call {
                dst: Some(VReg(7)),
                func: FuncId(2),
                args: vec![Val::Imm(1), Val::Reg(VReg(0))],
            },
            Inst::Custom {
                id: 3,
                dsts: vec![VReg(8), VReg(9)],
                args: vec![Val::Imm(2)],
            },
            Inst::Emit { val: Val::Imm(42) },
        ];
        roundtrip(&insts);
        let terms = vec![
            Terminator::Jump(BlockId(4)),
            Terminator::Branch {
                c: Val::Reg(VReg(1)),
                t: BlockId(1),
                f: BlockId(2),
            },
            Terminator::Ret(None),
            Terminator::Ret(Some(Val::Imm(-1))),
        ];
        roundtrip(&terms);
    }

    #[test]
    fn bad_inst_tag_is_an_error() {
        assert!(matches!(
            Inst::decode_all(&[99]),
            Err(CodecError::BadTag { what: "Inst", .. })
        ));
    }
}
