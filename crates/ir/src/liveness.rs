//! Classic backward dataflow liveness over virtual registers.

use crate::cfg::predecessors;
use crate::func::Function;
use crate::inst::VReg;
use std::collections::BTreeSet;

/// Live-in / live-out sets per block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    /// Registers live at block entry.
    pub live_in: Vec<BTreeSet<VReg>>,
    /// Registers live at block exit.
    pub live_out: Vec<BTreeSet<VReg>>,
}

impl Liveness {
    /// Whether `r` is live entering block `b`.
    pub fn is_live_in(&self, b: usize, r: VReg) -> bool {
        self.live_in[b].contains(&r)
    }

    /// Whether `r` is live leaving block `b`.
    pub fn is_live_out(&self, b: usize, r: VReg) -> bool {
        self.live_out[b].contains(&r)
    }
}

/// Compute per-block use/def (upward-exposed uses and defined sets).
fn use_def(f: &Function) -> (Vec<BTreeSet<VReg>>, Vec<BTreeSet<VReg>>) {
    let n = f.blocks.len();
    let mut uses = vec![BTreeSet::new(); n];
    let mut defs = vec![BTreeSet::new(); n];
    for (bi, b) in f.iter_blocks() {
        let i = bi.0 as usize;
        for inst in &b.insts {
            for u in inst.uses() {
                if !defs[i].contains(&u) {
                    uses[i].insert(u);
                }
            }
            for d in inst.defs() {
                defs[i].insert(d);
            }
        }
        for u in b.term.uses() {
            if !defs[i].contains(&u) {
                uses[i].insert(u);
            }
        }
    }
    (uses, defs)
}

/// Run the liveness fixpoint.
pub fn liveness(f: &Function) -> Liveness {
    let n = f.blocks.len();
    let (uses, defs) = use_def(f);
    let preds = predecessors(f);
    let mut live_in = vec![BTreeSet::new(); n];
    let mut live_out = vec![BTreeSet::new(); n];

    // Worklist seeded with all blocks (reverse order converges fast).
    let mut work: Vec<usize> = (0..n).rev().collect();
    while let Some(b) = work.pop() {
        let mut out = BTreeSet::new();
        for s in f.blocks[b].term.successors() {
            out.extend(live_in[s.0 as usize].iter().copied());
        }
        let mut inp: BTreeSet<VReg> = uses[b].clone();
        for &r in &out {
            if !defs[b].contains(&r) {
                inp.insert(r);
            }
        }
        let changed = inp != live_in[b] || out != live_out[b];
        live_out[b] = out;
        if changed {
            live_in[b] = inp;
            for &p in &preds[b] {
                if !work.contains(&(p.0 as usize)) {
                    work.push(p.0 as usize);
                }
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Function};
    use crate::inst::{Inst, Terminator, VReg, Val};
    use asip_isa::Opcode;

    /// bb0: v1 = 1; branch v0 ? bb1 : bb2
    /// bb1: emit v1; ret
    /// bb2: ret
    fn diamondish() -> Function {
        let mut f = Function::new("t", 1, false);
        let v1 = f.new_vreg();
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.blocks[0] = Block {
            insts: vec![Inst::Un {
                op: Opcode::Mov,
                dst: v1,
                a: Val::Imm(1),
            }],
            term: Terminator::Branch {
                c: Val::Reg(VReg(0)),
                t: b1,
                f: b2,
            },
        };
        f.block_mut(b1).insts.push(Inst::Emit { val: Val::Reg(v1) });
        f.block_mut(b1).term = Terminator::Ret(None);
        f.block_mut(b2).term = Terminator::Ret(None);
        f
    }

    #[test]
    fn param_live_in_at_entry() {
        let f = diamondish();
        let l = liveness(&f);
        assert!(l.is_live_in(0, VReg(0)), "branch condition is used");
        assert!(!l.is_live_in(0, VReg(1)), "v1 is defined before use");
    }

    #[test]
    fn value_live_across_edge() {
        let f = diamondish();
        let l = liveness(&f);
        assert!(l.is_live_out(0, VReg(1)), "v1 flows to bb1");
        assert!(l.is_live_in(1, VReg(1)));
        assert!(!l.is_live_in(2, VReg(1)), "bb2 never reads v1");
    }

    #[test]
    fn loop_keeps_values_alive() {
        // bb0: v1 = 0; jump bb1
        // bb1: v1 = add v1, 1; branch v0 ? bb1 : bb2
        // bb2: emit v1; ret
        let mut f = Function::new("t", 1, false);
        let v1 = f.new_vreg();
        let b1 = f.new_block();
        let b2 = f.new_block();
        f.blocks[0] = Block {
            insts: vec![Inst::Un {
                op: Opcode::Mov,
                dst: v1,
                a: Val::Imm(0),
            }],
            term: Terminator::Jump(b1),
        };
        f.block_mut(b1).insts.push(Inst::Bin {
            op: Opcode::Add,
            dst: v1,
            a: Val::Reg(v1),
            b: Val::Imm(1),
        });
        f.block_mut(b1).term = Terminator::Branch {
            c: Val::Reg(VReg(0)),
            t: b1,
            f: b2,
        };
        f.block_mut(b2).insts.push(Inst::Emit { val: Val::Reg(v1) });
        f.block_mut(b2).term = Terminator::Ret(None);

        let l = liveness(&f);
        assert!(l.is_live_in(1, v1), "v1 carried around the loop");
        assert!(l.is_live_out(1, v1));
        assert!(l.is_live_in(1, VReg(0)), "loop condition stays live");
        assert_eq!(l.live_out[2], BTreeSet::new());
    }
}
