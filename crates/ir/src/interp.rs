//! Reference IR interpreter.
//!
//! The interpreter serves three roles in the toolchain:
//!
//! 1. **Golden model** — every compiled program must produce exactly the
//!    output the interpreter produces (differential testing of the whole
//!    backend and simulator);
//! 2. **Profiler** — block execution counts feed profile-guided superblock
//!    selection in the backend ("statistical profiling", paper §2.2);
//! 3. **ISE oracle** — the custom-instruction engine estimates dynamic gains
//!    from the same counts.

use crate::func::{Function, Module};
use crate::inst::{Addr, AddrBase, BlockId, FuncId, Inst, Terminator, VReg, Val};
use std::collections::HashMap;
use std::fmt;

/// Interpreter limits and sizes.
#[derive(Debug, Clone, Copy)]
pub struct InterpOptions {
    /// Data memory size in words.
    pub memory_words: u32,
    /// Hard cap on executed instructions.
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: u32,
}

impl Default for InterpOptions {
    fn default() -> Self {
        InterpOptions {
            memory_words: 1 << 20,
            max_steps: 200_000_000,
            max_depth: 256,
        }
    }
}

/// Runtime error during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Integer division by zero.
    DivByZero,
    /// Memory access outside the data segment.
    OutOfBounds(i64),
    /// Executed more than `max_steps` instructions.
    StepLimit,
    /// Call depth exceeded `max_depth`.
    StackOverflow,
    /// The requested entry function does not exist.
    NoEntry(String),
    /// A custom operation failed to evaluate.
    BadCustom(String),
    /// Stack and globals collided (out of data memory).
    OutOfMemory,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::DivByZero => write!(f, "integer division by zero"),
            InterpError::OutOfBounds(a) => write!(f, "memory access out of bounds at {a}"),
            InterpError::StepLimit => write!(f, "instruction step limit exceeded"),
            InterpError::StackOverflow => write!(f, "call depth limit exceeded"),
            InterpError::NoEntry(n) => write!(f, "no function named {n:?}"),
            InterpError::BadCustom(m) => write!(f, "custom op failed: {m}"),
            InterpError::OutOfMemory => write!(f, "stack collided with global data"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Dynamic profile: per-function, per-block execution counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// `counts[func][block]` = number of times the block was entered.
    pub counts: HashMap<u32, Vec<u64>>,
}

impl Profile {
    /// Execution count of `block` in `func` (0 when never profiled).
    pub fn count(&self, func: FuncId, block: BlockId) -> u64 {
        self.counts
            .get(&func.0)
            .and_then(|v| v.get(block.0 as usize))
            .copied()
            .unwrap_or(0)
    }

    /// Probability that the terminator branch of `block` goes to its first
    /// (taken) successor, estimated from successor entry counts. `None` when
    /// there is no data.
    pub fn taken_probability(&self, f: &Function, func: FuncId, block: BlockId) -> Option<f64> {
        if let Terminator::Branch { t, f: fl, .. } = f.block(block).term {
            let ct = self.count(func, t) as f64;
            let cf = self.count(func, fl) as f64;
            if ct + cf > 0.0 {
                return Some(ct / (ct + cf));
            }
        }
        None
    }
}

/// Result of a successful run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpResult {
    /// Values emitted by `Emit` instructions, in order.
    pub output: Vec<i32>,
    /// Return value of the entry function, if any.
    pub ret: Option<i32>,
    /// Instructions executed.
    pub steps: u64,
    /// Block-level execution profile.
    pub profile: Profile,
    /// Final data memory (globals live at [`Interp::global_addr`]).
    pub memory: Vec<i32>,
}

/// The interpreter: owns memory layout and run state.
#[derive(Debug)]
pub struct Interp<'m> {
    module: &'m Module,
    opts: InterpOptions,
    global_addr: Vec<u32>,
    memory: Vec<i32>,
    output: Vec<i32>,
    steps: u64,
    profile: Profile,
    data_top: u32,
}

impl<'m> Interp<'m> {
    /// Build an interpreter for `module`, laying out globals from address 0.
    pub fn new(module: &'m Module, opts: InterpOptions) -> Interp<'m> {
        let mut global_addr = Vec::with_capacity(module.globals.len());
        let mut addr = 0u32;
        for g in &module.globals {
            global_addr.push(addr);
            addr += g.words;
        }
        let mut memory = vec![0i32; opts.memory_words as usize];
        for (g, &base) in module.globals.iter().zip(&global_addr) {
            for (i, &v) in g.init.iter().enumerate() {
                if (base as usize + i) < memory.len() {
                    memory[base as usize + i] = v;
                }
            }
        }
        Interp {
            module,
            opts,
            global_addr,
            memory,
            output: Vec::new(),
            steps: 0,
            profile: Profile::default(),
            data_top: addr,
        }
    }

    /// Word address of a global's first element.
    pub fn global_addr(&self, name: &str) -> Option<u32> {
        let id = self.module.global_id(name)?;
        self.global_addr.get(id.0 as usize).copied()
    }

    /// Overwrite a global's contents before running (workload inputs).
    pub fn write_global(&mut self, name: &str, data: &[i32]) -> bool {
        let Some(base) = self.global_addr(name) else {
            return false;
        };
        let Some(id) = self.module.global_id(name) else {
            return false;
        };
        let words = self.module.globals[id.0 as usize].words as usize;
        for (i, &v) in data.iter().take(words).enumerate() {
            self.memory[base as usize + i] = v;
        }
        true
    }

    /// Read a global's contents (e.g. after a run).
    pub fn read_global(&self, name: &str) -> Option<Vec<i32>> {
        let base = self.global_addr(name)? as usize;
        let id = self.module.global_id(name)?;
        let words = self.module.globals[id.0 as usize].words as usize;
        Some(self.memory[base..base + words].to_vec())
    }

    /// Run `entry(args...)` to completion.
    ///
    /// # Errors
    ///
    /// Any [`InterpError`] raised during execution.
    pub fn run(mut self, entry: &str, args: &[i32]) -> Result<InterpResult, InterpError> {
        let fid = self
            .module
            .func_id(entry)
            .ok_or_else(|| InterpError::NoEntry(entry.to_string()))?;
        let sp = self.opts.memory_words;
        let ret = self.call(fid, args, sp, 0)?;
        Ok(InterpResult {
            output: self.output,
            ret,
            steps: self.steps,
            profile: self.profile,
            memory: self.memory,
        })
    }

    fn mem_read(&self, addr: i64) -> Result<i32, InterpError> {
        if addr < 0 || addr as usize >= self.memory.len() {
            return Err(InterpError::OutOfBounds(addr));
        }
        Ok(self.memory[addr as usize])
    }

    fn mem_write(&mut self, addr: i64, v: i32) -> Result<(), InterpError> {
        if addr < 0 || addr as usize >= self.memory.len() {
            return Err(InterpError::OutOfBounds(addr));
        }
        self.memory[addr as usize] = v;
        Ok(())
    }

    fn call(
        &mut self,
        fid: FuncId,
        args: &[i32],
        sp: u32,
        depth: u32,
    ) -> Result<Option<i32>, InterpError> {
        if depth > self.opts.max_depth {
            return Err(InterpError::StackOverflow);
        }
        let func = &self.module.funcs[fid.0 as usize];
        // Frame: local arrays packed below the caller's stack pointer.
        let local_words: u32 = func.locals.iter().map(|l| l.words).sum();
        if sp < local_words || sp - local_words < self.data_top {
            return Err(InterpError::OutOfMemory);
        }
        let frame_base = sp - local_words;
        let mut local_addr = Vec::with_capacity(func.locals.len());
        {
            let mut a = frame_base;
            for l in &func.locals {
                local_addr.push(a);
                a += l.words;
            }
        }

        let mut regs = vec![0i32; func.num_vregs as usize];
        for (i, &a) in args.iter().enumerate().take(func.num_params as usize) {
            regs[i] = a;
        }

        let val = |v: Val, regs: &[i32]| -> i32 {
            match v {
                Val::Reg(VReg(r)) => regs[r as usize],
                Val::Imm(k) => k,
            }
        };
        let addr_of = |a: &Addr, regs: &[i32], global_addr: &[u32], local_addr: &[u32]| -> i64 {
            let base: i64 = match a.base {
                AddrBase::Reg(VReg(r)) => i64::from(regs[r as usize]),
                AddrBase::Global(g) => i64::from(global_addr[g.0 as usize]),
                AddrBase::Local(l) => i64::from(local_addr[l.0 as usize]),
            };
            base + i64::from(a.off)
        };

        let mut block = func.entry;
        loop {
            *self
                .profile
                .counts
                .entry(fid.0)
                .or_insert_with(|| vec![0; func.blocks.len()])
                .get_mut(block.0 as usize)
                .expect("block in range") += 1;

            // Clone the instruction list reference by index to satisfy the
            // borrow checker across the recursive `call` below.
            let ninsts = func.block(block).insts.len();
            for ii in 0..ninsts {
                self.steps += 1;
                if self.steps > self.opts.max_steps {
                    return Err(InterpError::StepLimit);
                }
                let inst = func.block(block).insts[ii].clone();
                match inst {
                    Inst::Bin { op, dst, a, b } => {
                        let (x, y) = (val(a, &regs), val(b, &regs));
                        let r = op.eval2(x, y).map_err(|e| match e {
                            asip_isa::EvalError::DivideByZero => InterpError::DivByZero,
                            asip_isa::EvalError::NotArithmetic => {
                                InterpError::BadCustom(format!("non-arith bin op {op}"))
                            }
                        })?;
                        regs[dst.0 as usize] = r;
                    }
                    Inst::Un { op, dst, a } => {
                        let x = val(a, &regs);
                        let r = op
                            .eval1(x)
                            .map_err(|_| InterpError::BadCustom(format!("non-arith un op {op}")))?;
                        regs[dst.0 as usize] = r;
                    }
                    Inst::Select { dst, c, a, b } => {
                        regs[dst.0 as usize] = if val(c, &regs) != 0 {
                            val(a, &regs)
                        } else {
                            val(b, &regs)
                        };
                    }
                    Inst::Lea { dst, addr } => {
                        let a = addr_of(&addr, &regs, &self.global_addr, &local_addr);
                        regs[dst.0 as usize] = a as i32;
                    }
                    Inst::Load { dst, addr } => {
                        let a = addr_of(&addr, &regs, &self.global_addr, &local_addr);
                        regs[dst.0 as usize] = self.mem_read(a)?;
                    }
                    Inst::Store { val: v, addr } => {
                        let a = addr_of(&addr, &regs, &self.global_addr, &local_addr);
                        let x = val(v, &regs);
                        self.mem_write(a, x)?;
                    }
                    Inst::Call {
                        dst,
                        func: callee,
                        args,
                    } => {
                        let argv: Vec<i32> = args.iter().map(|&a| val(a, &regs)).collect();
                        let r = self.call(callee, &argv, frame_base, depth + 1)?;
                        if let Some(d) = dst {
                            regs[d.0 as usize] = r.unwrap_or(0);
                        }
                    }
                    Inst::Custom { id, dsts, args } => {
                        let def = self
                            .module
                            .custom_ops
                            .get(id as usize)
                            .ok_or_else(|| InterpError::BadCustom(format!("no op {id}")))?;
                        let argv: Vec<i32> = args.iter().map(|&a| val(a, &regs)).collect();
                        let outs = def.eval(&argv).map_err(|e| {
                            if matches!(
                                e,
                                asip_isa::CustomOpError::Eval(asip_isa::EvalError::DivideByZero)
                            ) {
                                InterpError::DivByZero
                            } else {
                                InterpError::BadCustom(e.to_string())
                            }
                        })?;
                        for (d, o) in dsts.iter().zip(outs) {
                            regs[d.0 as usize] = o;
                        }
                    }
                    Inst::Emit { val: v } => {
                        let x = val(v, &regs);
                        self.output.push(x);
                    }
                }
            }

            self.steps += 1;
            if self.steps > self.opts.max_steps {
                return Err(InterpError::StepLimit);
            }
            match func.block(block).term {
                Terminator::Jump(b) => block = b,
                Terminator::Branch { c, t, f } => {
                    block = if val(c, &regs) != 0 { t } else { f };
                }
                Terminator::Ret(v) => {
                    return Ok(v.map(|v| val(v, &regs)));
                }
            }
        }
    }
}

/// One-call convenience: interpret `entry(args...)` of `module` with default
/// options.
///
/// # Errors
///
/// Any [`InterpError`] raised during execution.
pub fn run_module(module: &Module, entry: &str, args: &[i32]) -> Result<InterpResult, InterpError> {
    Interp::new(module, InterpOptions::default()).run(entry, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Function, GlobalData, LocalData, Module};
    use crate::inst::*;
    use asip_isa::Opcode;

    fn module_with(f: Function) -> Module {
        Module {
            funcs: vec![f],
            globals: vec![],
            custom_ops: vec![],
        }
    }

    #[test]
    fn arithmetic_and_emit() {
        let mut f = Function::new("main", 0, true);
        let v = f.new_vreg();
        f.blocks[0] = Block {
            insts: vec![
                Inst::Bin {
                    op: Opcode::Mul,
                    dst: v,
                    a: Val::Imm(6),
                    b: Val::Imm(7),
                },
                Inst::Emit { val: Val::Reg(v) },
            ],
            term: Terminator::Ret(Some(Val::Reg(v))),
        };
        let r = run_module(&module_with(f), "main", &[]).unwrap();
        assert_eq!(r.output, vec![42]);
        assert_eq!(r.ret, Some(42));
    }

    #[test]
    fn loop_sums_range() {
        // sum = 0; i = 0; while (i < n) { sum += i; i += 1 } emit sum
        let mut f = Function::new("main", 1, false);
        let sum = f.new_vreg();
        let i = f.new_vreg();
        let c = f.new_vreg();
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.blocks[0] = Block {
            insts: vec![
                Inst::Un {
                    op: Opcode::Mov,
                    dst: sum,
                    a: Val::Imm(0),
                },
                Inst::Un {
                    op: Opcode::Mov,
                    dst: i,
                    a: Val::Imm(0),
                },
            ],
            term: Terminator::Jump(header),
        };
        f.block_mut(header).insts.push(Inst::Bin {
            op: Opcode::CmpLt,
            dst: c,
            a: Val::Reg(i),
            b: Val::Reg(VReg(0)),
        });
        f.block_mut(header).term = Terminator::Branch {
            c: Val::Reg(c),
            t: body,
            f: exit,
        };
        f.block_mut(body).insts.extend([
            Inst::Bin {
                op: Opcode::Add,
                dst: sum,
                a: Val::Reg(sum),
                b: Val::Reg(i),
            },
            Inst::Bin {
                op: Opcode::Add,
                dst: i,
                a: Val::Reg(i),
                b: Val::Imm(1),
            },
        ]);
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit)
            .insts
            .push(Inst::Emit { val: Val::Reg(sum) });
        f.block_mut(exit).term = Terminator::Ret(None);

        let r = run_module(&module_with(f), "main", &[10]).unwrap();
        assert_eq!(r.output, vec![45]);
        // Profile: body ran 10 times, header 11.
        assert_eq!(r.profile.count(FuncId(0), BlockId(1)), 11);
        assert_eq!(r.profile.count(FuncId(0), BlockId(2)), 10);
    }

    #[test]
    fn globals_load_store() {
        let mut f = Function::new("main", 0, false);
        let v = f.new_vreg();
        f.blocks[0] = Block {
            insts: vec![
                Inst::Load {
                    dst: v,
                    addr: Addr {
                        base: AddrBase::Global(GlobalId(0)),
                        off: 1,
                    },
                },
                Inst::Bin {
                    op: Opcode::Add,
                    dst: v,
                    a: Val::Reg(v),
                    b: Val::Imm(100),
                },
                Inst::Store {
                    val: Val::Reg(v),
                    addr: Addr {
                        base: AddrBase::Global(GlobalId(0)),
                        off: 2,
                    },
                },
                Inst::Emit { val: Val::Reg(v) },
            ],
            term: Terminator::Ret(None),
        };
        let m = Module {
            funcs: vec![f],
            globals: vec![GlobalData {
                name: "tab".into(),
                words: 4,
                init: vec![5, 7],
            }],
            custom_ops: vec![],
        };
        let interp = Interp::new(&m, InterpOptions::default());
        let r = interp.run("main", &[]).unwrap();
        assert_eq!(r.output, vec![107]);
        assert_eq!(&r.memory[0..4], &[5, 7, 107, 0]);
    }

    #[test]
    fn local_arrays_are_per_frame() {
        // f(x): local a[2]; a[0] = x; return a[0] + 1
        let mut callee = Function::new("f", 1, true);
        callee.locals.push(LocalData {
            name: "a".into(),
            words: 2,
        });
        let t = callee.new_vreg();
        callee.blocks[0] = Block {
            insts: vec![
                Inst::Store {
                    val: Val::Reg(VReg(0)),
                    addr: Addr::local(LocalSlot(0)),
                },
                Inst::Load {
                    dst: t,
                    addr: Addr::local(LocalSlot(0)),
                },
                Inst::Bin {
                    op: Opcode::Add,
                    dst: t,
                    a: Val::Reg(t),
                    b: Val::Imm(1),
                },
            ],
            term: Terminator::Ret(Some(Val::Reg(t))),
        };
        let mut main = Function::new("main", 0, false);
        let r1 = main.new_vreg();
        let r2 = main.new_vreg();
        main.blocks[0] = Block {
            insts: vec![
                Inst::Call {
                    dst: Some(r1),
                    func: FuncId(1),
                    args: vec![Val::Imm(10)],
                },
                Inst::Call {
                    dst: Some(r2),
                    func: FuncId(1),
                    args: vec![Val::Imm(20)],
                },
                Inst::Emit { val: Val::Reg(r1) },
                Inst::Emit { val: Val::Reg(r2) },
            ],
            term: Terminator::Ret(None),
        };
        let m = Module {
            funcs: vec![main, callee],
            globals: vec![],
            custom_ops: vec![],
        };
        let r = run_module(&m, "main", &[]).unwrap();
        assert_eq!(r.output, vec![11, 21]);
    }

    #[test]
    fn divide_by_zero_traps() {
        let mut f = Function::new("main", 1, false);
        let v = f.new_vreg();
        f.blocks[0] = Block {
            insts: vec![Inst::Bin {
                op: Opcode::Div,
                dst: v,
                a: Val::Imm(1),
                b: Val::Reg(VReg(0)),
            }],
            term: Terminator::Ret(None),
        };
        let e = run_module(&module_with(f), "main", &[0]).unwrap_err();
        assert_eq!(e, InterpError::DivByZero);
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut f = Function::new("main", 0, false);
        let v = f.new_vreg();
        f.blocks[0] = Block {
            insts: vec![Inst::Load {
                dst: v,
                addr: Addr {
                    base: AddrBase::Reg(v),
                    off: -5,
                },
            }],
            term: Terminator::Ret(None),
        };
        let e = run_module(&module_with(f), "main", &[]).unwrap_err();
        assert!(matches!(e, InterpError::OutOfBounds(_)));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut f = Function::new("main", 0, false);
        f.blocks[0].term = Terminator::Jump(BlockId(0));
        let m = module_with(f);
        let e = Interp::new(
            &m,
            InterpOptions {
                max_steps: 1000,
                ..Default::default()
            },
        )
        .run("main", &[])
        .unwrap_err();
        assert_eq!(e, InterpError::StepLimit);
    }

    #[test]
    fn taken_probability_from_profile() {
        // Loop that runs 9 body iterations out of 10 header visits.
        let mut f = Function::new("main", 1, false);
        let i = f.new_vreg();
        let c = f.new_vreg();
        let body = f.new_block();
        let exit = f.new_block();
        let header = BlockId(0);
        f.blocks[0].insts.push(Inst::Bin {
            op: Opcode::CmpLt,
            dst: c,
            a: Val::Reg(i),
            b: Val::Reg(VReg(0)),
        });
        f.blocks[0].term = Terminator::Branch {
            c: Val::Reg(c),
            t: body,
            f: exit,
        };
        f.block_mut(body).insts.push(Inst::Bin {
            op: Opcode::Add,
            dst: i,
            a: Val::Reg(i),
            b: Val::Imm(1),
        });
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit).term = Terminator::Ret(None);
        // i starts as param v0? No: i is v1; v0 is n. i initial = 0 by default regs.
        let m = module_with(f);
        let r = run_module(&m, "main", &[9]).unwrap();
        let p = r
            .profile
            .taken_probability(&m.funcs[0], FuncId(0), header)
            .unwrap();
        assert!(p > 0.85 && p < 0.95, "p = {p}");
    }
}
