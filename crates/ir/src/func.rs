//! Functions, basic blocks and modules.

use crate::inst::{AddrBase, BlockId, FuncId, GlobalId, Inst, LocalSlot, Terminator, VReg};
use asip_isa::CustomOpDef;
use std::fmt;

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions in execution order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

impl Block {
    /// An empty block falling through to `next`.
    pub fn jump_to(next: BlockId) -> Block {
        Block {
            insts: Vec::new(),
            term: Terminator::Jump(next),
        }
    }
}

/// A stack-allocated local array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalData {
    /// Source name (diagnostics only).
    pub name: String,
    /// Size in words.
    pub words: u32,
}

/// A function: CFG of basic blocks over one virtual-register pool.
///
/// The first `num_params` virtual registers (`v0..`) hold the arguments on
/// entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Source name.
    pub name: String,
    /// Number of word-sized parameters.
    pub num_params: u32,
    /// Whether the function returns a value.
    pub returns_value: bool,
    /// Blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// Entry block (always `BlockId(0)` by construction).
    pub entry: BlockId,
    /// Stack-allocated arrays.
    pub locals: Vec<LocalData>,
    /// One past the highest virtual-register number in use.
    pub num_vregs: u32,
}

impl Function {
    /// Create an empty function with a single entry block that returns.
    pub fn new(name: &str, num_params: u32, returns_value: bool) -> Function {
        Function {
            name: name.to_string(),
            num_params,
            returns_value,
            blocks: vec![Block {
                insts: Vec::new(),
                term: Terminator::Ret(None),
            }],
            entry: BlockId(0),
            locals: Vec::new(),
            num_vregs: num_params,
        }
    }

    /// Allocate a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.num_vregs);
        self.num_vregs += 1;
        r
    }

    /// Append a new block, returning its id.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            insts: Vec::new(),
            term: Terminator::Ret(None),
        });
        id
    }

    /// Access a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Access a block mutably.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Total instruction count (terminators excluded).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Iterate over `(BlockId, &Block)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }
}

/// A module global: name, size, optional initializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalData {
    /// Source name.
    pub name: String,
    /// Size in words.
    pub words: u32,
    /// Initial contents (zero-filled beyond `init.len()`).
    pub init: Vec<i32>,
}

/// A whole program: functions, globals and the custom-operation library.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
    /// Globals, indexed by [`GlobalId`].
    pub globals: Vec<GlobalData>,
    /// Custom operations referenced by `Inst::Custom`.
    pub custom_ops: Vec<CustomOpDef>,
}

impl Module {
    /// Find a function id by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Find a global id by name.
    pub fn global_id(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Access a function by id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Total instruction count across all functions.
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.num_insts()).sum()
    }
}

/// Structural verification error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum VerifyError {
    /// A terminator references a block that does not exist.
    BadBlockRef {
        func: String,
        from: BlockId,
        to: BlockId,
    },
    /// An instruction uses a virtual register ≥ `num_vregs`.
    BadVReg {
        func: String,
        block: BlockId,
        vreg: VReg,
    },
    /// An instruction references a nonexistent global.
    BadGlobal { func: String, global: GlobalId },
    /// An instruction references a nonexistent local slot.
    BadLocal { func: String, local: LocalSlot },
    /// A call references a nonexistent function.
    BadCallee { func: String, callee: FuncId },
    /// A call passes the wrong number of arguments.
    BadArity {
        func: String,
        callee: String,
        expected: usize,
        got: usize,
    },
    /// A custom instruction references a nonexistent custom op or has the
    /// wrong operand counts.
    BadCustom { func: String, id: u16 },
    /// The function entry is not block 0 or there are no blocks.
    BadEntry { func: String },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadBlockRef { func, from, to } => {
                write!(f, "{func}: {from} jumps to nonexistent {to}")
            }
            VerifyError::BadVReg { func, block, vreg } => {
                write!(f, "{func}/{block}: register {vreg} out of range")
            }
            VerifyError::BadGlobal { func, global } => {
                write!(f, "{func}: nonexistent global g{}", global.0)
            }
            VerifyError::BadLocal { func, local } => {
                write!(f, "{func}: nonexistent local {}", local.0)
            }
            VerifyError::BadCallee { func, callee } => {
                write!(f, "{func}: call to nonexistent function f{}", callee.0)
            }
            VerifyError::BadArity {
                func,
                callee,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{func}: call to {callee} with {got} args, expected {expected}"
                )
            }
            VerifyError::BadCustom { func, id } => {
                write!(f, "{func}: bad custom op reference {id}")
            }
            VerifyError::BadEntry { func } => write!(f, "{func}: malformed entry block"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify structural invariants of a module.
///
/// # Errors
///
/// The first [`VerifyError`] found.
pub fn verify(module: &Module) -> Result<(), VerifyError> {
    for func in &module.funcs {
        if func.blocks.is_empty() || func.entry != BlockId(0) {
            return Err(VerifyError::BadEntry {
                func: func.name.clone(),
            });
        }
        for (bi, block) in func.iter_blocks() {
            for succ in block.term.successors() {
                if succ.0 as usize >= func.blocks.len() {
                    return Err(VerifyError::BadBlockRef {
                        func: func.name.clone(),
                        from: bi,
                        to: succ,
                    });
                }
            }
            let check_vreg = |v: VReg| -> Result<(), VerifyError> {
                if v.0 >= func.num_vregs {
                    Err(VerifyError::BadVReg {
                        func: func.name.clone(),
                        block: bi,
                        vreg: v,
                    })
                } else {
                    Ok(())
                }
            };
            for r in block.term.uses() {
                check_vreg(r)?;
            }
            for inst in &block.insts {
                for r in inst.uses().into_iter().chain(inst.defs()) {
                    check_vreg(r)?;
                }
                let check_addr = |base: AddrBase| -> Result<(), VerifyError> {
                    match base {
                        AddrBase::Global(g) if g.0 as usize >= module.globals.len() => {
                            Err(VerifyError::BadGlobal {
                                func: func.name.clone(),
                                global: g,
                            })
                        }
                        AddrBase::Local(l) if l.0 as usize >= func.locals.len() => {
                            Err(VerifyError::BadLocal {
                                func: func.name.clone(),
                                local: l,
                            })
                        }
                        _ => Ok(()),
                    }
                };
                match inst {
                    Inst::Lea { addr, .. } | Inst::Load { addr, .. } | Inst::Store { addr, .. } => {
                        check_addr(addr.base)?;
                    }
                    Inst::Call {
                        func: callee, args, ..
                    } => {
                        let Some(cf) = module.funcs.get(callee.0 as usize) else {
                            return Err(VerifyError::BadCallee {
                                func: func.name.clone(),
                                callee: *callee,
                            });
                        };
                        if cf.num_params as usize != args.len() {
                            return Err(VerifyError::BadArity {
                                func: func.name.clone(),
                                callee: cf.name.clone(),
                                expected: cf.num_params as usize,
                                got: args.len(),
                            });
                        }
                    }
                    Inst::Custom { id, dsts, args } => {
                        let Some(def) = module.custom_ops.get(*id as usize) else {
                            return Err(VerifyError::BadCustom {
                                func: func.name.clone(),
                                id: *id,
                            });
                        };
                        if args.len() != def.num_inputs as usize || dsts.len() != def.outputs.len()
                        {
                            return Err(VerifyError::BadCustom {
                                func: func.name.clone(),
                                id: *id,
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(())
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {}({} params) {{", self.name, self.num_params)?;
        for (id, b) in self.iter_blocks() {
            writeln!(f, "{id}:")?;
            for i in &b.insts {
                writeln!(f, "    {i}")?;
            }
            writeln!(f, "    {}", b.term)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            writeln!(f, "global {} [{} words]", g.name, g.words)?;
        }
        for func in &self.funcs {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Val;
    use asip_isa::Opcode;

    fn sample() -> Module {
        let mut f = Function::new("main", 0, false);
        let v = f.new_vreg();
        f.block_mut(BlockId(0)).insts.push(Inst::Bin {
            op: Opcode::Add,
            dst: v,
            a: Val::Imm(1),
            b: Val::Imm(2),
        });
        f.block_mut(BlockId(0))
            .insts
            .push(Inst::Emit { val: Val::Reg(v) });
        Module {
            funcs: vec![f],
            globals: vec![],
            custom_ops: vec![],
        }
    }

    #[test]
    fn verify_accepts_valid_module() {
        assert_eq!(verify(&sample()), Ok(()));
    }

    #[test]
    fn verify_rejects_bad_block_ref() {
        let mut m = sample();
        m.funcs[0].blocks[0].term = Terminator::Jump(BlockId(9));
        assert!(matches!(verify(&m), Err(VerifyError::BadBlockRef { .. })));
    }

    #[test]
    fn verify_rejects_out_of_range_vreg() {
        let mut m = sample();
        m.funcs[0].blocks[0].insts.push(Inst::Emit {
            val: Val::Reg(VReg(99)),
        });
        assert!(matches!(verify(&m), Err(VerifyError::BadVReg { .. })));
    }

    #[test]
    fn verify_rejects_bad_global() {
        let mut m = sample();
        let v = m.funcs[0].new_vreg();
        m.funcs[0].blocks[0].insts.push(Inst::Load {
            dst: v,
            addr: crate::inst::Addr::global(GlobalId(5)),
        });
        assert!(matches!(verify(&m), Err(VerifyError::BadGlobal { .. })));
    }

    #[test]
    fn verify_rejects_bad_call_arity() {
        let mut m = sample();
        let callee = Function::new("two_args", 2, true);
        m.funcs.push(callee);
        let v = m.funcs[0].new_vreg();
        m.funcs[0].blocks[0].insts.push(Inst::Call {
            dst: Some(v),
            func: FuncId(1),
            args: vec![Val::Imm(1)],
        });
        assert!(matches!(verify(&m), Err(VerifyError::BadArity { .. })));
    }

    #[test]
    fn display_contains_block_labels() {
        let m = sample();
        let s = m.to_string();
        assert!(s.contains("fn main"));
        assert!(s.contains("bb0:"));
        assert!(s.contains("emit"));
    }

    #[test]
    fn new_vreg_monotone() {
        let mut f = Function::new("x", 2, false);
        assert_eq!(f.new_vreg(), VReg(2));
        assert_eq!(f.new_vreg(), VReg(3));
        assert_eq!(f.num_vregs, 4);
    }
}
