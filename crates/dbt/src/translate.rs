//! Binary translation between members of a customized-VLIW family.
//!
//! This is the machinery behind the paper's §2.1–2.2 claim that run-time
//! techniques make "ISA drift" acceptable: a binary scheduled for family
//! member A is *rebundled* for member B — different issue width, slot
//! layout, latencies or encoding — without recompilation. Correctness comes
//! from preserving A's intra-bundle read-before-write semantics:
//!
//! * ops from one A bundle are topologically ordered so every reader of a
//!   register precedes its writer (they all read pre-bundle values);
//! * B bundles never mix ops from different A bundles, so cross-bundle
//!   dependences stay sequential;
//! * branch targets are remapped through the bundle correspondence table.
//!
//! The translator consumes the *encoded* instruction stream (the real
//! binary), not compiler data structures.

use asip_isa::encoding::{decode_text_section, encode_text_section, DecodeError};
use asip_isa::{Bundle, MachineDescription, MachineOp, Opcode, VliwProgram};
use std::collections::HashMap;
use std::fmt;

/// Translation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Operations in the source binary.
    pub ops_in: usize,
    /// Operations emitted (identical repertoire, so equal unless NOPs).
    pub ops_out: usize,
    /// Source bundles.
    pub bundles_in: usize,
    /// Emitted bundles.
    pub bundles_out: usize,
    /// Intra-bundle read/write pairs that constrained op order.
    pub hazards_ordered: usize,
}

/// Translation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbtError {
    /// Register files differ; rebundling cannot remap registers.
    IncompatibleRegisters {
        /// Source machine.
        from: String,
        /// Target machine.
        to: String,
    },
    /// An operation's unit kind has no slot on the target.
    UnplaceableOp {
        /// The op's mnemonic.
        opcode: String,
    },
    /// A parallel register swap (A↔B in one bundle) cannot be sequenced
    /// without a scratch register.
    SwapHazard {
        /// Bundle index in the source binary.
        bundle: usize,
    },
    /// The binary stream failed to decode.
    Decode(DecodeError),
}

impl fmt::Display for DbtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbtError::IncompatibleRegisters { from, to } => {
                write!(f, "cannot translate {from} -> {to}: register files differ")
            }
            DbtError::UnplaceableOp { opcode } => {
                write!(f, "target machine has no slot for {opcode}")
            }
            DbtError::SwapHazard { bundle } => {
                write!(
                    f,
                    "bundle {bundle}: parallel register swap needs a scratch register"
                )
            }
            DbtError::Decode(e) => write!(f, "binary decode failed: {e}"),
        }
    }
}

impl std::error::Error for DbtError {}

impl From<DecodeError> for DbtError {
    fn from(e: DecodeError) -> Self {
        DbtError::Decode(e)
    }
}

/// Order one source bundle's ops so that every reader of a register
/// precedes (or co-issues with) the op that writes it, preserving
/// read-before-write parallel semantics under serialized re-issue.
///
/// Returns the placement groups in topological order plus the hazard edge
/// count. Singleton groups may be packed greedily across target bundles;
/// multi-op groups are strongly connected components of the
/// read-before-write graph (parallel swaps/rotations) whose members must
/// co-issue in one target bundle. Ops merely *behind* a cycle stay
/// singletons ordered after it — only the cycle itself needs atomicity.
fn order_bundle_ops(ops: &[&MachineOp]) -> (Vec<Vec<usize>>, usize) {
    let n = ops.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n]; // x -> y : x before y
    let mut hazards = 0usize;
    for (y, wop) in ops.iter().enumerate() {
        for &w in &wop.dsts {
            if w.is_zero() {
                continue;
            }
            for (x, rop) in ops.iter().enumerate() {
                if x == y {
                    continue;
                }
                if rop.reads().any(|r| r == w) {
                    edges[x].push(y);
                    hazards += 1;
                }
            }
        }
    }

    // Iterative Tarjan SCC. Components come out in reverse topological
    // order of the condensation, so the result is reversed before return.
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new(); // (node, next edge position)

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        while let Some(&(v, ei)) = call.last() {
            if ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = edges[v].get(ei) {
                call.last_mut().expect("frame exists").1 += 1;
                if index[w] == UNVISITED {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs.reverse();
    (sccs, hazards)
}

/// Rebundle a decoded instruction stream for the target machine. Returns
/// the new bundles and a map `source bundle -> first target bundle`.
fn rebundle(
    bundles: &[Bundle],
    to: &MachineDescription,
    stats: &mut TranslationStats,
) -> Result<(Vec<Bundle>, Vec<u32>), DbtError> {
    let spc = to.slots_per_cluster();
    let width = to.issue_width();
    let mut out: Vec<Bundle> = Vec::with_capacity(bundles.len());
    let mut start_of = Vec::with_capacity(bundles.len());

    for (bi, b) in bundles.iter().enumerate() {
        start_of.push(out.len() as u32);
        let ops: Vec<&MachineOp> = b.ops().map(|(_, op)| op).collect();
        if ops.is_empty() {
            out.push(Bundle::empty(width));
            continue;
        }
        stats.ops_in += ops.len();
        let (groups, hazards) = order_bundle_ops(&ops);
        stats.hazards_ordered += hazards;

        // The op must land on a slot of its registers' cluster: the
        // translated program keeps every register on its original cluster.
        let cluster_of = |op: &MachineOp| -> usize {
            let c = op
                .dsts
                .first()
                .map(|d| d.cluster)
                .or_else(|| op.reads().next().map(|r| r.cluster))
                .unwrap_or(0) as usize;
            c.min(to.clusters as usize - 1)
        };
        // Try to add one op to a bundle; true on success.
        let try_place = |bundle: &mut Bundle, control_used: &mut bool, op: &MachineOp| -> bool {
            let is_control = op.opcode.is_control();
            if is_control && *control_used {
                return false;
            }
            let kind = op.opcode.fu_kind();
            let base = cluster_of(op) * spc;
            for s in 0..spc {
                if bundle.slots[base + s].is_none() && to.slots[s].hosts(kind) {
                    bundle.slots[base + s] = Some(op.clone());
                    *control_used |= is_control;
                    return true;
                }
            }
            false
        };

        // Greedy packing group by group, in topological order; never mix
        // source bundles. Singletons may split across target bundles;
        // multi-op groups are parallel swaps/rotations and must co-issue
        // in ONE bundle so every member still reads pre-bundle values.
        let mut current = Bundle::empty(width);
        let mut control_used = false;
        for group in &groups {
            let mut attempt = current.clone();
            let mut attempt_control = control_used;
            let fits = group
                .iter()
                .all(|&oi| try_place(&mut attempt, &mut attempt_control, ops[oi]));
            if fits {
                current = attempt;
                control_used = attempt_control;
            } else {
                // Close the bundle and retry the whole group in a fresh one.
                if current.occupancy() > 0 {
                    out.push(std::mem::replace(&mut current, Bundle::empty(width)));
                    control_used = false;
                }
                let fresh_fits = group
                    .iter()
                    .all(|&oi| try_place(&mut current, &mut control_used, ops[oi]));
                if !fresh_fits {
                    return Err(if group.len() > 1 {
                        // The swap group does not fit the narrower member.
                        DbtError::SwapHazard { bundle: bi }
                    } else {
                        DbtError::UnplaceableOp {
                            opcode: ops[group[0]].opcode.to_string(),
                        }
                    });
                }
            }
            stats.ops_out += group.len();
        }
        if current.occupancy() > 0 {
            out.push(current);
        }
    }
    Ok((out, start_of))
}

/// Translate a program binary from machine `from` to machine `to`.
///
/// The machines must share register-file geometry (clusters ×
/// registers-per-cluster); width, slot mix, latencies, branch penalty,
/// encoding and caches may all differ — those are exactly the §1.2 axes a
/// drifting family varies.
///
/// # Errors
///
/// [`DbtError`] as described on each variant.
pub fn translate_program(
    prog: &VliwProgram,
    from: &MachineDescription,
    to: &MachineDescription,
) -> Result<(VliwProgram, TranslationStats), DbtError> {
    if from.clusters != to.clusters || from.regs_per_cluster != to.regs_per_cluster {
        return Err(DbtError::IncompatibleRegisters {
            from: from.name.clone(),
            to: to.name.clone(),
        });
    }
    // Round-trip through the real binary encoding: the translator's input
    // is a word stream, as it would be in a deployed system.
    let words = encode_text_section(prog);
    let bundles = decode_text_section(&words)?;

    let mut stats = TranslationStats {
        bundles_in: bundles.len(),
        ..Default::default()
    };
    let (mut new_bundles, start_of) = rebundle(&bundles, to, &mut stats)?;

    // Remap branch targets (calls carry function ids — untouched; function
    // entries are remapped below).
    for b in &mut new_bundles {
        for slot in b.slots.iter_mut().flatten() {
            match slot.opcode {
                Opcode::Br | Opcode::BrT | Opcode::BrF => {
                    slot.target = start_of[slot.target as usize];
                }
                _ => {}
            }
        }
    }
    let functions = prog
        .functions
        .iter()
        .map(|f| asip_isa::FuncSym {
            entry: start_of[f.entry as usize],
            ..f.clone()
        })
        .collect();

    stats.bundles_out = new_bundles.len();
    let out = VliwProgram {
        machine: to.name.clone(),
        bundles: new_bundles,
        functions,
        globals: prog.globals.clone(),
        custom_ops: prog.custom_ops.clone(),
        entry_func: prog.entry_func,
        data_words: prog.data_words,
    };
    Ok((out, stats))
}

/// A translation cache: one translated image per (source-program, target)
/// pair, with hit/miss accounting — the "code caching" of §2.2.
#[derive(Debug, Default)]
pub struct CodeCache {
    entries: HashMap<(String, String), (VliwProgram, TranslationStats)>,
    hits: u64,
    misses: u64,
}

/// Cost model: translator cycles charged per translated operation (a
/// lightweight rebundler, two decades simpler than a JIT).
pub const TRANSLATION_CYCLES_PER_OP: u64 = 40;

impl CodeCache {
    /// New, empty cache.
    pub fn new() -> CodeCache {
        CodeCache::default()
    }

    /// Get or translate. The key is (program identity, target machine).
    ///
    /// # Errors
    ///
    /// [`DbtError`] from the underlying translation on a miss.
    pub fn get_or_translate(
        &mut self,
        key: &str,
        prog: &VliwProgram,
        from: &MachineDescription,
        to: &MachineDescription,
    ) -> Result<&(VliwProgram, TranslationStats), DbtError> {
        let k = (key.to_string(), to.name.clone());
        if !self.entries.contains_key(&k) {
            self.misses += 1;
            let t = translate_program(prog, from, to)?;
            self.entries.insert(k.clone(), t);
        } else {
            self.hits += 1;
        }
        Ok(self.entries.get(&k).expect("just inserted"))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Translation cycles charged for a given stats record.
    pub fn translation_cost_cycles(stats: &TranslationStats) -> u64 {
        stats.ops_in as u64 * TRANSLATION_CYCLES_PER_OP
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_backend::{compile_module, BackendOptions};
    use asip_isa::Reg;
    use asip_sim::run_program;

    fn compiled_for(src: &str, m: &MachineDescription) -> VliwProgram {
        let mut module = asip_tinyc::compile(src).unwrap();
        asip_ir::passes::optimize(&mut module, &asip_ir::passes::OptConfig::default());
        compile_module(&module, m, None, &BackendOptions::default())
            .unwrap()
            .program
    }

    const SRC: &str = r#"
        int tab[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
        void main(int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) s += tab[i % 16] * (i + 1);
            emit(s);
            emit(s % 97);
        }
    "#;

    #[test]
    fn wide_to_narrow_translation_is_correct() {
        let a = MachineDescription::ember4();
        let b = a.derive("ember-narrow", |m| {
            m.slots.truncate(2); // halve the issue width
        });
        let prog = compiled_for(SRC, &a);
        let native_a = run_program(&a, &prog, &[25]).unwrap();
        let (tprog, stats) = translate_program(&prog, &a, &b).unwrap();
        tprog
            .validate(&b)
            .expect("translated program validates on B");
        let on_b = run_program(&b, &tprog, &[25]).unwrap();
        assert_eq!(on_b.output, native_a.output);
        assert!(
            stats.bundles_out >= stats.bundles_in,
            "narrowing splits bundles"
        );
    }

    #[test]
    fn latency_drift_translation_is_correct() {
        let a = MachineDescription::ember4();
        let b = a.derive("ember-slowmul", |m| {
            m.lat_mul = 5;
            m.lat_mem = 4;
        });
        let prog = compiled_for(SRC, &a);
        let (tprog, _) = translate_program(&prog, &a, &b).unwrap();
        let on_b = run_program(&b, &tprog, &[25]).unwrap();
        let native = run_program(&a, &prog, &[25]).unwrap();
        assert_eq!(on_b.output, native.output);
    }

    #[test]
    fn identity_translation_preserves_everything() {
        let a = MachineDescription::ember2();
        let prog = compiled_for(SRC, &a);
        let (tprog, stats) = translate_program(&prog, &a, &a).unwrap();
        assert_eq!(stats.ops_in, stats.ops_out);
        let r1 = run_program(&a, &prog, &[10]).unwrap();
        let r2 = run_program(&a, &tprog, &[10]).unwrap();
        assert_eq!(r1.output, r2.output);
    }

    #[test]
    fn register_geometry_mismatch_rejected() {
        let a = MachineDescription::ember4();
        let b = a.derive("fewer-regs", |m| m.regs_per_cluster = 16);
        let prog = compiled_for(SRC, &a);
        assert!(matches!(
            translate_program(&prog, &a, &b),
            Err(DbtError::IncompatibleRegisters { .. })
        ));
    }

    #[test]
    fn parallel_swap_kept_atomic() {
        // Hand-craft a bundle with an r2 <-> r3 swap (both movs in
        // parallel). The translator must keep the pair in ONE bundle so
        // both still read pre-bundle values.
        let a = MachineDescription::ember4();
        let mut prog = compiled_for("void main() { emit(1); }", &a);
        use asip_isa::{MachineOp, Operand};
        let mut b = Bundle::empty(4);
        b.slots[0] = Some(MachineOp::new(
            Opcode::Mov,
            vec![Reg::new(0, 2)],
            vec![Operand::Reg(Reg::new(0, 3))],
        ));
        b.slots[1] = Some(MachineOp::new(
            Opcode::Mov,
            vec![Reg::new(0, 3)],
            vec![Operand::Reg(Reg::new(0, 2))],
        ));
        prog.bundles.insert(0, b);
        // Entries shift by one.
        for f in &mut prog.functions {
            f.entry += 1;
        }
        let narrow = a.derive("n2", |m| {
            m.slots.truncate(2);
        });
        let (tprog, _) = translate_program(&prog, &a, &narrow).expect("swap fits 2 slots");
        // Find the bundle holding the swap: both movs must be together.
        let swap_bundles: Vec<&Bundle> = tprog
            .bundles
            .iter()
            .filter(|b| {
                b.ops()
                    .any(|(_, op)| op.opcode == Opcode::Mov && op.dsts == vec![Reg::new(0, 2)])
            })
            .collect();
        assert!(!swap_bundles.is_empty());
        assert!(
            swap_bundles.iter().any(|b| b.occupancy() == 2),
            "swap movs must share a bundle"
        );
    }

    #[test]
    fn three_way_rotation_too_wide_for_target_rejected() {
        // A 3-op parallel rotation cannot fit a 2-slot member atomically.
        let a = MachineDescription::ember4();
        let mut prog = compiled_for("void main() { emit(1); }", &a);
        use asip_isa::{MachineOp, Operand};
        let mut b = Bundle::empty(4);
        for (i, (d, s)) in [(2u16, 3u16), (3, 4), (4, 2)].iter().enumerate() {
            b.slots[i] = Some(MachineOp::new(
                Opcode::Mov,
                vec![Reg::new(0, *d)],
                vec![Operand::Reg(Reg::new(0, *s))],
            ));
        }
        prog.bundles.insert(0, b);
        for f in &mut prog.functions {
            f.entry += 1;
        }
        let narrow = a.derive("n2", |m| {
            m.slots.truncate(2);
        });
        let r = translate_program(&prog, &a, &narrow);
        assert!(matches!(r, Err(DbtError::SwapHazard { bundle: 0 })));
    }

    #[test]
    fn op_behind_swap_cycle_stays_out_of_the_atomic_group() {
        // op0: add r2 = r3 + r5   — cycle with op1 via r2/r3
        // op1: mov r3 <- r2
        // op2: mov r5 <- r6       — reads nothing of the cycle, but op0
        //                           reads r5, so op2 must issue after (or
        //                           with) the cycle. Only {op0, op1} needs
        //                           atomicity; op2 can spill to the next
        //                           bundle, so a 2-wide member suffices.
        let a = MachineDescription::ember4();
        let mut prog = compiled_for("void main() { emit(1); }", &a);
        use asip_isa::{MachineOp, Operand};
        let mut b = Bundle::empty(4);
        b.slots[0] = Some(MachineOp::new(
            Opcode::Add,
            vec![Reg::new(0, 2)],
            vec![Operand::Reg(Reg::new(0, 3)), Operand::Reg(Reg::new(0, 5))],
        ));
        b.slots[1] = Some(MachineOp::new(
            Opcode::Mov,
            vec![Reg::new(0, 3)],
            vec![Operand::Reg(Reg::new(0, 2))],
        ));
        b.slots[2] = Some(MachineOp::new(
            Opcode::Mov,
            vec![Reg::new(0, 5)],
            vec![Operand::Reg(Reg::new(0, 6))],
        ));
        prog.bundles.insert(0, b);
        for f in &mut prog.functions {
            f.entry += 1;
        }
        let narrow = a.derive("n2", |m| {
            m.slots.truncate(2);
        });
        let (tprog, _) = translate_program(&prog, &a, &narrow)
            .expect("only the 2-op cycle needs co-issue; 2 slots suffice");
        // The cycle pair shares one bundle; the r5 writer comes later.
        let cycle_bundle = tprog
            .bundles
            .iter()
            .position(|b| {
                b.ops()
                    .any(|(_, op)| op.opcode == Opcode::Add && op.dsts == vec![Reg::new(0, 2)])
            })
            .expect("add placed");
        assert_eq!(tprog.bundles[cycle_bundle].occupancy(), 2);
        let writer_bundle = tprog
            .bundles
            .iter()
            .position(|b| b.ops().any(|(_, op)| op.dsts == vec![Reg::new(0, 5)]))
            .expect("r5 writer placed");
        assert!(
            writer_bundle > cycle_bundle,
            "r5 writer must issue after the cycle that reads pre-bundle r5"
        );
    }

    #[test]
    fn code_cache_amortizes() {
        let a = MachineDescription::ember4();
        let b = a.derive("drifted", |m| m.slots.truncate(3));
        let prog = compiled_for(SRC, &a);
        let mut cache = CodeCache::new();
        for _ in 0..5 {
            cache.get_or_translate("app", &prog, &a, &b).unwrap();
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
    }
}
