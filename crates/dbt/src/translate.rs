//! Binary translation between members of a customized-VLIW family.
//!
//! This is the machinery behind the paper's §2.1–2.2 claim that run-time
//! techniques make "ISA drift" acceptable: a binary scheduled for family
//! member A is *rebundled* for member B — different issue width, slot
//! layout, latencies or encoding — without recompilation. Correctness comes
//! from preserving A's intra-bundle read-before-write semantics:
//!
//! * ops from one A bundle are topologically ordered so every reader of a
//!   register precedes its writer (they all read pre-bundle values);
//! * B bundles never mix ops from different A bundles, so cross-bundle
//!   dependences stay sequential;
//! * branch targets are remapped through the bundle correspondence table.
//!
//! The translator consumes the *encoded* instruction stream (the real
//! binary), not compiler data structures.

use asip_isa::encoding::{decode_text_section, encode_text_section, DecodeError};
use asip_isa::{Bundle, MachineDescription, MachineOp, Opcode, VliwProgram};
use std::collections::HashMap;
use std::fmt;

/// Translation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Operations in the source binary.
    pub ops_in: usize,
    /// Operations emitted (identical repertoire, so equal unless NOPs).
    pub ops_out: usize,
    /// Source bundles.
    pub bundles_in: usize,
    /// Emitted bundles.
    pub bundles_out: usize,
    /// Intra-bundle read/write pairs that constrained op order.
    pub hazards_ordered: usize,
}

/// Translation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbtError {
    /// Register files differ; rebundling cannot remap registers.
    IncompatibleRegisters {
        /// Source machine.
        from: String,
        /// Target machine.
        to: String,
    },
    /// An operation's unit kind has no slot on the target.
    UnplaceableOp {
        /// The op's mnemonic.
        opcode: String,
    },
    /// A parallel register swap (A↔B in one bundle) cannot be sequenced
    /// without a scratch register.
    SwapHazard {
        /// Bundle index in the source binary.
        bundle: usize,
    },
    /// The binary stream failed to decode.
    Decode(DecodeError),
}

impl fmt::Display for DbtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbtError::IncompatibleRegisters { from, to } => {
                write!(f, "cannot translate {from} -> {to}: register files differ")
            }
            DbtError::UnplaceableOp { opcode } => {
                write!(f, "target machine has no slot for {opcode}")
            }
            DbtError::SwapHazard { bundle } => {
                write!(f, "bundle {bundle}: parallel register swap needs a scratch register")
            }
            DbtError::Decode(e) => write!(f, "binary decode failed: {e}"),
        }
    }
}

impl std::error::Error for DbtError {}

impl From<DecodeError> for DbtError {
    fn from(e: DecodeError) -> Self {
        DbtError::Decode(e)
    }
}

/// Topologically order one source bundle's ops so that every reader of a
/// register precedes the op that writes it (preserving read-before-write
/// parallel semantics under sequential-ish execution). Returns the acyclic
/// order, the count of ordering hazards, and the *cyclic residue* — ops
/// caught in a read/write cycle (a parallel register swap), which must be
/// kept together in one target bundle to preserve parallel semantics.
#[allow(clippy::type_complexity)]
fn order_bundle_ops(
    ops: &[&MachineOp],
    bundle_idx: usize,
) -> Result<(Vec<usize>, usize, Vec<usize>), DbtError> {
    let _ = bundle_idx;
    let n = ops.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n]; // x -> y : x before y
    let mut indeg = vec![0usize; n];
    let mut hazards = 0usize;
    for (y, wop) in ops.iter().enumerate() {
        for &w in &wop.dsts {
            if w.is_zero() {
                continue;
            }
            for (x, rop) in ops.iter().enumerate() {
                if x == y {
                    continue;
                }
                if rop.reads().any(|r| r == w) {
                    edges[x].push(y);
                    indeg[y] += 1;
                    hazards += 1;
                }
            }
        }
    }
    // Kahn's algorithm; a cycle is a genuine parallel swap.
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    ready.sort_unstable();
    let mut out = Vec::with_capacity(n);
    while let Some(i) = ready.pop() {
        out.push(i);
        for &j in &edges[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.push(j);
            }
        }
    }
    // Whatever Kahn's algorithm could not order is entangled in (or behind)
    // a read/write cycle; it is returned separately for atomic placement.
    let mut residue: Vec<usize> = (0..n).filter(|i| !out.contains(i)).collect();
    residue.sort_unstable();
    Ok((out, hazards, residue))
}

/// Rebundle a decoded instruction stream for the target machine. Returns
/// the new bundles and a map `source bundle -> first target bundle`.
fn rebundle(
    bundles: &[Bundle],
    to: &MachineDescription,
    stats: &mut TranslationStats,
) -> Result<(Vec<Bundle>, Vec<u32>), DbtError> {
    let spc = to.slots_per_cluster();
    let width = to.issue_width();
    let mut out: Vec<Bundle> = Vec::with_capacity(bundles.len());
    let mut start_of = Vec::with_capacity(bundles.len());

    for (bi, b) in bundles.iter().enumerate() {
        start_of.push(out.len() as u32);
        let ops: Vec<&MachineOp> = b.ops().map(|(_, op)| op).collect();
        if ops.is_empty() {
            out.push(Bundle::empty(width));
            continue;
        }
        stats.ops_in += ops.len();
        let (order, hazards, residue) = order_bundle_ops(&ops, bi)?;
        stats.hazards_ordered += hazards;

        // Greedy packing in the chosen order; never mix source bundles.
        let mut current = Bundle::empty(width);
        let mut control_used = false;
        for &oi in &order {
            let op = ops[oi];
            let kind = op.opcode.fu_kind();
            // Choose a free compatible slot; the translated program keeps
            // every register on its original cluster, so the op must land
            // on a slot of that cluster.
            let cluster = op
                .dsts
                .first()
                .map(|d| d.cluster)
                .or_else(|| op.reads().next().map(|r| r.cluster))
                .unwrap_or(0) as usize;
            let cluster = cluster.min(to.clusters as usize - 1);
            let mut placed = false;
            let is_control = op.opcode.is_control();
            if !(is_control && control_used) {
                for s in 0..spc {
                    let g = cluster * spc + s;
                    if current.slots[g].is_none() && to.slots[s].hosts(kind) {
                        current.slots[g] = Some(op.clone());
                        control_used |= is_control;
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                // Close the bundle and retry in a fresh one.
                if current.occupancy() > 0 {
                    out.push(std::mem::replace(&mut current, Bundle::empty(width)));
                    control_used = false;
                }
                let mut ok = false;
                for s in 0..spc {
                    let g = cluster * spc + s;
                    if to.slots[s].hosts(kind) {
                        current.slots[g] = Some(op.clone());
                        control_used = op.opcode.is_control();
                        ok = true;
                        break;
                    }
                }
                if !ok {
                    return Err(DbtError::UnplaceableOp { opcode: op.opcode.to_string() });
                }
            }
            stats.ops_out += 1;
        }
        if current.occupancy() > 0 {
            out.push(current);
        }
        // Cyclic residue (parallel register swaps): the whole group must
        // issue in ONE bundle so every op still reads pre-bundle values.
        if !residue.is_empty() {
            let mut atomic = Bundle::empty(width);
            let mut control_used = false;
            for &oi in &residue {
                let op = ops[oi];
                let kind = op.opcode.fu_kind();
                let cluster = op
                    .dsts
                    .first()
                    .map(|d| d.cluster)
                    .or_else(|| op.reads().next().map(|r| r.cluster))
                    .unwrap_or(0) as usize;
                let cluster = cluster.min(to.clusters as usize - 1);
                let is_control = op.opcode.is_control();
                if is_control && control_used {
                    return Err(DbtError::SwapHazard { bundle: bi });
                }
                let mut placed = false;
                for s in 0..spc {
                    let g = cluster * spc + s;
                    if atomic.slots[g].is_none() && to.slots[s].hosts(kind) {
                        atomic.slots[g] = Some(op.clone());
                        control_used |= is_control;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    // The swap group does not fit the narrower member.
                    return Err(DbtError::SwapHazard { bundle: bi });
                }
                stats.ops_out += 1;
            }
            out.push(atomic);
        }
    }
    Ok((out, start_of))
}

/// Translate a program binary from machine `from` to machine `to`.
///
/// The machines must share register-file geometry (clusters ×
/// registers-per-cluster); width, slot mix, latencies, branch penalty,
/// encoding and caches may all differ — those are exactly the §1.2 axes a
/// drifting family varies.
///
/// # Errors
///
/// [`DbtError`] as described on each variant.
pub fn translate_program(
    prog: &VliwProgram,
    from: &MachineDescription,
    to: &MachineDescription,
) -> Result<(VliwProgram, TranslationStats), DbtError> {
    if from.clusters != to.clusters || from.regs_per_cluster != to.regs_per_cluster {
        return Err(DbtError::IncompatibleRegisters {
            from: from.name.clone(),
            to: to.name.clone(),
        });
    }
    // Round-trip through the real binary encoding: the translator's input
    // is a word stream, as it would be in a deployed system.
    let words = encode_text_section(prog);
    let bundles = decode_text_section(&words)?;

    let mut stats = TranslationStats {
        bundles_in: bundles.len(),
        ..Default::default()
    };
    let (mut new_bundles, start_of) = rebundle(&bundles, to, &mut stats)?;

    // Remap branch targets (calls carry function ids — untouched; function
    // entries are remapped below).
    for b in &mut new_bundles {
        for slot in b.slots.iter_mut().flatten() {
            match slot.opcode {
                Opcode::Br | Opcode::BrT | Opcode::BrF => {
                    slot.target = start_of[slot.target as usize];
                }
                _ => {}
            }
        }
    }
    let functions = prog
        .functions
        .iter()
        .map(|f| asip_isa::FuncSym { entry: start_of[f.entry as usize], ..f.clone() })
        .collect();

    stats.bundles_out = new_bundles.len();
    let out = VliwProgram {
        machine: to.name.clone(),
        bundles: new_bundles,
        functions,
        globals: prog.globals.clone(),
        custom_ops: prog.custom_ops.clone(),
        entry_func: prog.entry_func,
        data_words: prog.data_words,
    };
    Ok((out, stats))
}

/// A translation cache: one translated image per (source-program, target)
/// pair, with hit/miss accounting — the "code caching" of §2.2.
#[derive(Debug, Default)]
pub struct CodeCache {
    entries: HashMap<(String, String), (VliwProgram, TranslationStats)>,
    hits: u64,
    misses: u64,
}

/// Cost model: translator cycles charged per translated operation (a
/// lightweight rebundler, two decades simpler than a JIT).
pub const TRANSLATION_CYCLES_PER_OP: u64 = 40;

impl CodeCache {
    /// New, empty cache.
    pub fn new() -> CodeCache {
        CodeCache::default()
    }

    /// Get or translate. The key is (program identity, target machine).
    ///
    /// # Errors
    ///
    /// [`DbtError`] from the underlying translation on a miss.
    pub fn get_or_translate(
        &mut self,
        key: &str,
        prog: &VliwProgram,
        from: &MachineDescription,
        to: &MachineDescription,
    ) -> Result<&(VliwProgram, TranslationStats), DbtError> {
        let k = (key.to_string(), to.name.clone());
        if !self.entries.contains_key(&k) {
            self.misses += 1;
            let t = translate_program(prog, from, to)?;
            self.entries.insert(k.clone(), t);
        } else {
            self.hits += 1;
        }
        Ok(self.entries.get(&k).expect("just inserted"))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Translation cycles charged for a given stats record.
    pub fn translation_cost_cycles(stats: &TranslationStats) -> u64 {
        stats.ops_in as u64 * TRANSLATION_CYCLES_PER_OP
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asip_backend::{compile_module, BackendOptions};
    use asip_isa::Reg;
    use asip_sim::run_program;

    fn compiled_for(src: &str, m: &MachineDescription) -> VliwProgram {
        let mut module = asip_tinyc::compile(src).unwrap();
        asip_ir::passes::optimize(&mut module, &asip_ir::passes::OptConfig::default());
        compile_module(&module, m, None, &BackendOptions::default()).unwrap().program
    }

    const SRC: &str = r#"
        int tab[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
        void main(int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) s += tab[i % 16] * (i + 1);
            emit(s);
            emit(s % 97);
        }
    "#;

    #[test]
    fn wide_to_narrow_translation_is_correct() {
        let a = MachineDescription::ember4();
        let b = a.derive("ember-narrow", |m| {
            m.slots.truncate(2); // halve the issue width
        });
        let prog = compiled_for(SRC, &a);
        let native_a = run_program(&a, &prog, &[25]).unwrap();
        let (tprog, stats) = translate_program(&prog, &a, &b).unwrap();
        tprog.validate(&b).expect("translated program validates on B");
        let on_b = run_program(&b, &tprog, &[25]).unwrap();
        assert_eq!(on_b.output, native_a.output);
        assert!(stats.bundles_out >= stats.bundles_in, "narrowing splits bundles");
    }

    #[test]
    fn latency_drift_translation_is_correct() {
        let a = MachineDescription::ember4();
        let b = a.derive("ember-slowmul", |m| {
            m.lat_mul = 5;
            m.lat_mem = 4;
        });
        let prog = compiled_for(SRC, &a);
        let (tprog, _) = translate_program(&prog, &a, &b).unwrap();
        let on_b = run_program(&b, &tprog, &[25]).unwrap();
        let native = run_program(&a, &prog, &[25]).unwrap();
        assert_eq!(on_b.output, native.output);
    }

    #[test]
    fn identity_translation_preserves_everything() {
        let a = MachineDescription::ember2();
        let prog = compiled_for(SRC, &a);
        let (tprog, stats) = translate_program(&prog, &a, &a).unwrap();
        assert_eq!(stats.ops_in, stats.ops_out);
        let r1 = run_program(&a, &prog, &[10]).unwrap();
        let r2 = run_program(&a, &tprog, &[10]).unwrap();
        assert_eq!(r1.output, r2.output);
    }

    #[test]
    fn register_geometry_mismatch_rejected() {
        let a = MachineDescription::ember4();
        let b = a.derive("fewer-regs", |m| m.regs_per_cluster = 16);
        let prog = compiled_for(SRC, &a);
        assert!(matches!(
            translate_program(&prog, &a, &b),
            Err(DbtError::IncompatibleRegisters { .. })
        ));
    }

    #[test]
    fn parallel_swap_kept_atomic() {
        // Hand-craft a bundle with an r2 <-> r3 swap (both movs in
        // parallel). The translator must keep the pair in ONE bundle so
        // both still read pre-bundle values.
        let a = MachineDescription::ember4();
        let mut prog = compiled_for("void main() { emit(1); }", &a);
        use asip_isa::{MachineOp, Operand};
        let mut b = Bundle::empty(4);
        b.slots[0] = Some(MachineOp::new(
            Opcode::Mov,
            vec![Reg::new(0, 2)],
            vec![Operand::Reg(Reg::new(0, 3))],
        ));
        b.slots[1] = Some(MachineOp::new(
            Opcode::Mov,
            vec![Reg::new(0, 3)],
            vec![Operand::Reg(Reg::new(0, 2))],
        ));
        prog.bundles.insert(0, b);
        // Entries shift by one.
        for f in &mut prog.functions {
            f.entry += 1;
        }
        let narrow = a.derive("n2", |m| {
            m.slots.truncate(2);
        });
        let (tprog, _) = translate_program(&prog, &a, &narrow).expect("swap fits 2 slots");
        // Find the bundle holding the swap: both movs must be together.
        let swap_bundles: Vec<&Bundle> = tprog
            .bundles
            .iter()
            .filter(|b| {
                b.ops().any(|(_, op)| {
                    op.opcode == Opcode::Mov && op.dsts == vec![Reg::new(0, 2)]
                })
            })
            .collect();
        assert!(!swap_bundles.is_empty());
        assert!(
            swap_bundles.iter().any(|b| b.occupancy() == 2),
            "swap movs must share a bundle"
        );
    }

    #[test]
    fn three_way_rotation_too_wide_for_target_rejected() {
        // A 3-op parallel rotation cannot fit a 2-slot member atomically.
        let a = MachineDescription::ember4();
        let mut prog = compiled_for("void main() { emit(1); }", &a);
        use asip_isa::{MachineOp, Operand};
        let mut b = Bundle::empty(4);
        for (i, (d, s)) in [(2u16, 3u16), (3, 4), (4, 2)].iter().enumerate() {
            b.slots[i] = Some(MachineOp::new(
                Opcode::Mov,
                vec![Reg::new(0, *d)],
                vec![Operand::Reg(Reg::new(0, *s))],
            ));
        }
        prog.bundles.insert(0, b);
        for f in &mut prog.functions {
            f.entry += 1;
        }
        let narrow = a.derive("n2", |m| {
            m.slots.truncate(2);
        });
        let r = translate_program(&prog, &a, &narrow);
        assert!(matches!(r, Err(DbtError::SwapHazard { bundle: 0 })));
    }

    #[test]
    fn code_cache_amortizes() {
        let a = MachineDescription::ember4();
        let b = a.derive("drifted", |m| m.slots.truncate(3));
        let prog = compiled_for(SRC, &a);
        let mut cache = CodeCache::new();
        for _ in 0..5 {
            cache.get_or_translate("app", &prog, &a, &b).unwrap();
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
    }
}
