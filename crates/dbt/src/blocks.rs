//! Basic-block discovery and loop detection over a linear instruction
//! stream — the control-flow analysis behind block-compiled execution.
//!
//! The rebundling translator ([`crate::translate`]) already carried the
//! intra-bundle half of this machinery (Tarjan SCC over read/write hazard
//! edges); this module promotes the *inter*-instruction half into a
//! reusable analysis: partition a program's pcs into maximal straight-line
//! **basic blocks**, and run an iterative Tarjan SCC over the block graph
//! to mark which blocks sit on cycles (loop bodies — the blocks a
//! block-compiling simulator translates once and executes many times).
//!
//! The input is deliberately minimal: one [`Ctrl`] summary per pc plus the
//! set of entry points. Both the VLIW engine (one `Ctrl` per bundle) and
//! the scalar engine (one per instruction) lower to it, so the analysis is
//! shared rather than duplicated per target kind.
//!
//! Tarjan is **iterative** (explicit stack), like the hazard-ordering SCC
//! in [`crate::translate`]: programs are deep chains of fall-through
//! blocks, and a recursive lowlink walk would overflow the stack on large
//! inputs.
//!
//! # Example
//!
//! ```
//! use asip_dbt::blocks::{discover, Ctrl};
//!
//! // 0: i = 0            (entry)
//! // 1: loop: body…
//! // 2: i < n ?  -> 1    (conditional back edge)
//! // 3: halt
//! let ctrl = [
//!     Ctrl::FallThrough,
//!     Ctrl::FallThrough,
//!     Ctrl::CondJump(1),
//!     Ctrl::Halt,
//! ];
//! let map = discover(&ctrl, &[0]);
//! // Three blocks: [0,1) prologue, [1,3) loop body, [3,4) epilogue.
//! assert_eq!(map.blocks.len(), 3);
//! assert_eq!(map.block_at(1).range, (1, 3));
//! assert!(map.block_at(1).in_loop, "back edge puts the body on a cycle");
//! assert!(!map.block_at(0).in_loop);
//! ```

/// Control-flow summary of one pc (bundle or instruction): how execution
/// can leave it, with all targets already resolved to pc indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ctrl {
    /// Execution always continues at `pc + 1`.
    FallThrough,
    /// Unconditional jump to `.0`.
    Jump(u32),
    /// Conditional jump: either `.0` or fall-through to `pc + 1`.
    CondJump(u32),
    /// Call to the resolved entry `.0`; the return lands at `pc + 1`.
    Call(u32),
    /// Return through the link register (dynamic target).
    Ret,
    /// The machine stops here.
    Halt,
}

impl Ctrl {
    /// Whether this pc ends a basic block (any non-fall-through control).
    pub fn ends_block(self) -> bool {
        !matches!(self, Ctrl::FallThrough)
    }
}

/// One maximal straight-line block: pcs `range.0 .. range.1`, only the
/// first of which can be a control-transfer target, and only the last of
/// which can transfer control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Half-open pc range `[start, end)`.
    pub range: (u32, u32),
    /// Whether the block lies on a cycle of the block graph (a loop body —
    /// including one-block self loops and every block of an irreducible
    /// region). Computed by Tarjan SCC: a block is `in_loop` iff its
    /// strongly connected component is nontrivial, or it carries a self
    /// edge.
    pub in_loop: bool,
}

impl BasicBlock {
    /// First pc of the block.
    pub fn start(&self) -> u32 {
        self.range.0
    }

    /// One past the last pc of the block.
    pub fn end(&self) -> u32 {
        self.range.1
    }

    /// Number of pcs in the block.
    pub fn len(&self) -> u32 {
        self.range.1 - self.range.0
    }

    /// Whether the block is empty (never produced by [`discover`]).
    pub fn is_empty(&self) -> bool {
        self.range.1 == self.range.0
    }
}

/// The block partition of a program: every pc belongs to exactly one
/// block, and `block_of[pc]` finds it in O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMap {
    /// Blocks in ascending pc order; contiguous (block `i` ends where
    /// block `i + 1` starts) and covering every pc.
    pub blocks: Vec<BasicBlock>,
    /// Map from pc to the index (into [`BlockMap::blocks`]) of the block
    /// containing it.
    pub block_of: Vec<u32>,
}

impl BlockMap {
    /// The block containing `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn block_at(&self, pc: u32) -> &BasicBlock {
        &self.blocks[self.block_of[pc as usize] as usize]
    }

    /// Number of blocks marked as loop bodies.
    pub fn loop_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.in_loop).count()
    }
}

/// Partition `ctrl` (one summary per pc) into basic blocks and mark loop
/// bodies.
///
/// **Leaders** — pcs that start a block — are: every entry point, every
/// static jump/call target, and every pc following a block-ending pc
/// (branch fall-through paths and call return sites). Dynamic `Ret`
/// targets need no special casing: a return lands just after a `Call`,
/// which is a leader by the fall-through rule. (Consumers that allow
/// *computed* link registers must still handle a transfer into the middle
/// of a block — see the block engine's mid-block slow path.)
///
/// The successor graph for loop detection has an edge per possible static
/// transfer: fall-through, jump/conditional targets, and call entries
/// (recursive call cycles mark their blocks `in_loop`, which is exactly
/// the translate-once-execute-many signal the consumer wants). `Ret` and
/// `Halt` have no static successors.
///
/// Returns an empty map for an empty program.
///
/// # Panics
///
/// Panics if any target or entry pc is out of range.
pub fn discover(ctrl: &[Ctrl], entries: &[u32]) -> BlockMap {
    let n = ctrl.len();
    if n == 0 {
        return BlockMap {
            blocks: Vec::new(),
            block_of: Vec::new(),
        };
    }
    // 1. Leaders.
    let mut leader = vec![false; n];
    leader[0] = true; // pc 0 starts *some* block even if unreachable
    for &e in entries {
        leader[e as usize] = true;
    }
    for (pc, c) in ctrl.iter().enumerate() {
        match *c {
            Ctrl::Jump(t) | Ctrl::CondJump(t) | Ctrl::Call(t) => leader[t as usize] = true,
            Ctrl::FallThrough | Ctrl::Ret | Ctrl::Halt => {}
        }
        if c.ends_block() && pc + 1 < n {
            leader[pc + 1] = true;
        }
    }

    // 2. Blocks and the pc → block map.
    let mut blocks: Vec<BasicBlock> = Vec::new();
    let mut block_of = vec![0u32; n];
    let mut start = 0usize;
    for pc in 0..n {
        if pc > start && leader[pc] {
            blocks.push(BasicBlock {
                range: (start as u32, pc as u32),
                in_loop: false,
            });
            start = pc;
        }
        block_of[pc] = blocks.len() as u32;
        if ctrl[pc].ends_block() {
            blocks.push(BasicBlock {
                range: (start as u32, pc as u32 + 1),
                in_loop: false,
            });
            start = pc + 1;
        }
    }
    if start < n {
        blocks.push(BasicBlock {
            range: (start as u32, n as u32),
            in_loop: false,
        });
    }

    // 3. Successor edges between blocks.
    let nb = blocks.len();
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); nb];
    for (bi, b) in blocks.iter().enumerate() {
        let last = (b.range.1 - 1) as usize;
        let mut push = |t: u32| {
            let s = block_of[t as usize];
            if !succs[bi].contains(&s) {
                succs[bi].push(s);
            }
        };
        match ctrl[last] {
            Ctrl::FallThrough => {
                if (last + 1) < n {
                    push(last as u32 + 1);
                }
            }
            Ctrl::Jump(t) => push(t),
            Ctrl::CondJump(t) => {
                push(t);
                if (last + 1) < n {
                    push(last as u32 + 1);
                }
            }
            Ctrl::Call(t) => push(t),
            Ctrl::Ret | Ctrl::Halt => {}
        }
    }

    // 4. Iterative Tarjan SCC over the block graph; nontrivial components
    //    (or self edges) are loop bodies. Same explicit-stack shape as the
    //    hazard-ordering SCC in `translate::order_bundle_ops`.
    let mut index = vec![usize::MAX; nb];
    let mut lowlink = vec![0usize; nb];
    let mut on_stack = vec![false; nb];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut in_loop = vec![false; nb];
    // Work frames: (node, next-successor cursor).
    let mut work: Vec<(usize, usize)> = Vec::new();
    for root in 0..nb {
        if index[root] != usize::MAX {
            continue;
        }
        work.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succs[v].get(*cursor) {
                *cursor += 1;
                let w = w as usize;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    // Root of an SCC: pop the component.
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let cyclic = comp.len() > 1 || succs[comp[0]].contains(&(comp[0] as u32));
                    if cyclic {
                        for &w in &comp {
                            in_loop[w] = true;
                        }
                    }
                }
            }
        }
    }
    for (b, flag) in blocks.iter_mut().zip(in_loop) {
        b.in_loop = flag;
    }

    BlockMap { blocks, block_of }
}

/// Grow a superblock trace from `head`: follow each block's dominant
/// successor (supplied by `next` — typically a runtime edge profile) for as
/// long as the path stays inside the loop region and enters blocks at their
/// leaders, bounded by `max_blocks` chain segments and `max_pcs` total pcs.
///
/// Returns the chain as block indices into `map.blocks`, always starting
/// with `head`. The chain may revisit blocks — a self-loop or short cycle
/// unrolls up to the caps, which is exactly what a trace-dispatching
/// consumer wants (each revisit it chains through is a dispatch saved).
/// Callers decide viability (a single-segment chain is not a trace) and
/// encode their own stop conditions by returning `None` from `next`
/// (low edge confidence, a block their translator refused, …).
///
/// The walk stops at:
/// * `next` returning `None` (the caller's profile ran out of confidence);
/// * a successor entering a block *mid-range* (`pc` not the block's start —
///   a computed target the block partition cannot chain through);
/// * a successor leaving the loop region (`in_loop == false`);
/// * either cap.
pub fn grow_trace(
    map: &BlockMap,
    head: usize,
    max_blocks: usize,
    max_pcs: u32,
    mut next: impl FnMut(usize) -> Option<u32>,
) -> Vec<u32> {
    let mut chain = vec![head as u32];
    let mut pcs = map.blocks[head].len();
    loop {
        if chain.len() >= max_blocks {
            break;
        }
        let cur = *chain.last().unwrap() as usize;
        let Some(pc) = next(cur) else { break };
        let nb = map.block_of[pc as usize] as usize;
        let blk = &map.blocks[nb];
        if pc != blk.start() || !blk.in_loop {
            break;
        }
        if pcs + blk.len() > max_pcs {
            break;
        }
        pcs += blk.len();
        chain.push(nb as u32);
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_is_one_block() {
        let ctrl = [Ctrl::FallThrough, Ctrl::FallThrough, Ctrl::Halt];
        let map = discover(&ctrl, &[0]);
        assert_eq!(map.blocks.len(), 1);
        assert_eq!(map.blocks[0].range, (0, 3));
        assert!(!map.blocks[0].in_loop);
        assert_eq!(map.block_of, vec![0, 0, 0]);
    }

    #[test]
    fn branch_targets_and_fallthroughs_are_leaders() {
        // 0: cond -> 3 | 1
        // 1: fallthrough
        // 2: jump -> 4
        // 3: fallthrough      (target leader)
        // 4: halt             (jump target + fall-through leader)
        let ctrl = [
            Ctrl::CondJump(3),
            Ctrl::FallThrough,
            Ctrl::Jump(4),
            Ctrl::FallThrough,
            Ctrl::Halt,
        ];
        let map = discover(&ctrl, &[0]);
        let ranges: Vec<_> = map.blocks.iter().map(|b| b.range).collect();
        assert_eq!(ranges, vec![(0, 1), (1, 3), (3, 4), (4, 5)]);
        assert!(map.blocks.iter().all(|b| !b.in_loop), "acyclic graph");
    }

    #[test]
    fn call_split_and_return_site() {
        // 0: call -> 3
        // 1: halt            (return site — leader by fall-through rule)
        // 2: (unreachable pad)
        // 3: callee body
        // 4: ret
        let ctrl = [
            Ctrl::Call(3),
            Ctrl::Halt,
            Ctrl::FallThrough,
            Ctrl::FallThrough,
            Ctrl::Ret,
        ];
        let map = discover(&ctrl, &[0, 3]);
        assert_eq!(map.block_at(1).range.0, 1, "return site starts a block");
        assert_eq!(map.block_at(3).range, (3, 5));
        assert!(!map.block_at(3).in_loop, "non-recursive call is no loop");
    }

    #[test]
    fn self_loop_and_simple_loop_marked() {
        // 0: jump -> 0   (self loop)
        let map = discover(&[Ctrl::Jump(0)], &[0]);
        assert!(map.blocks[0].in_loop, "self edge is a cycle");

        // 0: prologue; 1..3 body; 2: cond -> 1; 3: halt
        let ctrl = [
            Ctrl::FallThrough,
            Ctrl::FallThrough,
            Ctrl::CondJump(1),
            Ctrl::Halt,
        ];
        let map = discover(&ctrl, &[0]);
        assert_eq!(map.loop_blocks(), 1);
        assert!(map.block_at(1).in_loop);
        assert!(!map.block_at(0).in_loop);
        assert!(!map.block_at(3).in_loop);
    }

    /// The satellite pin: Tarjan SCC partitioning on an **irreducible**
    /// CFG — a loop with two distinct entry edges, which no natural-loop
    /// (back-edge dominator) analysis would classify, but an SCC treats
    /// uniformly: every block on the cycle is a loop body, blocks off the
    /// cycle are not.
    #[test]
    fn irreducible_two_entry_loop_partitions_by_scc() {
        // 0: cond -> 4 | 1      (dispatch: enter the region at A or B)
        // 1: fallthrough        } A
        // 2: cond -> 4 | 3      } A: edge into B (mid-region)
        // 3: halt               (exit)
        // 4: fallthrough        } B
        // 5: cond -> 1 | 6      } B: edge back into A — irreducible:
        //                         both A and B have outside entry edges
        // 6: halt
        let ctrl = [
            Ctrl::CondJump(4),
            Ctrl::FallThrough,
            Ctrl::CondJump(4),
            Ctrl::Halt,
            Ctrl::FallThrough,
            Ctrl::CondJump(1),
            Ctrl::Halt,
        ];
        let map = discover(&ctrl, &[0]);
        let ranges: Vec<_> = map.blocks.iter().map(|b| b.range).collect();
        assert_eq!(
            ranges,
            vec![(0, 1), (1, 3), (3, 4), (4, 6), (6, 7)],
            "block partition"
        );
        // A (pcs 1-2) and B (pcs 4-5) form one SCC through the 2→4 and
        // 5→1 edges; dispatch and the two exits do not.
        assert!(map.block_at(1).in_loop, "region A is on the cycle");
        assert!(map.block_at(4).in_loop, "region B is on the cycle");
        assert!(!map.block_at(0).in_loop, "dispatch block");
        assert!(!map.block_at(3).in_loop, "exit block");
        assert!(!map.block_at(6).in_loop, "exit block");
        assert_eq!(map.loop_blocks(), 2);
    }

    #[test]
    fn recursive_call_cycle_is_a_loop() {
        // 0: entry calls 2; 1: halt; 2: body cond-call itself via 2: call->2?
        // Use: 2: cond -> 4|3? Simpler: 2: call -> 2 is direct recursion.
        let ctrl = [Ctrl::Call(2), Ctrl::Halt, Ctrl::Call(2), Ctrl::Ret];
        let map = discover(&ctrl, &[0, 2]);
        assert!(map.block_at(2).in_loop, "self-recursive callee");
        assert!(!map.block_at(0).in_loop);
    }

    #[test]
    fn empty_program_yields_empty_map() {
        let map = discover(&[], &[]);
        assert!(map.blocks.is_empty());
        assert!(map.block_of.is_empty());
    }

    /// Two-block loop: the dominant path closes the cycle, and the walker
    /// unrolls it around the cycle up to the block cap.
    #[test]
    fn grow_trace_unrolls_a_two_block_loop() {
        // 0: prologue; 1-2: A (cond -> 4 side exit); 3: B jump -> 1; 4: halt
        let ctrl = [
            Ctrl::FallThrough,
            Ctrl::FallThrough,
            Ctrl::CondJump(4),
            Ctrl::Jump(1),
            Ctrl::Halt,
        ];
        let map = discover(&ctrl, &[0]);
        let a = map.block_of[1] as usize;
        let b = map.block_of[3] as usize;
        assert!(map.blocks[a].in_loop && map.blocks[b].in_loop);
        // Dominant edges: A falls through to B, B jumps back to A.
        let chain = grow_trace(&map, a, 6, 64, |cur| {
            if cur == a {
                Some(map.blocks[b].start())
            } else {
                Some(map.blocks[a].start())
            }
        });
        assert_eq!(
            chain,
            vec![a as u32, b as u32, a as u32, b as u32, a as u32, b as u32]
        );
    }

    #[test]
    fn grow_trace_respects_caps_and_stop_conditions() {
        let ctrl = [
            Ctrl::FallThrough,
            Ctrl::FallThrough,
            Ctrl::CondJump(1),
            Ctrl::Halt,
        ];
        let map = discover(&ctrl, &[0]);
        let body = map.block_of[1] as usize;
        assert!(map.blocks[body].in_loop);
        // The pc cap truncates an otherwise-infinite self-chain: the body
        // is 2 pcs, so 7 pcs admits 3 segments (head + 2 revisits).
        let chain = grow_trace(&map, body, 64, 7, |_| Some(1));
        assert_eq!(chain.len(), 3);
        assert!(chain.iter().all(|&b| b == body as u32));
        // A mid-block successor pc stops the walk immediately.
        let chain = grow_trace(&map, body, 8, 64, |_| Some(2));
        assert_eq!(chain, vec![body as u32]);
        // A successor outside the loop region stops the walk.
        let chain = grow_trace(&map, body, 8, 64, |_| Some(3));
        assert_eq!(chain, vec![body as u32]);
        // The caller's profile running dry stops the walk.
        let chain = grow_trace(&map, body, 8, 64, |_| None);
        assert_eq!(chain, vec![body as u32]);
    }
}
