//! # asip-dbt — binary translation across a drifting ISA family
//!
//! Barrier 1 of the paper is the existing-binaries problem; its §2.2 answer
//! is run-time translation that makes family members that are "what we would
//! today call mutually incompatible" behave compatibly. This crate
//! implements that substrate for the VLIW family: a **rebundling
//! translator** that takes the encoded instruction stream compiled for
//! member A and emits a correct program for member B (different width, slot
//! mix, latencies, encoding), plus a **code cache** that amortizes
//! translation cost across runs — enough to measure the drift experiment's
//! overheads honestly.

#![warn(missing_docs)]

pub mod blocks;
pub mod translate;

pub use blocks::{discover, BasicBlock, BlockMap, Ctrl};
pub use translate::{
    translate_program, CodeCache, DbtError, TranslationStats, TRANSLATION_CYCLES_PER_OP,
};
