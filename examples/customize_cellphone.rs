//! Customize a processor for the *cellphone* application area (paper §6.1:
//! "tailor to an application area, not an application"): run the Custom-Fit
//! exploration over the family, add ISE custom operations, and print the
//! recommended machine with its selected special ops.
//!
//! Run with: `cargo run --release --example customize_cellphone`

use asip::core::dse::{explore, SearchSpace};
use asip::core::ise::{extend, IseConfig};
use asip::core::Session;
use asip::isa::desc::print_machine;
use asip::workloads::{by_area, AppArea};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder().build();
    let tc = session.toolchain();
    let suite = by_area(AppArea::Cellphone);
    println!(
        "cellphone area: {:?}",
        suite.iter().map(|w| w.name.as_str()).collect::<Vec<_>>()
    );

    // 1. Explore the family grid on a trimmed suite (keep the demo quick).
    let tuning: Vec<_> = suite.iter().take(3).cloned().collect();
    let space = SearchSpace::default();
    let ex = explore(&session, &space, &tuning);
    println!(
        "\nevaluated {} design points ({} skipped)",
        ex.points.len(),
        ex.skipped.len()
    );
    println!("\narea/performance Pareto frontier:");
    for p in ex.pareto() {
        println!(
            "  {:<22} {:>7.2} mm2  {:>10.0} gm-cycles  {:>9.1} us",
            p.machine.name,
            p.area_mm2,
            p.cycles,
            p.time_ns / 1000.0
        );
    }

    let best = ex.best_fit().expect("exploration produced points");
    println!("\nbest time x area fit: {}", best.machine.name);

    // 2. Add application-specific operations on top of the chosen member.
    let w = &suite[0]; // fir
    let mut module = tc.frontend(&w.source)?;
    let profile = tc.profile(&module, &w.inputs, &w.args)?;
    let (custom_machine, report) = extend(
        &mut module,
        &best.machine,
        &profile,
        &IseConfig {
            area_budget: 16.0,
            ..Default::default()
        },
    );
    println!(
        "\nISE for {} selected {} ops (area {:.1} adders):",
        w.name,
        report.selected.len(),
        report.area_used
    );
    for s in &report.selected {
        println!(
            "  {}  [{} instances, est. {:.0} cycles saved]",
            s.def, s.instances, s.est_saved_cycles
        );
    }

    // 3. Verify the customized machine still runs the kernel correctly.
    let compiled = tc.compile(&module, &custom_machine, Some(&profile))?;
    let run = tc.run_compiled(w, &custom_machine, &compiled)?;
    println!(
        "\n{} on {}: {} cycles (golden output verified)",
        w.name, custom_machine.name, run.sim.cycles
    );

    println!(
        "\n--- recommended machine description ---\n{}",
        print_machine(&custom_machine)
    );
    Ok(())
}
