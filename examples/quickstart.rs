//! Quickstart: describe a machine, compile a TinyC kernel for it, simulate,
//! and inspect the numbers the toolchain produces.
//!
//! Run with: `cargo run --example quickstart`

use asip::backend::{compile_module, BackendOptions};
use asip::core::{EvalRequest, Session};
use asip::isa::hwmodel::{area, cycle_time, energy};
use asip::isa::{FuKind, MachineDescription};
use asip::sim::run_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A machine description is just a table (paper §3.1). This one is a
    //    3-issue member with a slow multiplier and 24 registers.
    let machine = MachineDescription::builder("quick3")
        .registers(24)
        .slot(&[FuKind::Alu, FuKind::Mem, FuKind::Branch])
        .slot(&[FuKind::Alu, FuKind::Mul])
        .slot(&[FuKind::Alu])
        .lat_mul(3)
        .build()?;

    // The description round-trips through the text DSL, so it can live in a
    // file next to your firmware.
    println!(
        "--- machine description ---\n{}",
        asip::isa::desc::print_machine(&machine)
    );

    // 2. Compile a small dot-product kernel.
    let source = r#"
        int x[64];
        int h[64];
        void main(int n) {
            int acc = 0;
            int i;
            for (i = 0; i < n; i++) acc += x[i] * h[i];
            emit(acc);
        }
    "#;
    let mut module = asip::tinyc::compile(source)?;
    asip::ir::passes::optimize(&mut module, &asip::ir::passes::OptConfig::default());
    let compiled = compile_module(&module, &machine, None, &BackendOptions::default())?;
    println!(
        "compiled: {} bundles, {} ops, occupancy {:.2}",
        compiled.stats.bundles, compiled.stats.ops, compiled.stats.occupancy
    );

    // 3. Simulate. Inputs are plain global arrays.
    let mut sim = asip::sim::Simulator::new(&machine, &compiled.program, Default::default())?;
    let xs: Vec<i32> = (0..64).map(|i| i * 3 % 17).collect();
    let hs: Vec<i32> = (0..64).map(|i| 5 - i % 11).collect();
    sim.write_global("x", &xs);
    sim.write_global("h", &hs);
    let result = sim.run(&[64])?;
    println!(
        "output = {:?}   cycles = {}   IPC = {:.2}   stalls = {}",
        result.output,
        result.cycles,
        result.ipc(),
        result.interlock_stalls
    );

    // 4. Hardware models come from the same table.
    let ct = cycle_time(&machine);
    println!(
        "area = {:.2} mm2   clock = {:.0} MHz   energy = {:.1} nJ",
        area(&machine).total(),
        ct.freq_mhz(),
        energy(&machine, &result.activity).total_nj()
    );

    // 5. Cross-check against the one-call convenience API (no inputs
    //    written, so the dot product over zero-filled arrays is zero).
    let again = run_program(&machine, &compiled.program, &[64])?;
    assert_eq!(again.output, vec![0]);

    // 6. For anything bigger than one cell, hold a Session: it owns a
    //    memory-bounded artifact cache and a worker pool, and batches
    //    golden-checked (workload × machine) evaluations.
    let session = Session::builder().threads(2).build();
    let fir = asip::workloads::by_name("fir").expect("workload");
    let outcomes = session.eval_batch(&[
        EvalRequest::new(fir.clone(), machine.clone()),
        EvalRequest::new(fir, asip::isa::MachineDescription::ember4()),
    ]);
    for o in &outcomes {
        println!(
            "batch: {} on {} = {:?} cycles",
            o.workload,
            o.machine,
            o.cycles()
        );
    }
    println!("cache after batch: {}", session.cache_stats());
    Ok(())
}
