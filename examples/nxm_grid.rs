//! The toolchain's N×M validation discipline (paper §3.1): every machine of
//! the family — VLIW and scalar targets alike — crossed with a workload
//! set; every cell must PASS against the golden model.
//!
//! The grid is a thin layer over `Session::eval_batch`: the cells run in
//! parallel on the session's worker pool and share its artifact cache.
//!
//! Run with: `cargo run --release --example nxm_grid`

use asip::core::nxm::run_grid;
use asip::core::Session;
use asip::isa::MachineDescription;

fn main() {
    let session = Session::builder().build();
    let machines = MachineDescription::all_presets();
    let workloads: Vec<_> = ["fir", "viterbi", "sobel", "crc32", "sort"]
        .iter()
        .map(|n| asip::workloads::by_name(n).expect("workload"))
        .collect();
    let grid = run_grid(&session, &machines, &workloads);
    println!("{grid}");
    assert!(
        grid.all_pass(),
        "a cell failed — the family is not shippable"
    );
    println!(
        "toolchain validated: architectures used as test programs.\ncache: {}",
        session.cache_stats()
    );
}
