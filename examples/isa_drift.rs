//! ISA drift (paper §2.1–2.2): take a binary built for one family member
//! and run it, via rebundling translation with a code cache, on a member
//! that is — by 1999 standards — a different, incompatible ISA.
//!
//! Run with: `cargo run --release --example isa_drift`

use asip::core::Session;
use asip::dbt::{CodeCache, TRANSLATION_CYCLES_PER_OP};
use asip::isa::MachineDescription;
use asip::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::builder().build();
    let tc = session.toolchain();
    let w = asip::workloads::by_name("viterbi").expect("workload exists");

    // The shipped binary targets ember4.
    let a = MachineDescription::ember4();
    let module = tc.frontend(&w.source)?;
    let profile = tc.profile(&module, &w.inputs, &w.args)?;
    let binary = tc.compile(&module, &a, Some(&profile))?.program;

    // Years later the product line has drifted: narrower issue, slower
    // memory, denser encoding. Old binaries must still run (Barrier 1).
    // (3 slots, not fewer: viterbi's schedule contains a 3-register
    // parallel rotation, and a rotation can only be re-issued atomically —
    // a 2-wide member would need a scratch register and is rejected as a
    // SwapHazard.)
    let b = a.derive("ember-drift", |m| {
        m.slots.truncate(3);
        m.lat_mem = 3;
        m.encoding = asip::isa::Encoding::Compact16;
    });

    let mut cache = CodeCache::new();
    let (translated, stats) = cache.get_or_translate("viterbi", &binary, &a, &b)?.clone();
    println!(
        "translated {} bundles -> {} bundles ({} ops, {} intra-bundle hazards ordered)",
        stats.bundles_in, stats.bundles_out, stats.ops_in, stats.hazards_ordered
    );

    let run = |m: &MachineDescription,
               p: &asip::isa::VliwProgram|
     -> Result<u64, Box<dyn std::error::Error>> {
        let mut sim = Simulator::new(m, p, Default::default())?;
        for (name, data) in &w.inputs {
            sim.write_global(name, data);
        }
        let r = sim.run(&w.args)?;
        assert_eq!(r.output, w.expected, "drifted execution must stay correct");
        Ok(r.cycles)
    };

    let native_a = run(&a, &binary)?;
    let on_b = run(&b, &translated)?;
    let recompiled = run(&b, &tc.compile(&module, &b, Some(&profile))?.program)?;

    let xlat = stats.ops_in as u64 * TRANSLATION_CYCLES_PER_OP;
    println!("native on ember4:        {native_a} cycles");
    println!(
        "translated on drifted:   {on_b} cycles ({:.2}x native recompile)",
        on_b as f64 / recompiled as f64
    );
    println!("recompiled on drifted:   {recompiled} cycles");
    println!(
        "one-time translation:    {xlat} cycles (amortized over 10 runs: {:.2}x)",
        (on_b as f64 * 10.0 + xlat as f64) / (recompiled as f64 * 10.0)
    );

    // Repeated launches hit the code cache.
    for _ in 0..4 {
        cache.get_or_translate("viterbi", &binary, &a, &b)?;
    }
    println!(
        "code cache: {} hits / {} misses",
        cache.hits(),
        cache.misses()
    );
    Ok(())
}
