//! Umbrella facade crate re-exporting the whole ASIP toolchain.
pub use asip_backend as backend;
pub use asip_core as core;
pub use asip_dbt as dbt;
pub use asip_econ as econ;
pub use asip_ir as ir;
pub use asip_isa as isa;
pub use asip_obs as obs;
pub use asip_serve as serve;
pub use asip_sim as sim;
pub use asip_tinyc as tinyc;
pub use asip_workloads as workloads;
